//! Differential tests: Delta-net vs Veriflow-RI vs the brute-force
//! reference FIB.
//!
//! The two checkers implement completely different algorithms (atoms and an
//! incrementally maintained edge-labelled graph vs a trie with per-update
//! equivalence classes and forwarding graphs), so agreement between them —
//! and with the obviously-correct `NetworkFib` oracle — on randomly
//! generated workloads is strong evidence that both are faithful to the data
//! plane semantics.

use delta_net::prelude::*;
use deltanet::loops::successor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use testutil::{random_rule as random_rule_in, random_topology as random_topology_in};

/// Builds a random strongly-connected topology with `n` switches and one
/// drop link per switch (shared generator, see the `testutil` crate).
fn random_topology(rng: &mut StdRng, n: usize) -> Topology {
    random_topology_in(rng, n, true)
}

/// Generates a random rule over an 8-bit address space (small enough that
/// the oracle can exhaustively check every address).
fn random_rule(rng: &mut StdRng, topo: &mut Topology, id: u64) -> Rule {
    random_rule_in(rng, topo, id, 8, 1000)
}

/// Every address, at every switch, must be forwarded along the same link by
/// the reference FIB and by Delta-net's edge labels.
fn check_labels_against_fib(net: &DeltaNet, fib: &NetworkFib) {
    let topo = net.topology();
    for node in topo.switch_nodes() {
        for addr in 0u128..256 {
            let expected = fib.table(node).lookup(addr).map(|r| r.link);
            let atom = net.atoms().atom_of_value(addr);
            let actual = successor(topo, net.labels(), node, atom);
            assert_eq!(
                expected, actual,
                "divergence at {node} for address {addr}: fib says {expected:?}, labels say {actual:?}"
            );
        }
    }
}

#[test]
fn deltanet_labels_match_reference_fib_under_random_churn() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for trial in 0..10 {
        let mut topo = random_topology(&mut rng, 5);
        let mut net = DeltaNet::new(
            topo.clone(),
            DeltaNetConfig {
                field_width: 8,
                check_loops_per_update: false,
                ..DeltaNetConfig::default()
            },
        );
        let mut fib = NetworkFib::new(topo.clone());
        let mut live: Vec<Rule> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..120 {
            let remove = !live.is_empty() && rng.gen_bool(0.35);
            if remove {
                let idx = rng.gen_range(0..live.len());
                let rule = live.swap_remove(idx);
                net.remove_rule(rule.id);
                fib.remove(rule.id);
            } else {
                let rule = random_rule(&mut rng, &mut topo, next_id);
                next_id += 1;
                // Avoid the (disallowed) same-priority overlap at one switch.
                if live.iter().any(|r| r.conflicts_with(&rule)) {
                    continue;
                }
                net.insert_rule(rule);
                fib.insert(rule);
                live.push(rule);
            }
            if step % 20 == 19 {
                check_labels_against_fib(&net, &fib);
            }
        }
        check_labels_against_fib(&net, &fib);
        // trial is only used to vary the RNG stream length.
        let _ = trial;
    }
}

#[test]
fn loop_reports_agree_with_exhaustive_packet_tracing() {
    let mut rng = StdRng::seed_from_u64(0x100F);
    for _ in 0..8 {
        let mut topo = random_topology(&mut rng, 4);
        let mut net = DeltaNet::new(
            topo.clone(),
            DeltaNetConfig {
                field_width: 8,
                check_loops_per_update: true,
                ..DeltaNetConfig::default()
            },
        );
        let mut fib = NetworkFib::new(topo.clone());
        let mut live: Vec<Rule> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..60 {
            let remove = !live.is_empty() && rng.gen_bool(0.3);
            if remove {
                let idx = rng.gen_range(0..live.len());
                let rule = live.swap_remove(idx);
                net.remove_rule(rule.id);
                fib.remove(rule.id);
            } else {
                let rule = random_rule(&mut rng, &mut topo, next_id);
                next_id += 1;
                if live.iter().any(|r| r.conflicts_with(&rule)) {
                    continue;
                }
                net.insert_rule(rule);
                fib.insert(rule);
                live.push(rule);
            }
            // Full-data-plane loop check vs exhaustive tracing of all 256
            // addresses from every switch.
            let deltanet_says_loop = !net.check_all_loops().is_empty();
            let all_addrs: Vec<u128> = (0..256).collect();
            let oracle_says_loop = fib.any_loop_among(&all_addrs);
            assert_eq!(
                deltanet_says_loop,
                oracle_says_loop,
                "loop disagreement with {} rules installed",
                live.len()
            );
        }
    }
}

#[test]
fn veriflow_and_deltanet_agree_on_per_update_loops() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..6 {
        let mut topo = random_topology(&mut rng, 4);
        let mut net = DeltaNet::new(
            topo.clone(),
            DeltaNetConfig {
                field_width: 8,
                check_loops_per_update: true,
                ..DeltaNetConfig::default()
            },
        );
        let mut vf = VeriflowRi::new(
            topo.clone(),
            VeriflowConfig {
                field_width: 8,
                check_loops_per_update: true,
            },
        );
        let mut live: Vec<Rule> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..80 {
            let remove = !live.is_empty() && rng.gen_bool(0.3);
            let op = if remove {
                let idx = rng.gen_range(0..live.len());
                let rule = live.swap_remove(idx);
                Op::Remove(rule.id)
            } else {
                let rule = random_rule(&mut rng, &mut topo, next_id);
                next_id += 1;
                if live.iter().any(|r| r.conflicts_with(&rule)) {
                    continue;
                }
                live.push(rule);
                Op::Insert(rule)
            };
            let dn_report = net.apply(&op);
            let vf_report = vf.apply(&op);
            // Neither checker may raise a false alarm: whenever one reports
            // a loop the full-plane audit must confirm a loop exists.
            if dn_report.has_loop() || vf_report.has_loop() {
                assert!(
                    !net.check_all_loops().is_empty(),
                    "a reported loop must exist in the data plane"
                );
            }
            // Delta-net only re-examines atoms whose ownership changed, so a
            // loop it reports must also be visible to Veriflow-RI, which
            // rebuilds the forwarding graphs of the whole affected range.
            // (The converse does not hold per update: Veriflow may re-report
            // a pre-existing loop its range happens to overlap.)
            if dn_report.has_loop() {
                assert!(
                    vf_report.has_loop(),
                    "Delta-net found a loop that Veriflow-RI missed for {op:?}"
                );
            }
        }
        assert_eq!(net.rule_count(), vf.rule_count());
    }
}

#[test]
fn whatif_affected_packets_agree_between_checkers() {
    let mut rng = StdRng::seed_from_u64(0xFA11);
    let mut topo = random_topology(&mut rng, 5);
    let mut net = DeltaNet::new(
        topo.clone(),
        DeltaNetConfig {
            field_width: 8,
            check_loops_per_update: false,
            ..DeltaNetConfig::default()
        },
    );
    let mut vf = VeriflowRi::new(
        topo.clone(),
        VeriflowConfig {
            field_width: 8,
            check_loops_per_update: false,
        },
    );
    let mut live: Vec<Rule> = Vec::new();
    let mut next_id = 0u64;
    while live.len() < 40 {
        let rule = random_rule(&mut rng, &mut topo, next_id);
        next_id += 1;
        if live.iter().any(|r| r.conflicts_with(&rule)) {
            continue;
        }
        net.insert_rule(rule);
        vf.insert_rule(rule);
        live.push(rule);
    }
    // For every link: the packets Delta-net says are *using* the link must
    // be exactly the union of the ECs Veriflow-RI finds to be using it.
    // (Veriflow reports per-rule prefixes as affected packets, which is an
    // over-approximation, so we compare against its affected classes > 0.)
    for link in topo.links().iter().map(|l| l.id) {
        let dn = net.what_if_link_failure(link, false);
        let vf_rep = vf.what_if_link_failure(link, false);
        assert_eq!(
            dn.affected_classes > 0,
            vf_rep.affected_classes > 0,
            "link {link:?}: Delta-net sees {} classes, Veriflow-RI sees {}",
            dn.affected_classes,
            vf_rep.affected_classes
        );
        // Delta-net's affected packets must be covered by Veriflow's
        // (interval-union of the rules on the link).
        for iv in &dn.affected_packets {
            assert!(
                vf_rep
                    .affected_packets
                    .iter()
                    .any(|big| big.contains_interval(iv)),
                "link {link:?}: {iv} reported by Delta-net but not covered by Veriflow-RI"
            );
        }
    }
}
