//! Additional property-based tests: the Veriflow-RI baseline against the
//! brute-force oracle, blackhole detection against exhaustive tracing, and
//! the atom-set bitset against a `BTreeSet` model.

use delta_net::prelude::*;
use deltanet::atomset::AtomSet;
use deltanet::blackholes::check_blackholes;
use deltanet::AtomId;
use netmodel::fib::TraceOutcome;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a CIDR prefix over an 8-bit space.
fn prefix_strategy() -> impl Strategy<Value = IpPrefix> {
    (0u32..=255, 0u8..=8).prop_map(|(value, len)| IpPrefix::new(u128::from(value), len, 8))
}

/// Builds a 4-switch bidirectional ring over an 8-bit address space.
fn ring_topology() -> (Topology, Vec<NodeId>) {
    let mut topo = Topology::new();
    let nodes = topo.add_nodes("s", 4);
    for i in 0..4 {
        topo.add_bidi_link(nodes[i], nodes[(i + 1) % 4]);
    }
    (topo, nodes)
}

proptest! {
    /// The atom-set bitset behaves exactly like a `BTreeSet<u32>` model for
    /// insert/remove/union/intersection/difference/subset queries.
    #[test]
    fn atomset_matches_btreeset_model(
        a in prop::collection::vec(0u32..500, 0..60),
        b in prop::collection::vec(0u32..500, 0..60),
        removals in prop::collection::vec(0u32..500, 0..20),
    ) {
        let set_a: AtomSet = a.iter().map(|&x| AtomId(x)).collect();
        let set_b: AtomSet = b.iter().map(|&x| AtomId(x)).collect();
        let mut model_a: BTreeSet<u32> = a.iter().copied().collect();
        let model_b: BTreeSet<u32> = b.iter().copied().collect();

        prop_assert_eq!(set_a.len(), model_a.len());
        let union: Vec<u32> = set_a.union(&set_b).iter().map(|x| x.0).collect();
        let model_union: Vec<u32> = model_a.union(&model_b).copied().collect();
        prop_assert_eq!(union, model_union);
        let inter: Vec<u32> = set_a.intersection(&set_b).iter().map(|x| x.0).collect();
        let model_inter: Vec<u32> = model_a.intersection(&model_b).copied().collect();
        prop_assert_eq!(inter, model_inter);
        let diff: Vec<u32> = set_a.difference(&set_b).iter().map(|x| x.0).collect();
        let model_diff: Vec<u32> = model_a.difference(&model_b).copied().collect();
        prop_assert_eq!(diff, model_diff);
        prop_assert_eq!(set_a.intersects(&set_b), !model_inter_is_empty(&model_a, &model_b));
        prop_assert_eq!(
            set_a.is_subset_of(&set_b),
            model_a.is_subset(&model_b)
        );

        // Removals keep the two in sync.
        let mut set_a = set_a;
        for r in removals {
            prop_assert_eq!(set_a.remove(AtomId(r)), model_a.remove(&r));
        }
        let final_a: Vec<u32> = set_a.iter().map(|x| x.0).collect();
        let model_final: Vec<u32> = model_a.iter().copied().collect();
        prop_assert_eq!(final_a, model_final);
    }

    /// Veriflow-RI's per-update loop verdicts are sound: whenever it reports
    /// a loop, exhaustively tracing every address through the reference FIB
    /// finds one; whenever the FIB has a loop involving the updated prefix,
    /// Veriflow-RI reports it on that update.
    #[test]
    fn veriflow_loop_reports_match_oracle(
        specs in prop::collection::vec((prefix_strategy(), 1u32..1000, 0usize..4, 0usize..2), 1..20)
    ) {
        let (mut topo, nodes) = ring_topology();
        for &n in &nodes {
            topo.drop_link(n);
        }
        let mut vf = VeriflowRi::new(topo.clone(), VeriflowConfig {
            field_width: 8,
            check_loops_per_update: true,
        });
        let mut fib = NetworkFib::new(topo.clone());
        let mut installed: Vec<Rule> = Vec::new();
        for (i, (prefix, priority, node_idx, link_idx)) in specs.into_iter().enumerate() {
            let source = nodes[node_idx];
            let out: Vec<LinkId> = topo
                .out_links(source)
                .iter()
                .copied()
                .filter(|&l| !topo.is_drop_link(l))
                .collect();
            let rule = Rule::forward(
                RuleId(i as u64),
                prefix,
                priority,
                source,
                out[link_idx % out.len()],
            );
            if installed.iter().any(|r| r.conflicts_with(&rule)) {
                continue;
            }
            let report = vf.insert_rule(rule);
            fib.insert(rule);
            installed.push(rule);

            // Oracle: does any address in the inserted prefix loop?
            let addrs: Vec<u128> = (prefix.interval().lo()..prefix.interval().hi()).collect();
            let oracle_loop = nodes.iter().any(|&start| {
                addrs.iter().any(|&a| {
                    matches!(fib.trace(start, Packet::to(a)).outcome, TraceOutcome::Loop(_))
                })
            });
            prop_assert_eq!(
                report.has_loop(),
                oracle_loop,
                "verdict mismatch after inserting {}",
                rule
            );
        }
    }

    /// Blackhole detection agrees with exhaustive tracing: a switch is
    /// reported iff some address arriving over an in-link dies there.
    #[test]
    fn blackhole_detection_matches_exhaustive_tracing(
        specs in prop::collection::vec((prefix_strategy(), 1u32..1000, 0usize..4, 0usize..2), 1..15)
    ) {
        let (topo, nodes) = ring_topology();
        let mut net = DeltaNet::new(topo.clone(), DeltaNetConfig {
            field_width: 8,
            check_loops_per_update: false,
            ..DeltaNetConfig::default()
        });
        let mut fib = NetworkFib::new(topo.clone());
        let mut installed: Vec<Rule> = Vec::new();
        for (i, (prefix, priority, node_idx, link_idx)) in specs.into_iter().enumerate() {
            let source = nodes[node_idx];
            let out = topo.out_links(source).to_vec();
            let rule = Rule::forward(
                RuleId(i as u64),
                prefix,
                priority,
                source,
                out[link_idx % out.len()],
            );
            if installed.iter().any(|r| r.conflicts_with(&rule)) {
                continue;
            }
            net.insert_rule(rule);
            fib.insert(rule);
            installed.push(rule);
        }

        let reported: BTreeSet<NodeId> = check_blackholes(&net)
            .into_iter()
            .filter_map(|v| match v {
                InvariantViolation::Blackhole { node, .. } => Some(node),
                _ => None,
            })
            .collect();

        // Oracle: for every switch, does some address forwarded *to* it by a
        // neighbour match no rule there?
        let mut expected: BTreeSet<NodeId> = BTreeSet::new();
        for &node in &nodes {
            'addrs: for addr in 0u128..256 {
                for &in_link in topo.in_links(node) {
                    let neighbour = topo.link(in_link).src;
                    let forwarded_here = fib
                        .table(neighbour)
                        .lookup(addr)
                        .map(|r| r.link == in_link)
                        .unwrap_or(false);
                    if forwarded_here && fib.table(node).lookup(addr).is_none() {
                        expected.insert(node);
                        continue 'addrs;
                    }
                }
            }
        }
        prop_assert_eq!(reported, expected);
    }
}

fn model_inter_is_empty(a: &BTreeSet<u32>, b: &BTreeSet<u32>) -> bool {
    a.intersection(b).next().is_none()
}
