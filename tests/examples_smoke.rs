//! Smoke test: every example binary must build, run to completion on its
//! built-in tiny topology, and produce output. This keeps the `examples/`
//! directory from silently rotting — `cargo test` alone only proves the
//! examples still *compile*.

use std::process::Command;

const EXAMPLES: [&str; 7] = [
    "quickstart",
    "lattice_demo",
    "whatif_link_failure",
    "all_pairs_reachability",
    "failure_sweep",
    "sdn_ip_churn",
    "sharded_updates",
];

/// Runs each example through `cargo run --example` (a cache hit for the
/// build, since `cargo test` already compiled them) and asserts a clean exit
/// with non-empty stdout.
#[test]
fn every_example_runs_cleanly() {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for example in EXAMPLES {
        let output = Command::new(cargo)
            .current_dir(manifest_dir)
            .args(["run", "--quiet", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{example}`: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {:?}\n--- stdout\n{}--- stderr\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example `{example}` printed nothing"
        );
    }
}
