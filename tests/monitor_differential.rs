//! Randomized differential-oracle suite for incremental violation
//! monitoring: after **every** operation of a random churn trace —
//! insertions, removals, batched windows, explicit and threshold-triggered
//! compaction, at 1/2/4/7 shards — the incrementally maintained
//! [`ViolationMonitor`] state must equal the full-scan oracle
//! (`check_all_loops` + `check_all_blackholes` recomputed from scratch),
//! and its loop verdicts must agree with the independent Veriflow-RI
//! baseline on the shared workloads.
//!
//! All generators come from the shared `testutil` crate: seeded (failures
//! reproduce from the printed seed) and shrink-friendly (the batched test
//! consumes a well-formed trace-as-data whose prefixes are themselves
//! well-formed traces).

use delta_net::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use testutil::{blackholes_by_node, loops_by_cycle, random_ops, random_topology, OpGen};

/// Shard counts exercised by the sharded tests; 7 is deliberately not a
/// power of two, so boundaries align with no prefix and wide rules straddle.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn monitored_config(compact_threshold: Option<usize>) -> DeltaNetConfig {
    DeltaNetConfig {
        field_width: 8,
        check_loops_per_update: true,
        compact_threshold,
        monitor_violations: true,
        ..DeltaNetConfig::default()
    }
}

/// The full-scan oracle in the monitor's rendering order.
fn full_scan(net: &DeltaNet) -> Vec<InvariantViolation> {
    let mut out = net.check_all_loops();
    out.extend(net.check_all_blackholes());
    out
}

#[test]
fn monitor_equals_full_scan_oracle_after_every_op_including_compaction() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x404170 ^ seed);
        let topo = random_topology(&mut rng, 5, true);
        // Odd seeds run with aggressive threshold-triggered compaction, so
        // the equality is also pinned across automatic id renumbering.
        let threshold = if seed % 2 == 1 { Some(3) } else { None };
        let mut net = DeltaNet::new(topo.clone(), monitored_config(threshold));
        let mut gen = OpGen::new(8, 40, 0.35);
        for step in 0..250 {
            let Some(op) = gen.next_op(&mut rng, &topo) else {
                continue;
            };
            net.apply(&op);
            // Bit-exact equality: same grouping, normalization, and order.
            assert_eq!(
                net.active_violations().unwrap(),
                full_scan(&net),
                "seed {seed} step {step}: monitor diverged from full scans"
            );
            if step == 125 {
                // An explicit mid-trace compaction renumbers every atom id
                // the monitor holds; the active set must not flicker.
                let before = net.active_violations().unwrap();
                net.compact();
                assert_eq!(
                    net.active_violations().unwrap(),
                    before,
                    "seed {seed}: compaction changed the active violations"
                );
                assert_eq!(net.active_violations().unwrap(), full_scan(&net));
            }
        }
    }
}

#[test]
fn sharded_monitor_equals_oracle_under_batched_churn() {
    for shards in SHARD_COUNTS {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ (shards as u64) << 4);
        let topo = random_topology(&mut rng, 5, true);
        let ops = random_ops(&mut rng, &topo, 160, 8, 40, 0.35);
        let config = monitored_config(None);
        let mut sharded = ShardedDeltaNet::new(topo.clone(), config, shards);
        let mut plain = DeltaNet::new(topo.clone(), config);
        for (w, window) in ops.chunks(16).enumerate() {
            sharded.apply_batch(window).expect("trace is well-formed");
            for op in window {
                plain.apply(op);
            }
            let tag = format!("shards {shards} window {w}");
            // The shard-merged live state equals the shard-merged scans …
            let active = sharded.active_violations().expect("monitoring is on");
            assert_eq!(
                loops_by_cycle(&active),
                loops_by_cycle(&sharded.check_all_loops()),
                "{tag}: sharded monitor loops diverge from sharded scans"
            );
            assert_eq!(
                blackholes_by_node(&active),
                blackholes_by_node(&sharded.check_all_blackholes()),
                "{tag}: sharded monitor blackholes diverge from sharded scans"
            );
            // … and both equal the single-engine oracle at the cycle/node
            // level (atom numbering differs across the partition).
            assert_eq!(
                loops_by_cycle(&active),
                loops_by_cycle(&plain.check_all_loops()),
                "{tag}: sharded monitor diverges from the single-engine oracle"
            );
            assert_eq!(
                blackholes_by_node(&active),
                blackholes_by_node(&plain.check_all_blackholes()),
                "{tag}: sharded monitor diverges from the single-engine oracle"
            );
        }
        // Shard-wise compaction renumbers every shard independently; the
        // merged active set must survive it unchanged.
        let before_loops = loops_by_cycle(&sharded.active_violations().unwrap());
        let before_holes = blackholes_by_node(&sharded.active_violations().unwrap());
        sharded.compact();
        let active = sharded.active_violations().unwrap();
        assert_eq!(loops_by_cycle(&active), before_loops, "shards {shards}");
        assert_eq!(blackholes_by_node(&active), before_holes, "shards {shards}");
    }
}

#[test]
fn monitor_agrees_with_veriflow_on_shared_workloads() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xF10E ^ seed);
        let topo = random_topology(&mut rng, 4, true);
        let mut net = DeltaNet::new(topo.clone(), monitored_config(None));
        let mut vf = VeriflowRi::new(
            topo.clone(),
            VeriflowConfig {
                field_width: 8,
                check_loops_per_update: true,
            },
        );
        let mut gen = OpGen::new(8, 40, 0.3);
        for step in 0..120 {
            let Some(op) = gen.next_op(&mut rng, &topo) else {
                continue;
            };
            let dn_report = net.apply(&op);
            let vf_report = vf.apply(&op);
            let monitor = net.monitor().expect("monitoring is on");
            // Any per-update loop alarm — from either independent checker —
            // must be visible in the maintained live state at that moment.
            if dn_report.has_loop() || vf_report.has_loop() {
                assert!(
                    monitor.loop_count() > 0,
                    "seed {seed} step {step}: a reported loop is missing from the monitor"
                );
            }
            // Delta-net's per-update report never fires without the live
            // state agreeing, and the live state never claims a loop the
            // full-plane audit cannot confirm.
            assert_eq!(
                monitor.loop_count() > 0,
                !net.check_all_loops().is_empty(),
                "seed {seed} step {step}: monitor and audit disagree on loop existence"
            );
        }
        assert_eq!(net.rule_count(), vf.rule_count());
    }
}

#[test]
fn checker_trait_surfaces_active_violations() {
    let mut rng = StdRng::seed_from_u64(0x7A17);
    let topo = random_topology(&mut rng, 4, true);
    let monitored = DeltaNet::new(topo.clone(), monitored_config(None));
    let unmonitored = DeltaNet::with_topology(topo.clone());
    let sharded = ShardedDeltaNet::new(topo.clone(), monitored_config(None), 3);
    let veriflow = VeriflowRi::new(topo.clone(), VeriflowConfig::default());
    // Through the trait: monitored engines answer, the rest decline.
    let checkers: Vec<(&dyn Checker, bool)> = vec![
        (&monitored, true),
        (&unmonitored, false),
        (&sharded, true),
        (&veriflow, false),
    ];
    for (checker, monitored) in checkers {
        assert_eq!(
            checker.active_violations().is_some(),
            monitored,
            "{} monitoring surface",
            checker.name()
        );
    }
    // And a monitored engine's answer through the trait matches the scans.
    let mut net = DeltaNet::new(topo.clone(), monitored_config(None));
    let mut gen = OpGen::new(8, 40, 0.3);
    for _ in 0..40 {
        if let Some(op) = gen.next_op(&mut rng, &topo) {
            net.apply(&op);
        }
    }
    let via_trait = Checker::active_violations(&net).unwrap();
    assert_eq!(via_trait, full_scan(&net));
}
