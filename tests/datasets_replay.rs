//! Integration tests: replay the (tiny-scale) evaluation datasets end to end
//! through both checkers and validate global invariants.

use delta_net::prelude::*;

fn replay_deltanet(ds: &Dataset, check_loops: bool) -> DeltaNet {
    let mut net = DeltaNet::new(
        ds.topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: check_loops,
            ..Default::default()
        },
    );
    for op in ds.trace.ops() {
        net.apply(op);
    }
    net
}

#[test]
fn synthetic_dataset_replays_to_empty_data_plane() {
    let ds = workloads::build(DatasetId::Berkeley, ScaleProfile::Tiny);
    let net = replay_deltanet(&ds, false);
    // Everything inserted was removed, so no rules and no labelled links.
    assert_eq!(net.rule_count(), 0);
    for link in net.topology().links().to_vec() {
        assert!(
            net.label(link.id).is_empty(),
            "{:?} still labelled after full replay",
            link.id
        );
    }
    // Atoms are never reclaimed; their number is bounded by 2R + 1.
    let peak_rules = ds.trace.peak_rule_count();
    assert!(net.atom_count() <= 2 * peak_rules + 1);
    assert!(net.atom_count() >= 1);
}

#[test]
fn atoms_are_far_fewer_than_rules_on_every_dataset() {
    // The headline observation behind Table 3: the number of atoms is much
    // smaller than the number of rules, because prefixes share bounds.
    for id in [DatasetId::Rf1755, DatasetId::Inet, DatasetId::FourSwitch] {
        let ds = workloads::build(id, ScaleProfile::Tiny);
        let net = replay_deltanet(&ds, false);
        let inserts = ds.trace.insert_count();
        assert!(
            net.atom_count() < inserts,
            "{}: {} atoms vs {} rules inserted",
            id.name(),
            net.atom_count(),
            inserts
        );
    }
}

#[test]
fn sdn_ip_traces_converge_to_loop_free_data_planes() {
    // The simulated SDN-IP controller installs rules one at a time, so a
    // *transient* loop can appear while an advertisement whose prefix nests
    // inside another (with a different egress) is only partially installed —
    // exactly the kind of violation a real-time checker exists to flag. The
    // converged data plane, however, must always be loop-free, and any loop
    // reported per update must really exist at that instant.
    for id in [DatasetId::Airtel1, DatasetId::FourSwitch] {
        let ds = workloads::build(id, ScaleProfile::Tiny);
        let mut net = DeltaNet::new(ds.topology.topology.clone(), DeltaNetConfig::default());
        let mut transient_loops = 0usize;
        for op in ds.trace.ops() {
            let report = net.apply(op);
            if report.has_loop() {
                transient_loops += 1;
                assert!(
                    !net.check_all_loops().is_empty(),
                    "{}: reported loop for {:?} is a false alarm",
                    id.name(),
                    report.rule_id
                );
            }
        }
        assert!(
            net.check_all_loops().is_empty(),
            "{}: converged data plane has a loop",
            id.name()
        );
        // Transient loops stay a clear minority of the updates: they only
        // appear while nested prefixes with different egress points are
        // partially (re)installed, not as a steady state.
        assert!(
            transient_loops < ds.trace.len() / 4,
            "{}: {transient_loops} of {} updates reported loops",
            id.name(),
            ds.trace.len()
        );
    }
}

#[test]
fn airtel_final_state_matches_initial_routing() {
    // Every failure is recovered, so the final data plane equals the initial
    // installation: same number of rules per switch.
    let ds = workloads::build(DatasetId::Airtel1, ScaleProfile::Tiny);
    let final_rules = ds.trace.final_data_plane();
    assert!(!final_rules.is_empty());
    let net = replay_deltanet(&ds, false);
    assert_eq!(net.rule_count(), final_rules.len());
}

#[test]
fn veriflow_and_deltanet_agree_on_rule_counts_across_datasets() {
    for id in [DatasetId::FourSwitch, DatasetId::Airtel1] {
        let ds = workloads::build(id, ScaleProfile::Tiny);
        let mut net = DeltaNet::new(
            ds.topology.topology.clone(),
            DeltaNetConfig {
                check_loops_per_update: false,
                ..Default::default()
            },
        );
        let mut vf = VeriflowRi::new(
            ds.topology.topology.clone(),
            VeriflowConfig {
                check_loops_per_update: false,
                ..Default::default()
            },
        );
        for op in ds.trace.ops() {
            net.apply(op);
            vf.apply(op);
        }
        assert_eq!(net.rule_count(), vf.rule_count(), "{}", id.name());
    }
}

#[test]
fn trace_text_roundtrip_on_dataset() {
    // Serialize a dataset trace to the text format, parse it back, and
    // confirm the replayed state is identical.
    let ds = workloads::build(DatasetId::FourSwitch, ScaleProfile::Tiny);
    let text = ds.trace.to_text(&ds.topology.topology);
    let mut topo2 = ds.topology.topology.clone();
    let parsed = Trace::parse(&text, &mut topo2).expect("roundtrip parse");
    assert_eq!(parsed.len(), ds.trace.len());

    let mut original = DeltaNet::new(
        ds.topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    let mut reparsed = DeltaNet::new(
        topo2,
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    for op in ds.trace.ops() {
        original.apply(op);
    }
    for op in parsed.ops() {
        reparsed.apply(op);
    }
    assert_eq!(original.rule_count(), reparsed.rule_count());
    assert_eq!(original.atom_count(), reparsed.atom_count());
}

#[test]
fn whatif_on_airtel_data_plane_reports_affected_flows() {
    let ds = workloads::build(DatasetId::Airtel1, ScaleProfile::Tiny);
    let rules = ds.trace.final_data_plane();
    let mut net = DeltaNet::new(
        ds.topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    for r in &rules {
        net.insert_rule(*r);
    }
    // At least one inter-switch link must carry traffic, and its failure
    // must affect at least one packet class.
    let busiest = ds
        .topology
        .topology
        .links()
        .iter()
        .map(|l| l.id)
        .max_by_key(|&l| net.label(l).len())
        .unwrap();
    let report = net.what_if_link_failure(busiest, true);
    assert!(report.affected_classes > 0);
    assert!(!report.affected_packets.is_empty());
    assert!(
        report.violations.is_empty(),
        "the controller's data plane must be loop-free"
    );
}

#[test]
fn reachability_matrix_on_four_switch_data_plane() {
    let ds = workloads::build(DatasetId::FourSwitch, ScaleProfile::Tiny);
    let net = replay_deltanet(&ds, false);
    let matrix = ReachabilityMatrix::compute(&net);
    // The ring with SDN-IP routing lets every switch reach every other.
    let switches: Vec<NodeId> = net.topology().switch_nodes().collect();
    let mut reachable_pairs = 0;
    for &a in &switches {
        for &b in &switches {
            if a != b && matrix.can_reach(a, b) {
                reachable_pairs += 1;
            }
        }
    }
    assert!(
        reachable_pairs >= switches.len() * (switches.len() - 1) / 2,
        "only {reachable_pairs} reachable pairs"
    );
}
