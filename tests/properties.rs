//! Property-based tests (proptest) for the core invariants.
//!
//! Small field widths (6–8 bits) keep the address space exhaustively
//! checkable, so every property is validated against brute force rather than
//! against another clever data structure.

use delta_net::prelude::*;
use deltanet::atoms::AtomMap;
use deltanet::loops::successor;
use proptest::prelude::*;

/// Strategy: a half-closed interval inside an 8-bit space.
fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0u32..=255, 1u32..=64).prop_map(|(lo, len)| {
        let hi = (lo + len).min(256);
        let lo = lo.min(hi - 1);
        Interval::new(u128::from(lo), u128::from(hi))
    })
}

/// Strategy: a CIDR prefix over an 8-bit space.
fn prefix_strategy() -> impl Strategy<Value = IpPrefix> {
    (0u32..=255, 0u8..=8).prop_map(|(value, len)| IpPrefix::new(u128::from(value), len, 8))
}

proptest! {
    /// Atoms always partition the whole field space: consecutive, disjoint,
    /// covering, regardless of which intervals were inserted.
    #[test]
    fn atoms_partition_field_space(intervals in prop::collection::vec(interval_strategy(), 0..40)) {
        let mut m = AtomMap::new(8);
        for iv in &intervals {
            let delta = m.create_atoms(*iv);
            prop_assert!(delta.len() <= 2);
        }
        let mut pieces: Vec<Interval> = m.iter().map(|(_, iv)| iv).collect();
        pieces.sort();
        prop_assert_eq!(pieces.first().unwrap().lo(), 0);
        prop_assert_eq!(pieces.last().unwrap().hi(), 256);
        for w in pieces.windows(2) {
            prop_assert_eq!(w[0].hi(), w[1].lo());
        }
        // Atom count is bounded by 2 * intervals + 1 and matches the map.
        prop_assert!(m.atom_count() <= 2 * intervals.len() + 1);
        prop_assert_eq!(m.atom_count(), pieces.len());
    }

    /// ⟦interval⟧ is exact: the union of the atoms of an inserted interval
    /// is the interval itself, and every atom is either fully inside or
    /// fully outside it.
    #[test]
    fn interval_atom_representation_is_exact(intervals in prop::collection::vec(interval_strategy(), 1..30)) {
        let mut m = AtomMap::new(8);
        for iv in &intervals {
            m.create_atoms(*iv);
        }
        for iv in &intervals {
            let atoms = m.atoms_of(*iv);
            let total: u128 = atoms.iter().map(|&a| m.atom_interval(a).len()).sum();
            prop_assert_eq!(total, iv.len());
            for &a in &atoms {
                prop_assert!(iv.contains_interval(&m.atom_interval(a)));
            }
        }
        // Every value maps to the atom containing it.
        for x in 0u128..256 {
            let a = m.atom_of_value(x);
            prop_assert!(m.atom_interval(a).contains(x));
        }
    }

    /// The prefix → interval conversion agrees with bit-level matching.
    #[test]
    fn prefix_interval_matches_bitwise_semantics(prefix in prefix_strategy(), value in 0u32..=255) {
        let value = u128::from(value);
        let by_interval = prefix.interval().contains(value);
        // Bit-level check: the top `len` bits agree.
        let shift = 8 - prefix.len();
        let by_bits = if prefix.len() == 0 {
            true
        } else {
            (value >> shift) == (prefix.value() >> shift)
        };
        prop_assert_eq!(by_interval, by_bits);
    }

    /// Inserting rules in any order yields the same edge labels (the data
    /// plane is fully determined by the rule set and priorities).
    #[test]
    fn label_state_is_insertion_order_independent(
        seed in 0u64..1000,
        permutation_seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(seed);
        let mut topo = Topology::new();
        let nodes = topo.add_nodes("s", 4);
        for i in 0..4 {
            topo.add_bidi_link(nodes[i], nodes[(i + 1) % 4]);
        }
        // Random, conflict-free rule set over the 8-bit space.
        let mut rules: Vec<Rule> = Vec::new();
        let mut id = 0u64;
        while rules.len() < 20 {
            let source = nodes[rng.gen_range(0..4)];
            let len = rng.gen_range(0..=8u8);
            let value = rng.gen_range(0u32..256) as u128;
            let prefix = IpPrefix::new(value, len, 8);
            let out = topo.out_links(source).to_vec();
            let link = out[rng.gen_range(0..out.len())];
            let priority = rng.gen_range(1..=10_000);
            let rule = Rule::forward(RuleId(id), prefix, priority, source, link);
            id += 1;
            if rules.iter().any(|r| r.conflicts_with(&rule)) {
                continue;
            }
            rules.push(rule);
        }
        let mut shuffled = rules.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(permutation_seed));

        let build = |ordered: &[Rule]| {
            let mut net = DeltaNet::new(topo.clone(), DeltaNetConfig {
                field_width: 8,
                check_loops_per_update: false,
                ..DeltaNetConfig::default()
            });
            for r in ordered {
                net.insert_rule(*r);
            }
            net
        };
        let a = build(&rules);
        let b = build(&shuffled);
        // Compare per-link packet sets (atom ids differ, intervals must not).
        for link in topo.links() {
            let pa = netmodel::interval::normalize(
                a.label(link.id).iter().map(|x| a.atoms().atom_interval(x)).collect());
            let pb = netmodel::interval::normalize(
                b.label(link.id).iter().map(|x| b.atoms().atom_interval(x)).collect());
            prop_assert_eq!(pa, pb);
        }
    }

    /// Insert followed by remove is a no-op on the forwarding behaviour:
    /// after removing everything that was added, every address at every
    /// switch forwards exactly as before.
    #[test]
    fn insert_remove_roundtrip_restores_behaviour(
        base in prop::collection::vec((prefix_strategy(), 1u32..100, 0usize..4, 0usize..2), 0..12),
        extra in prop::collection::vec((prefix_strategy(), 100u32..200, 0usize..4, 0usize..2), 1..8),
    ) {
        let mut topo = Topology::new();
        let nodes = topo.add_nodes("s", 4);
        for i in 0..4 {
            topo.add_bidi_link(nodes[i], nodes[(i + 1) % 4]);
        }
        let mut net = DeltaNet::new(topo.clone(), DeltaNetConfig {
            field_width: 8,
            check_loops_per_update: false,
            ..DeltaNetConfig::default()
        });
        let mut id = 0u64;
        let mut installed: Vec<Rule> = Vec::new();
        let install = |net: &mut DeltaNet, installed: &mut Vec<Rule>,
                           prefix: IpPrefix, priority: u32, node_idx: usize, link_idx: usize,
                           id: &mut u64| -> Option<Rule> {
            let source = nodes[node_idx];
            let out = topo.out_links(source).to_vec();
            let link = out[link_idx % out.len()];
            let rule = Rule::forward(RuleId(*id), prefix, priority, source, link);
            *id += 1;
            if installed.iter().any(|r| r.conflicts_with(&rule)) {
                return None;
            }
            net.insert_rule(rule);
            installed.push(rule);
            Some(rule)
        };
        for (prefix, priority, node_idx, link_idx) in base {
            install(&mut net, &mut installed, prefix, priority, node_idx, link_idx, &mut id);
        }
        // Snapshot behaviour: per switch and address, the forwarding link.
        let snapshot = |net: &DeltaNet| -> Vec<Option<LinkId>> {
            let mut out = Vec::new();
            for node in net.topology().switch_nodes() {
                for addr in 0u128..256 {
                    let atom = net.atoms().atom_of_value(addr);
                    out.push(successor(net.topology(), net.labels(), node, atom));
                }
            }
            out
        };
        let before = snapshot(&net);
        let mut added: Vec<Rule> = Vec::new();
        for (prefix, priority, node_idx, link_idx) in extra {
            if let Some(rule) = install(&mut net, &mut installed, prefix, priority, node_idx, link_idx, &mut id) {
                added.push(rule);
            }
        }
        for rule in added.iter().rev() {
            net.remove_rule(rule.id);
        }
        let after = snapshot(&net);
        prop_assert_eq!(before, after);
    }

    /// Veriflow-RI's equivalence classes and Delta-net's atoms agree on the
    /// *forwarding behaviour* of every address after the same rule sequence,
    /// checked against the reference FIB.
    #[test]
    fn both_checkers_respect_highest_priority_semantics(
        specs in prop::collection::vec((prefix_strategy(), 1u32..1000, 0usize..3), 1..15)
    ) {
        let mut topo = Topology::new();
        let nodes = topo.add_nodes("s", 3);
        for i in 0..3 {
            topo.add_bidi_link(nodes[i], nodes[(i + 1) % 3]);
        }
        let mut net = DeltaNet::new(topo.clone(), DeltaNetConfig {
            field_width: 8,
            check_loops_per_update: false,
            ..DeltaNetConfig::default()
        });
        let mut fib = NetworkFib::new(topo.clone());
        let mut installed: Vec<Rule> = Vec::new();
        for (i, (prefix, priority, node_idx)) in specs.into_iter().enumerate() {
            let source = nodes[node_idx];
            let link = topo.out_links(source)[0];
            let rule = Rule::forward(RuleId(i as u64), prefix, priority, source, link);
            if installed.iter().any(|r| r.conflicts_with(&rule)) {
                continue;
            }
            net.insert_rule(rule);
            fib.insert(rule);
            installed.push(rule);
        }
        for node in topo.switch_nodes() {
            for addr in 0u128..256 {
                let expected = fib.table(node).lookup(addr).map(|r| r.link);
                let atom = net.atoms().atom_of_value(addr);
                let actual = successor(&topo, net.labels(), node, atom);
                prop_assert_eq!(expected, actual);
            }
        }
    }
}
