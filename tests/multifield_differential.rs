//! Multi-field differential suite: the incremental Delta-net engine over a
//! dst × src (and dst × src × dport) header space, compared after every few
//! operations against
//!
//! 1. the stateless Veriflow-RI cross-product oracle
//!    ([`veriflow_ri::scan_multifield`]), which recomputes every
//!    equivalence class of every field from the live rule set alone, and
//! 2. the engine's own full rescans (`check_all_loops` +
//!    `check_all_blackholes`), which the live monitor must agree with
//!    bit-for-bit.
//!
//! Runs over the stand-alone engine and 1/2/4/7-way sharded engines, with
//! monitoring on and off, compaction on and off, per-op applies and
//! `apply_batch` windows, and §3.3 aggregation windows — the combinations
//! the multi-field refactor touches. Since the monitor is maintained by
//! scoped slice repair rather than full rescans, the monitor-vs-scan
//! assertions here are the bit-identity oracle for the incremental path.
//! Everything is seeded; a failure reproduces from the printed seed.

use delta_net::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use testutil::{blackholes_by_node, loops_by_cycle, random_ops_multifield, random_topology};

const WIDTH: u8 = 8;
const SEC_WIDTHS: [u8; 1] = [6];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];
/// Compare against the oracle every this many operations (full cross-field
/// scans are the expensive part of the suite).
const CHECK_EVERY: usize = 10;

fn mf_config(monitor: bool, compact_threshold: Option<usize>) -> DeltaNetConfig {
    DeltaNetConfig {
        field_width: WIDTH,
        check_loops_per_update: true,
        compact_threshold,
        monitor_violations: monitor,
        ..DeltaNetConfig::default()
    }
    .with_secondary(&SEC_WIDTHS)
}

fn full_scan_single(net: &DeltaNet) -> Vec<InvariantViolation> {
    let mut out = net.check_all_loops();
    out.extend(net.check_all_blackholes());
    out
}

fn full_scan_sharded(net: &ShardedDeltaNet) -> Vec<InvariantViolation> {
    let mut out = net.check_all_loops();
    out.extend(net.check_all_blackholes());
    out
}

/// Asserts that two violation sets agree on loops and blackholes in the
/// order-, atom-numbering- and shard-invariant comparison form.
fn assert_equivalent(label: &str, actual: &[InvariantViolation], expected: &[InvariantViolation]) {
    assert_eq!(
        loops_by_cycle(actual),
        loops_by_cycle(expected),
        "{label}: loops diverge"
    );
    assert_eq!(
        blackholes_by_node(actual),
        blackholes_by_node(expected),
        "{label}: blackholes diverge"
    );
}

fn track(live: &mut Vec<Rule>, op: &Op) {
    match op {
        Op::Insert(rule) => live.push(*rule),
        Op::Remove(id) => live.retain(|r| r.id != *id),
    }
}

#[test]
fn single_engine_matches_oracle_and_monitor() {
    for seed in 0..6u64 {
        // Even seeds: monitor on. Seeds ≡ 0/1 (mod 4): compaction on, with
        // a threshold low enough that automatic passes fire mid-trace.
        let monitor = seed % 2 == 0;
        let compact = if seed % 4 < 2 { Some(4) } else { None };
        let mut rng = StdRng::seed_from_u64(0x4D_F1E1D ^ seed);
        let topo = random_topology(&mut rng, 5, true);
        let ops = random_ops_multifield(&mut rng, &topo, 120, WIDTH, &SEC_WIDTHS, 20, 0.3);
        let mut net = DeltaNet::new(topo.clone(), mf_config(monitor, compact));
        assert!(net.is_multifield());
        let mut live: Vec<Rule> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            net.try_apply(op)
                .unwrap_or_else(|e| panic!("seed {seed} op {i} rejected: {e}"));
            track(&mut live, op);
            if (i + 1) % CHECK_EVERY != 0 && i + 1 != ops.len() {
                continue;
            }
            let scan = full_scan_single(&net);
            let oracle = scan_multifield(&topo, &live, WIDTH, &SEC_WIDTHS);
            assert_equivalent(
                &format!("seed {seed} op {i} scan-vs-oracle"),
                &scan,
                &oracle,
            );
            if monitor {
                let active = net.active_violations().expect("monitor is on");
                assert_equivalent(
                    &format!("seed {seed} op {i} monitor-vs-scan"),
                    &active,
                    &scan,
                );
            }
        }
    }
}

#[test]
fn sharded_engine_matches_oracle_at_every_shard_count() {
    for &shards in &SHARD_COUNTS {
        for seed in 0..4u64 {
            let monitor = seed % 2 == 0;
            let compact = if seed < 2 { Some(4) } else { None };
            let mut rng = StdRng::seed_from_u64(0x5AD_F1E1D ^ (seed << 8) ^ shards as u64);
            let topo = random_topology(&mut rng, 5, true);
            let ops = random_ops_multifield(&mut rng, &topo, 100, WIDTH, &SEC_WIDTHS, 20, 0.3);
            let mut net = ShardedDeltaNet::new(topo.clone(), mf_config(monitor, compact), shards);
            let mut live: Vec<Rule> = Vec::new();
            if monitor {
                // Monitor seeds go through `apply_batch`, so the scoped
                // repair also runs under the concurrent per-shard groups.
                for (w, window) in ops.chunks(CHECK_EVERY).enumerate() {
                    net.apply_batch(window)
                        .unwrap_or_else(|e| panic!("shards {shards} seed {seed} window {w}: {e}"));
                    for op in window {
                        track(&mut live, op);
                    }
                    let scan = full_scan_sharded(&net);
                    let oracle = scan_multifield(&topo, &live, WIDTH, &SEC_WIDTHS);
                    assert_equivalent(
                        &format!("shards {shards} seed {seed} window {w} scan-vs-oracle"),
                        &scan,
                        &oracle,
                    );
                    let active = net.active_violations().expect("monitor is on");
                    assert_equivalent(
                        &format!("shards {shards} seed {seed} window {w} monitor-vs-scan"),
                        &active,
                        &scan,
                    );
                }
            } else {
                for (i, op) in ops.iter().enumerate() {
                    net.try_apply(op)
                        .unwrap_or_else(|e| panic!("shards {shards} seed {seed} op {i}: {e}"));
                    track(&mut live, op);
                    if (i + 1) % CHECK_EVERY != 0 && i + 1 != ops.len() {
                        continue;
                    }
                    let scan = full_scan_sharded(&net);
                    let oracle = scan_multifield(&topo, &live, WIDTH, &SEC_WIDTHS);
                    assert_equivalent(
                        &format!("shards {shards} seed {seed} op {i} scan-vs-oracle"),
                        &scan,
                        &oracle,
                    );
                }
            }
        }
    }
}

#[test]
fn three_field_header_space_matches_oracle() {
    // dst × src × dport: both secondary slots in use, deliberately tiny
    // field widths so the class cross product stays cheap while every
    // combination of constrained/wildcard fields occurs.
    const SEC3: [u8; 2] = [4, 3];
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(0x3F1E1D ^ seed);
        let topo = random_topology(&mut rng, 4, true);
        let ops = random_ops_multifield(&mut rng, &topo, 80, WIDTH, &SEC3, 20, 0.3);
        let config = DeltaNetConfig {
            field_width: WIDTH,
            check_loops_per_update: true,
            compact_threshold: Some(4),
            monitor_violations: true,
            ..DeltaNetConfig::default()
        }
        .with_secondary(&SEC3);
        assert_eq!(config.header_space().field_count(), 3);
        let mut net = DeltaNet::new(topo.clone(), config);
        let mut live: Vec<Rule> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            net.try_apply(op)
                .unwrap_or_else(|e| panic!("seed {seed} op {i} rejected: {e}"));
            track(&mut live, op);
            if (i + 1) % CHECK_EVERY != 0 && i + 1 != ops.len() {
                continue;
            }
            let scan = full_scan_single(&net);
            let oracle = scan_multifield(&topo, &live, WIDTH, &SEC3);
            assert_equivalent(
                &format!("seed {seed} op {i} scan-vs-oracle"),
                &scan,
                &oracle,
            );
            let active = net.active_violations().expect("monitor is on");
            assert_equivalent(
                &format!("seed {seed} op {i} monitor-vs-scan"),
                &active,
                &scan,
            );
        }
    }
}

#[test]
fn per_update_violations_match_oracle_transitions() {
    // The per-update reports must notice every loop that appears: whenever
    // the oracle says the plane has a loop that was not there before the
    // op, the op's own report must carry a loop violation.
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0x0DD_5EED ^ seed);
        let topo = random_topology(&mut rng, 4, true);
        let ops = random_ops_multifield(&mut rng, &topo, 80, WIDTH, &SEC_WIDTHS, 20, 0.3);
        let mut net = DeltaNet::new(topo.clone(), mf_config(false, None));
        let mut live: Vec<Rule> = Vec::new();
        let mut before = scan_multifield(&topo, &live, WIDTH, &SEC_WIDTHS);
        for (i, op) in ops.iter().enumerate() {
            let report = net
                .try_apply(op)
                .unwrap_or_else(|e| panic!("seed {seed} op {i} rejected: {e}"));
            track(&mut live, op);
            let after = scan_multifield(&topo, &live, WIDTH, &SEC_WIDTHS);
            let loops_before = loops_by_cycle(&before);
            for (cycle, _) in loops_by_cycle(&after) {
                if matches!(op, Op::Insert(_)) && !loops_before.contains_key(&cycle) {
                    assert!(
                        report.has_loop(),
                        "seed {seed} op {i}: oracle sees new loop {cycle:?}, report is clean"
                    );
                }
            }
            before = after;
        }
    }
}

#[test]
fn acl_workload_replays_and_matches_oracle() {
    // The ACL-style dst × src workload generator feeds straight into a
    // multi-field engine, and the resulting plane agrees with the oracle.
    use workloads::rulegen::{generate_multifield_rules, MultiFieldConfig};
    use workloads::topologies::four_switch_ring;
    let topo = four_switch_ring();
    let prefixes: Vec<IpPrefix> = (0..8u128)
        .map(|i| IpPrefix::new((10 << 24) | (i << 16), 16, 32))
        .collect();
    let config = MultiFieldConfig {
        sec_widths: vec![6],
        ..MultiFieldConfig::default()
    };
    let gen = generate_multifield_rules(&topo, &prefixes, &config);
    let mut net = DeltaNet::new(
        gen.topology.clone(),
        DeltaNetConfig::default().with_secondary(&gen.sec_widths),
    );
    let mut live: Vec<Rule> = Vec::new();
    for op in gen.trace.ops() {
        net.try_apply(op).expect("generated op must be accepted");
        track(&mut live, op);
    }
    assert_eq!(net.rule_count(), gen.rules.len());
    // The deny overlay produces real multi-field blackholes: denied
    // (dst, src) classes arrive at a switch and die at the drop link.
    let scan = full_scan_single(&net);
    assert!(scan.iter().any(|v| !v.is_loop()));
    let oracle = scan_multifield(&gen.topology, &live, 32, &gen.sec_widths);
    assert_equivalent("acl workload", &scan, &oracle);
}

#[test]
fn aggregation_window_with_secondary_splits_matches_oracle() {
    // §3.3 aggregation windows under multi-field monitoring: a batch of
    // secondary-splitting inserts and removes lands inside one window, and
    // at every window boundary the incrementally repaired monitor must be
    // bit-identical to the full scans and the stateless oracle. Automatic
    // compaction is deferred while a window is open, so an explicit
    // `compact()` afterwards checks the ledger remap too.
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(0xA66_F1E1D ^ seed);
        let topo = random_topology(&mut rng, 5, true);
        let ops = random_ops_multifield(&mut rng, &topo, 90, WIDTH, &SEC_WIDTHS, 20, 0.3);
        let mut net = DeltaNet::new(topo.clone(), mf_config(true, Some(4)));
        let mut live: Vec<Rule> = Vec::new();
        let mut windows_with_sec_splits = 0usize;
        let mut windows_with_removes = 0usize;
        for (w, window) in ops.chunks(9).enumerate() {
            net.begin_aggregate();
            for (i, op) in window.iter().enumerate() {
                net.try_apply(op)
                    .unwrap_or_else(|e| panic!("seed {seed} window {w} op {i}: {e}"));
                track(&mut live, op);
            }
            let agg = net.take_aggregate();
            if !agg.sec_splits.is_empty() {
                windows_with_sec_splits += 1;
            }
            if window.iter().any(|op| matches!(op, Op::Remove(_))) {
                windows_with_removes += 1;
            }
            let scan = full_scan_single(&net);
            let oracle = scan_multifield(&topo, &live, WIDTH, &SEC_WIDTHS);
            assert_equivalent(
                &format!("seed {seed} window {w} scan-vs-oracle"),
                &scan,
                &oracle,
            );
            let active = net.active_violations().expect("monitor is on");
            assert_equivalent(
                &format!("seed {seed} window {w} monitor-vs-scan"),
                &active,
                &scan,
            );
        }
        assert!(
            windows_with_sec_splits > 0 && windows_with_removes > 0,
            "seed {seed}: trace too tame (sec-splitting windows: \
             {windows_with_sec_splits}, windows with removes: {windows_with_removes})"
        );
        net.compact();
        let scan = full_scan_single(&net);
        let active = net.active_violations().expect("monitor is on");
        assert_equivalent(
            &format!("seed {seed} post-compact monitor-vs-scan"),
            &active,
            &scan,
        );
    }
}

#[test]
fn secondary_constrained_loop_fires_one_appeared_event() {
    // A loop closed in exactly one secondary class must surface as exactly
    // one appeared event — even though the closing insert also splits the
    // secondary lattice, so its rule slices and the new-class slices of the
    // scoped repair overlap (the repair must not double-report, and the
    // blackhole that persists in the *other* classes must not flap).
    let mut topo = Topology::new();
    let a = topo.add_node("a");
    let b = topo.add_node("b");
    let ab = topo.add_link(a, b);
    let ba = topo.add_link(b, a);
    let mut net = DeltaNet::new(topo, mf_config(true, None));
    // Pre-split the secondary lattice so several classes exist up front.
    net.insert_rule(
        Rule::forward(RuleId(1), IpPrefix::new(32, 3, WIDTH), 5, a, ab)
            .with_secondary(SecondaryMatch::new(&[Interval::new(2, 4)])),
    );
    // a forwards [0,16) to b for every source class (b blackholes it) …
    net.insert_rule(Rule::forward(
        RuleId(2),
        IpPrefix::new(0, 4, WIDTH),
        5,
        a,
        ab,
    ));
    // … and the closing insert sends it back only for sources in [8,16).
    net.insert_rule(
        Rule::forward(RuleId(3), IpPrefix::new(0, 4, WIDTH), 5, b, ba)
            .with_secondary(SecondaryMatch::new(&[Interval::new(8, 16)])),
    );
    let events = net.monitor().expect("monitor is on").last_events();
    assert_eq!(events.len(), 1, "expected one event, got {events:?}");
    assert!(events[0].appeared, "loop must appear, got {events:?}");
    assert_eq!(events[0].key, ViolationKey::Loop(vec![a, b]));
    // The single-class loop coexists with the all-other-classes blackhole,
    // and the monitor agrees with the full plane.
    let scan = full_scan_single(&net);
    assert!(scan.iter().any(|v| v.is_loop()));
    assert!(scan.iter().any(|v| !v.is_loop()));
    let active = net.active_violations().expect("monitor is on");
    assert_equivalent("one-class loop", &active, &scan);
}

#[test]
fn field_mismatch_is_rejected_cleanly() {
    let mut rng = StdRng::seed_from_u64(7);
    let topo = random_topology(&mut rng, 3, true);
    // Single-field engine rejects a rule constraining a secondary field.
    let mut net = DeltaNet::new(
        topo.clone(),
        DeltaNetConfig {
            field_width: WIDTH,
            ..DeltaNetConfig::default()
        },
    );
    let node = topo.switch_nodes().next().unwrap();
    let link = topo.out_links(node)[0];
    let rule = Rule::forward(RuleId(1), IpPrefix::new(0, 0, WIDTH), 1, node, link)
        .with_secondary(SecondaryMatch::new(&[Interval::new(1, 5)]));
    let err = net.try_apply(&Op::Insert(rule)).unwrap_err();
    assert!(
        err.to_string().contains("secondary header field"),
        "unexpected error: {err}"
    );
    assert_eq!(net.rule_count(), 0, "rejected insert must not mutate");
    // A multi-field engine rejects a rule whose secondary interval falls
    // outside the declared width.
    let mut net = DeltaNet::new(topo.clone(), mf_config(false, None));
    let wide = Rule::forward(RuleId(2), IpPrefix::new(0, 0, WIDTH), 1, node, link)
        .with_secondary(SecondaryMatch::new(&[Interval::new(0, 1 << 7)]));
    assert!(net.try_apply(&Op::Insert(wide)).is_err());
    // The same checks hold behind the sharded engine's validation.
    let mut sharded = ShardedDeltaNet::new(
        topo.clone(),
        DeltaNetConfig {
            field_width: WIDTH,
            ..DeltaNetConfig::default()
        },
        2,
    );
    assert!(sharded.try_apply(&Op::Insert(rule)).is_err());
    assert_eq!(sharded.rule_count(), 0);
}
