//! # delta-net — umbrella crate
//!
//! A full Rust reproduction of *Delta-net: Real-time Network Verification
//! Using Atoms* (Horn, Kheradmand, Prasad — NSDI 2017). This crate simply
//! re-exports the workspace members so that examples, integration tests, and
//! downstream users can depend on a single crate:
//!
//! * [`deltanet`] — the Delta-net engine (atoms, edge labels, Algorithms
//!   1–3, queries, lattice).
//! * [`veriflow_ri`] — the Veriflow-RI baseline checker.
//! * [`netmodel`] — prefixes, intervals, topologies, rules, traces, and the
//!   shared [`netmodel::Checker`] trait.
//! * [`workloads`] — topology/BGP/SDN-IP workload generators and the eight
//!   evaluation datasets.
//!
//! Naming: the *umbrella* package is `delta-net`, imported as `delta_net`;
//! the *engine* crate is `deltanet`. Because the umbrella depends on and
//! re-exports the engine, `use delta_net::prelude::*;` and `use
//! deltanet::…;` resolve side by side, which is how the integration tests
//! and examples are written.
//!
//! See `README.md` for the workspace tour, build/test instructions, and the
//! paper's algorithm ↔ module mapping (documented in detail in
//! [`deltanet`]'s crate docs).

#![forbid(unsafe_code)]

pub use deltanet;
pub use netmodel;
pub use veriflow_ri;
pub use workloads;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use deltanet::{
        AtomId, AtomMap, AtomSet, DeltaNet, DeltaNetConfig, MonitorEvent, Parallelism,
        ReachabilityMatrix, ShardedDeltaNet, ViolationKey, ViolationMonitor,
    };
    pub use netmodel::checker::{Checker, InvariantViolation, UpdateReport, WhatIfReport};
    pub use netmodel::fib::NetworkFib;
    pub use netmodel::header::{FieldId, HeaderMatch, HeaderSpace, SecondaryMatch};
    pub use netmodel::interval::Interval;
    pub use netmodel::ip::IpPrefix;
    pub use netmodel::packet::Packet;
    pub use netmodel::rule::{Action, Priority, Rule, RuleId};
    pub use netmodel::topology::{LinkId, NodeId, Topology};
    pub use netmodel::trace::{Op, Trace};
    pub use veriflow_ri::{scan_multifield, VeriflowConfig, VeriflowRi};
    pub use workloads::{build, build_all, Dataset, DatasetId, ScaleProfile};
}
