//! Persistence round-trip differential tests: randomized traces are
//! snapshotted every few operations (single engine and 1/2/4 shards); the
//! restored engine must match the live one on atom counts, `live_bytes`,
//! the monitor's `active_violations()` bit-for-bit, and full loop/blackhole
//! rescans — and must stay observationally identical when both keep
//! applying the same ops afterwards. Logged runs recover from nearest
//! snapshot + log tail, time-travel queries agree with a fresh replay, and
//! corrupted or truncated artifacts fail with clean errors, never panics.

use std::fs;
use std::path::PathBuf;

use deltanet::persist::{self, read_log, PersistError};
use deltanet::{DeltaNet, DeltaNetConfig, LoggedNet, PersistNet, ShardedDeltaNet, Snapshot};
use netmodel::checker::Checker;
use netmodel::ip::IpPrefix;
use netmodel::rule::{Rule, RuleId};
use netmodel::topology::Topology;
use netmodel::trace::Op;
use rand::rngs::StdRng;
use rand::SeedableRng;
use testutil::{blackholes_by_node, loops_by_cycle, random_topology, OpGen};

/// `0` builds a plain single engine; `n > 0` builds `n` shards.
const ENGINE_KINDS: [usize; 4] = [0, 1, 2, 4];

fn config8() -> DeltaNetConfig {
    DeltaNetConfig {
        field_width: 8,
        check_loops_per_update: false,
        compact_threshold: None,
        monitor_violations: true,
        ..DeltaNetConfig::default()
    }
}

fn build(topo: &Topology, shards: usize) -> PersistNet {
    if shards == 0 {
        PersistNet::Single(Box::new(DeltaNet::new(topo.clone(), config8())))
    } else {
        PersistNet::Sharded(Box::new(ShardedDeltaNet::new(
            topo.clone(),
            config8(),
            shards,
        )))
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("deltanet-persist-{}-{tag}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The full restore contract: logical state, memory accounting, the live
/// monitor set, and from-scratch rescans all agree.
fn assert_state_eq(live: &PersistNet, restored: &PersistNet, ctx: &str) {
    assert_eq!(
        restored.rule_count(),
        live.rule_count(),
        "{ctx}: rule_count"
    );
    assert_eq!(
        restored.atom_count(),
        live.atom_count(),
        "{ctx}: atom_count"
    );
    assert_eq!(
        restored.live_bytes(),
        live.live_bytes(),
        "{ctx}: live_bytes"
    );
    assert_eq!(
        restored.active_violations(),
        live.active_violations(),
        "{ctx}: monitor violation set"
    );
    let mut live_all = live.check_all_loops();
    live_all.extend(live.check_all_blackholes());
    let mut restored_all = restored.check_all_loops();
    restored_all.extend(restored.check_all_blackholes());
    assert_eq!(
        loops_by_cycle(&restored_all),
        loops_by_cycle(&live_all),
        "{ctx}: loop rescan"
    );
    assert_eq!(
        blackholes_by_node(&restored_all),
        blackholes_by_node(&live_all),
        "{ctx}: blackhole rescan"
    );
}

#[test]
fn snapshot_roundtrip_differential() {
    let mut rng = StdRng::seed_from_u64(0x6e5d_1701);
    let topo = random_topology(&mut rng, 5, true);
    for kind in ENGINE_KINDS {
        let ctx = |step: usize| format!("kind {kind}, step {step}");
        let mut net = build(&topo, kind);
        net.enable_monitor();
        let mut gen = OpGen::new(8, 40, 0.35);
        let mut ops_done = 0u64;
        for step in 0..120 {
            let Some(op) = gen.next_op(&mut rng, &topo) else {
                continue;
            };
            net.try_apply(&op).unwrap();
            ops_done += 1;
            // An occasional explicit pass so snapshots also cover
            // post-compaction (renumbered) states.
            if step % 37 == 36 {
                net.compact();
            }
            if step % 25 == 24 {
                let bytes = Snapshot::of_net(&net, ops_done).to_bytes();
                let snap = Snapshot::from_bytes(&bytes).unwrap();
                assert_eq!(snap.ops_applied(), ops_done);
                let restored = snap.restore(&topo).unwrap();
                assert_state_eq(&net, &restored, &ctx(step));
            }
        }
        // Restore the final state and keep churning both engines with the
        // same ops: a faithful restore must also replay identically (atom
        // free lists, owner spill states and monitor contents all influence
        // future behaviour).
        let bytes = Snapshot::of_net(&net, ops_done).to_bytes();
        let mut restored = Snapshot::from_bytes(&bytes)
            .unwrap()
            .restore(&topo)
            .unwrap();
        assert_state_eq(&net, &restored, &format!("kind {kind}, final"));
        for _ in 0..40 {
            let Some(op) = gen.next_op(&mut rng, &topo) else {
                continue;
            };
            net.try_apply(&op).unwrap();
            restored.try_apply(&op).unwrap();
        }
        net.compact();
        restored.compact();
        assert_state_eq(&net, &restored, &format!("kind {kind}, post-restore churn"));
    }
}

/// The snapshot round-trip differential over a dst × src header space:
/// format v3 must carry the secondary lattices, the per-rule secondary
/// matches, and a monitor whose restore verification runs the cross-field
/// scan (the label-based scan would reject correct multi-field states).
#[test]
fn multifield_snapshot_roundtrip_differential() {
    const SEC: [u8; 1] = [6];
    let mut rng = StdRng::seed_from_u64(0x6e5d_1702);
    let topo = random_topology(&mut rng, 5, true);
    for kind in ENGINE_KINDS {
        let config = config8().with_secondary(&SEC);
        let mut net = if kind == 0 {
            PersistNet::Single(Box::new(DeltaNet::new(topo.clone(), config)))
        } else {
            PersistNet::Sharded(Box::new(ShardedDeltaNet::new(topo.clone(), config, kind)))
        };
        net.enable_monitor();
        let mut gen = OpGen::new(8, 40, 0.35).with_secondary(&SEC);
        let mut ops_done = 0u64;
        for step in 0..90 {
            let Some(op) = gen.next_op(&mut rng, &topo) else {
                continue;
            };
            net.try_apply(&op).unwrap();
            ops_done += 1;
            if step % 37 == 36 {
                net.compact();
            }
            if step % 30 == 29 {
                let bytes = Snapshot::of_net(&net, ops_done).to_bytes();
                let snap = Snapshot::from_bytes(&bytes).unwrap();
                assert_eq!(snap.config().secondary_count(), SEC.len());
                let restored = snap.restore(&topo).unwrap();
                assert_state_eq(&net, &restored, &format!("mf kind {kind}, step {step}"));
            }
        }
        // Restored multi-field engines must keep replaying identically.
        let bytes = Snapshot::of_net(&net, ops_done).to_bytes();
        let mut restored = Snapshot::from_bytes(&bytes)
            .unwrap()
            .restore(&topo)
            .unwrap();
        for _ in 0..30 {
            let Some(op) = gen.next_op(&mut rng, &topo) else {
                continue;
            };
            net.try_apply(&op).unwrap();
            restored.try_apply(&op).unwrap();
        }
        net.compact();
        restored.compact();
        assert_state_eq(
            &net,
            &restored,
            &format!("mf kind {kind}, post-restore churn"),
        );
        assert_eq!(
            persist::state_digest(&net),
            persist::state_digest(&restored),
            "mf kind {kind}: serialized states diverge"
        );
    }
}

#[test]
fn logged_run_recovers_from_snapshot_plus_log_tail() {
    let dir = temp_dir("recover");
    let mut rng = StdRng::seed_from_u64(0xdec0de);
    let topo = random_topology(&mut rng, 5, true);
    for kind in ENGINE_KINDS {
        let log_path = dir.join(format!("{kind}.dnlog"));
        let snap_path = dir.join(format!("{kind}.dnsnap"));
        let mut net = build(&topo, kind);
        net.enable_monitor();
        let mut logged = LoggedNet::new(net, &log_path, 0).unwrap();
        let mut gen = OpGen::new(8, 40, 0.3);
        let mut n = 0u64;
        while n < 80 {
            let Some(op) = gen.next_op(&mut rng, &topo) else {
                continue;
            };
            logged.try_apply(&op).unwrap();
            n += 1;
            if n == 40 {
                // Mid-run snapshot: recovery replays the other 40 from the log.
                logged.snapshot().unwrap().write_to(&snap_path).unwrap();
            }
        }
        assert_eq!(logged.ops_applied(), 80);
        let live = logged.into_net().unwrap();
        let (recovered, total) = persist::recover(&topo, &snap_path, &log_path).unwrap();
        assert_eq!(total, 80);
        assert_state_eq(&live, &recovered, &format!("kind {kind}, recovered"));
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn violations_at_matches_fresh_replay() {
    let mut rng = StdRng::seed_from_u64(0x71e7);
    let topo = random_topology(&mut rng, 5, true);
    let mut net = build(&topo, 0);
    let mut gen = OpGen::new(8, 40, 0.3);
    let mut log: Vec<Op> = Vec::new();
    let mut snap_bytes = Vec::new();
    while log.len() < 60 {
        let Some(op) = gen.next_op(&mut rng, &topo) else {
            continue;
        };
        net.try_apply(&op).unwrap();
        log.push(op);
        if log.len() == 30 {
            snap_bytes = Snapshot::of_net(&net, 30).to_bytes();
        }
    }
    for op_n in [0usize, 10, 30, 45, 60] {
        // Reference: a fresh monitored engine replaying the log head.
        let mut reference = build(&topo, 0);
        reference.enable_monitor();
        for op in &log[..op_n] {
            reference.try_apply(op).unwrap();
        }
        let want = reference.active_violations().unwrap();
        // With the snapshot (used when it lies at or before `op_n`,
        // rebuilt from scratch otherwise) …
        let snap = Snapshot::from_bytes(&snap_bytes).unwrap();
        let got = persist::violations_at(&topo, Some(snap), &log, op_n, config8()).unwrap();
        assert_eq!(got, want, "violations_at({op_n}) with snapshot");
        // … and without one.
        let got = persist::violations_at(&topo, None, &log, op_n, config8()).unwrap();
        assert_eq!(got, want, "violations_at({op_n}) without snapshot");
    }
    // Asking past the end of the log is a clean error.
    let err = persist::violations_at(&topo, None, &log, log.len() + 1, config8());
    assert!(matches!(err, Err(PersistError::Mismatch(_))));
}

#[test]
fn corrupted_and_truncated_artifacts_fail_cleanly() {
    let dir = temp_dir("corrupt");
    let mut rng = StdRng::seed_from_u64(0xbadbad);
    let topo = random_topology(&mut rng, 5, true);
    let mut net = build(&topo, 2);
    net.enable_monitor();
    let mut gen = OpGen::new(8, 40, 0.2);
    let mut n = 0;
    while n < 20 {
        let Some(op) = gen.next_op(&mut rng, &topo) else {
            continue;
        };
        net.try_apply(&op).unwrap();
        n += 1;
    }
    let bytes = Snapshot::of_net(&net, 20).to_bytes();
    assert!(Snapshot::from_bytes(&bytes).is_ok());

    // Any single flipped byte fails the checksum.
    for i in [0, 4, bytes.len() / 2, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        assert!(
            matches!(Snapshot::from_bytes(&bad), Err(PersistError::Corrupt(_))),
            "flipped byte {i} must be detected"
        );
    }
    // Truncation — mid-body and shorter than the trailer itself.
    for keep in [bytes.len() - 5, 7, 0] {
        assert!(
            matches!(
                Snapshot::from_bytes(&bytes[..keep]),
                Err(PersistError::Corrupt(_))
            ),
            "truncation to {keep} bytes must be detected"
        );
    }
    // A structurally valid snapshot restored against the wrong topology is
    // a mismatch, not a crash.
    let other = random_topology(&mut rng, 7, true);
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    assert!(matches!(
        snap.restore(&other),
        Err(PersistError::Mismatch(_))
    ));

    // A log truncated mid-record surfaces as a clean corruption error.
    let log_path = dir.join("truncated.dnlog");
    let src = topo.links()[0].src;
    let link = topo.links()[0].id;
    let net = build(&topo, 0);
    let mut logged = LoggedNet::new(net, &log_path, 0).unwrap();
    let r1 = Rule::forward(RuleId(1), IpPrefix::new(16, 4, 8), 5, src, link);
    let r2 = Rule::forward(RuleId(2), IpPrefix::new(32, 4, 8), 5, src, link);
    logged
        .apply_batch(&[Op::Insert(r1), Op::Insert(r2)])
        .unwrap();
    logged.flush().unwrap();
    assert_eq!(read_log(&log_path).unwrap().len(), 2);
    let log_bytes = fs::read(&log_path).unwrap();
    fs::write(&log_path, &log_bytes[..log_bytes.len() - 3]).unwrap();
    assert!(matches!(read_log(&log_path), Err(PersistError::Corrupt(_))));
    // And so does a log with the wrong magic.
    fs::write(&log_path, b"NOPE....").unwrap();
    assert!(matches!(read_log(&log_path), Err(PersistError::Corrupt(_))));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn logged_batch_failure_logs_exactly_the_applied_prefix() {
    // The pinned mid-batch semantics must hold through the write-ahead
    // wrapper too: a batch failing at op k leaves exactly ops[..k] in the
    // log, so recovery reproduces the engine's actual post-failure state.
    let dir = temp_dir("midbatch");
    let log_path = dir.join("batch.dnlog");
    let mut topo = Topology::new();
    let a = topo.add_node("a");
    let b = topo.add_node("b");
    let ab = topo.add_link(a, b);
    let net = PersistNet::Sharded(Box::new(ShardedDeltaNet::new(
        topo.clone(),
        DeltaNetConfig::default(),
        2,
    )));
    let mut logged = LoggedNet::new(net, &log_path, 0).unwrap();
    let ops = [
        Op::Insert(Rule::forward(
            RuleId(1),
            "0.0.0.0/2".parse().unwrap(),
            1,
            a,
            ab,
        )),
        Op::Insert(Rule::forward(
            RuleId(2),
            "128.0.0.0/2".parse().unwrap(),
            2,
            a,
            ab,
        )),
        Op::Remove(RuleId(99)),
        Op::Insert(Rule::forward(
            RuleId(3),
            "64.0.0.0/2".parse().unwrap(),
            3,
            a,
            ab,
        )),
    ];
    let err = logged.apply_batch(&ops).unwrap_err();
    assert_eq!(err.index, 2);
    assert_eq!(logged.ops_applied(), 2);
    logged.flush().unwrap();
    let replayable = read_log(&log_path).unwrap();
    assert_eq!(replayable, ops[..2]);
    // Replaying the log into a fresh engine reproduces the engine's state.
    let mut fresh = PersistNet::Sharded(Box::new(ShardedDeltaNet::new(
        topo,
        DeltaNetConfig::default(),
        2,
    )));
    for op in &replayable {
        fresh.try_apply(op).unwrap();
    }
    assert_state_eq(logged.net(), &fresh, "post-failure log replay");
    fs::remove_dir_all(&dir).ok();
}
