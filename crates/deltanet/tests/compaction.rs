//! Compaction equivalence tests: randomized churn traces replayed with atom
//! compaction off (the paper's split-only behaviour) and on (threshold-
//! triggered [`DeltaNet::compact`]) must be observationally identical — the
//! same normalized-interval labels on every link, the same flow-query
//! answers, and the same loop / blackhole verdicts — while the compacting
//! engine's atom-id table stays bounded by the live atoms plus the
//! threshold.

use deltanet::blackholes;
use deltanet::{DeltaNet, DeltaNetConfig};
use netmodel::checker::{Checker, InvariantViolation};
use netmodel::interval::{normalize, Interval};
use netmodel::rule::{Rule, RuleId};
use netmodel::topology::{LinkId, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const THRESHOLD: usize = 3;

/// A strongly connected 5-switch topology with drop links, over an 8-bit
/// address space (small enough to churn hard in a few hundred ops) — the
/// shared `testutil` generator.
fn churn_topology(rng: &mut StdRng) -> Topology {
    testutil::random_topology(rng, 5, true)
}

fn random_rule(rng: &mut StdRng, topo: &mut Topology, id: u64) -> Rule {
    testutil::random_rule(rng, topo, id, 8, 40)
}

fn link_intervals(net: &DeltaNet, link: LinkId) -> Vec<Interval> {
    normalize(
        net.label(link)
            .iter()
            .map(|a| net.atoms().atom_interval(a))
            .collect(),
    )
}

/// The looped address space, independent of atom numbering and cycle
/// enumeration order.
fn looped_packets(net: &DeltaNet) -> Vec<Interval> {
    normalize(
        net.check_all_loops()
            .iter()
            .flat_map(|v| match v {
                InvariantViolation::ForwardingLoop { packets, .. } => packets.clone(),
                InvariantViolation::Blackhole { .. } => Vec::new(),
            })
            .collect(),
    )
}

/// The blackholed address space per node, independent of atom numbering.
fn blackholes_by_node(net: &DeltaNet) -> BTreeMap<NodeId, Vec<Interval>> {
    let mut out: BTreeMap<NodeId, Vec<Interval>> = BTreeMap::new();
    for v in blackholes::check_blackholes(net) {
        if let InvariantViolation::Blackhole { node, packets } = v {
            out.entry(node).or_default().extend(packets);
        }
    }
    for packets in out.values_mut() {
        *packets = normalize(std::mem::take(packets));
    }
    out
}

fn assert_observationally_equal(plain: &DeltaNet, compacting: &DeltaNet, tag: &str) {
    for link in plain.topology().links().to_vec() {
        assert_eq!(
            link_intervals(plain, link.id),
            link_intervals(compacting, link.id),
            "{tag}: labels diverge on {:?}",
            link.id
        );
        // Flow queries (the §4.3.2 what-if path) agree as well.
        let a = plain.link_failure_impact(link.id, false);
        let b = compacting.link_failure_impact(link.id, false);
        assert_eq!(
            a.affected_packets, b.affected_packets,
            "{tag}: what-if packets diverge on {:?}",
            link.id
        );
        assert_eq!(
            a.affected_links, b.affected_links,
            "{tag}: what-if links diverge on {:?}",
            link.id
        );
    }
    assert_eq!(
        looped_packets(plain),
        looped_packets(compacting),
        "{tag}: loop verdicts diverge"
    );
    assert_eq!(
        blackholes_by_node(plain),
        blackholes_by_node(compacting),
        "{tag}: blackhole verdicts diverge"
    );
}

#[test]
fn compaction_on_and_off_agree_under_random_churn() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xC0_4AC7 ^ seed);
        let mut topo = churn_topology(&mut rng);
        let base = DeltaNetConfig {
            field_width: 8,
            check_loops_per_update: false,
            ..DeltaNetConfig::default()
        };
        let mut plain = DeltaNet::new(topo.clone(), base);
        let mut compacting = DeltaNet::new(
            topo.clone(),
            DeltaNetConfig {
                compact_threshold: Some(THRESHOLD),
                ..base
            },
        );
        let mut live: Vec<RuleId> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..250 {
            // Removal-heavy phases every third block of 50 steps, so bounds
            // die in bulk and the threshold fires repeatedly.
            let remove_bias = if (step / 50) % 3 == 2 { 0.7 } else { 0.3 };
            // Note: `affected_classes` legitimately differs between the two
            // engines — the plain one counts atoms split by long-dead
            // bounds — but the *links* whose labels change must agree.
            if !live.is_empty() && rng.gen_bool(remove_bias) {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                let a = plain.remove_rule(id);
                let b = compacting.remove_rule(id);
                assert_eq!(a.changed_links, b.changed_links, "seed {seed} step {step}");
            } else {
                let rule = random_rule(&mut rng, &mut topo, next_id);
                next_id += 1;
                let a = plain.insert_rule(rule);
                let b = compacting.insert_rule(rule);
                assert_eq!(a.changed_links, b.changed_links, "seed {seed} step {step}");
                live.push(rule.id);
            }
            // The compacting engine's id table never strays far beyond the
            // live atoms: at most the threshold's worth of garbage, each
            // dead bound merging away one atom.
            assert!(
                compacting.allocated_atoms() <= compacting.atom_count() + THRESHOLD + 2,
                "seed {seed} step {step}: allocated {} vs atoms {}",
                compacting.allocated_atoms(),
                compacting.atom_count()
            );
            if step % 25 == 24 {
                assert_observationally_equal(
                    &plain,
                    &compacting,
                    &format!("seed {seed} step {step}"),
                );
            }
        }
        assert_observationally_equal(&plain, &compacting, &format!("seed {seed} final"));
    }
}

#[test]
fn removing_every_rule_and_compacting_resets_the_engine() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xE4A5E ^ seed);
        let mut topo = churn_topology(&mut rng);
        let mut net = DeltaNet::new(
            topo.clone(),
            DeltaNetConfig {
                field_width: 8,
                check_loops_per_update: false,
                compact_threshold: Some(THRESHOLD),
                ..DeltaNetConfig::default()
            },
        );
        let mut ids = Vec::new();
        for id in 0..40u64 {
            let rule = random_rule(&mut rng, &mut topo, id);
            net.insert_rule(rule);
            ids.push(rule.id);
        }
        while !ids.is_empty() {
            let id = ids.swap_remove(rng.gen_range(0..ids.len()));
            net.remove_rule(id);
        }
        net.compact();
        assert_eq!(net.atom_count(), 1, "seed {seed}");
        assert_eq!(net.allocated_atoms(), 1, "seed {seed}");
        assert_eq!(net.reclaimable_bounds(), 0, "seed {seed}");
        assert_eq!(net.rule_count(), 0, "seed {seed}");
        for link in net.topology().links().to_vec() {
            assert!(net.label(link.id).is_empty(), "seed {seed}: {:?}", link.id);
        }
        // A fresh wave of rules behaves as if the engine were new.
        let rule = random_rule(&mut rng, &mut topo, 10_000);
        let report = net.insert_rule(rule);
        assert!(report.affected_classes <= net.atom_count());
    }
}
