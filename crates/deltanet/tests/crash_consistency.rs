//! Crash-consistency differential suite (crashmonkey-style): randomized
//! traces run through the fault-injecting [`FaultyBackend`], a crash is
//! simulated at every record boundary (and sampled mid-record bytes) of the
//! delta log, recovery runs under both [`RecoveryPolicy`]s, and the
//! recovered state is compared — via [`state_digest`], the monitor's
//! `active_violations()`, and full rescans — against a fresh oracle engine
//! replayed to exactly the salvaged prefix, at single/1/2/4 shards.
//!
//! Invariants proved here: `RepairTail` recovery always lands bit-identical
//! to some applied prefix (never panics, never invents ops); `Strict` fails
//! with a clean error naming the torn offset; `FsyncPerBatch` surfaces
//! fsync failures as `PersistError::Io`; snapshot writes are atomic under a
//! crash at rename; a deferred log-flush error cannot be dropped silently;
//! and a rotated multi-segment checkpoint directory recovers through torn
//! tails and corrupt snapshots.

use std::path::{Path, PathBuf};

use deltanet::fault::{FaultPlan, FaultyBackend, StorageBackend};
use deltanet::persist::{
    self, encode_record, read_log_with, state_digest, CheckpointConfig, CheckpointManager,
    Durability, LoggedNet, PersistError, PersistNet, RecoveryPolicy, Snapshot,
};
use deltanet::{DeltaNet, DeltaNetConfig, ShardedDeltaNet};
use netmodel::topology::Topology;
use netmodel::trace::Op;
use rand::rngs::StdRng;
use rand::SeedableRng;
use testutil::{blackholes_by_node, loops_by_cycle, random_topology, OpGen};

/// `0` builds a plain single engine; `n > 0` builds `n` shards.
const ENGINE_KINDS: [usize; 4] = [0, 1, 2, 4];

/// Length of the delta-log header (magic + format version).
const HEADER: u64 = 5;

fn config8() -> DeltaNetConfig {
    DeltaNetConfig {
        field_width: 8,
        check_loops_per_update: false,
        compact_threshold: None,
        monitor_violations: true,
        ..DeltaNetConfig::default()
    }
}

fn build(topo: &Topology, shards: usize) -> PersistNet {
    let mut net = if shards == 0 {
        PersistNet::Single(Box::new(DeltaNet::new(topo.clone(), config8())))
    } else {
        PersistNet::Sharded(Box::new(ShardedDeltaNet::new(
            topo.clone(),
            config8(),
            shards,
        )))
    };
    net.enable_monitor();
    net
}

/// A deterministic ~`n`-op trace over `topo`.
fn make_trace(seed: u64, topo: &Topology, n: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = OpGen::new(8, 40, 0.35);
    let mut trace = Vec::with_capacity(n);
    while trace.len() < n {
        if let Some(op) = gen.next_op(&mut rng, topo) {
            trace.push(op);
        }
    }
    trace
}

/// Byte offset after the log header and after each framed record.
fn record_boundaries(trace: &[Op]) -> Vec<u64> {
    let mut boundaries = Vec::with_capacity(trace.len() + 1);
    let mut cum = HEADER;
    boundaries.push(cum);
    for op in trace {
        cum += encode_record(op).len() as u64;
        boundaries.push(cum);
    }
    boundaries
}

/// Records fully contained in the first `crash` bytes, and the offset of
/// the first byte past the last complete record (the tear point).
fn salvage_at(boundaries: &[u64], crash: u64) -> (usize, u64) {
    if crash < HEADER {
        return (0, 0);
    }
    let salvaged = boundaries.partition_point(|&b| b <= crash) - 1;
    (salvaged, boundaries[salvaged])
}

/// Full state agreement: digest (bit-for-bit arenas + registry + monitor)
/// and the live violation set.
fn assert_bit_identical(recovered: &PersistNet, oracle: &PersistNet, ctx: &str) {
    assert_eq!(
        state_digest(recovered),
        state_digest(oracle),
        "{ctx}: state digest"
    );
    assert_eq!(
        recovered.active_violations(),
        oracle.active_violations(),
        "{ctx}: monitor violation set"
    );
}

/// The expensive variant: adds full loop/blackhole rescans.
fn assert_bit_identical_deep(recovered: &PersistNet, oracle: &PersistNet, ctx: &str) {
    assert_bit_identical(recovered, oracle, ctx);
    let mut oracle_all = oracle.check_all_loops();
    oracle_all.extend(oracle.check_all_blackholes());
    let mut recovered_all = recovered.check_all_loops();
    recovered_all.extend(recovered.check_all_blackholes());
    assert_eq!(
        loops_by_cycle(&recovered_all),
        loops_by_cycle(&oracle_all),
        "{ctx}: loop rescan"
    );
    assert_eq!(
        blackholes_by_node(&recovered_all),
        blackholes_by_node(&oracle_all),
        "{ctx}: blackhole rescan"
    );
}

fn p(s: &str) -> PathBuf {
    PathBuf::from(s)
}

/// The tentpole sweep: run a trace through a fault-free backend to capture
/// the ground-truth log bytes and a mid-run snapshot, then simulate a crash
/// at every record boundary plus sampled mid-record bytes. For each crash
/// point, `RepairTail` recovery must land bit-identical to an oracle engine
/// replayed to exactly the salvaged prefix, and `Strict` must fail naming
/// the torn offset whenever the tail is torn.
#[test]
fn crash_point_sweep_recovers_bit_identical_to_salvaged_prefix() {
    const SNAP_AT: usize = 60;
    let mut rng = StdRng::seed_from_u64(0xc4a5_4001);
    let topo = random_topology(&mut rng, 5, true);
    let trace = make_trace(0xfeed_beef, &topo, 120);
    let boundaries = record_boundaries(&trace);

    for kind in ENGINE_KINDS {
        // Ground-truth run: batches of 5 through a fault-free FaultyBackend
        // at FsyncPerBatch, snapshotting at op SNAP_AT.
        let backend = FaultyBackend::new();
        let log_path = p("/vd/wal.dnlog");
        let snap_path = p("/vd/base.dnsnap");
        let mut logged = LoggedNet::with_backend(
            build(&topo, kind),
            Box::new(backend.clone()),
            &log_path,
            0,
            Durability::FsyncPerBatch,
        )
        .unwrap();
        let snap0_bytes = Snapshot::of_net(logged.net(), 0).to_bytes();
        let mut snap_mid_bytes = Vec::new();
        for chunk in trace.chunks(5) {
            logged.apply_batch(chunk).unwrap();
            if logged.ops_applied() == SNAP_AT as u64 {
                snap_mid_bytes = logged.snapshot().unwrap().to_bytes();
            }
        }
        logged.sync().unwrap();
        let log_bytes = backend.surviving(&log_path).unwrap();
        assert_eq!(log_bytes.len() as u64, *boundaries.last().unwrap());
        assert!(!snap_mid_bytes.is_empty());
        drop(logged);

        // Crash points: a torn header, every record boundary, and sampled
        // mid-record bytes (first byte and midpoint of every 7th record).
        let mut crash_points: Vec<u64> = vec![3];
        for (i, w) in boundaries.windows(2).enumerate() {
            crash_points.push(w[1]);
            if i % 7 == 0 && w[1] - w[0] > 2 {
                crash_points.push(w[0] + 1);
                crash_points.push(w[0] + (w[1] - w[0]) / 2);
            }
        }
        crash_points.sort_unstable();

        // Incremental oracle: advances through the trace as the sweep's
        // salvaged prefix grows, so every op replays exactly once.
        let mut oracle = build(&topo, kind);
        let mut oracle_at = 0usize;

        for (point_idx, &crash) in crash_points.iter().enumerate() {
            let (salvaged, tear_offset) = salvage_at(&boundaries, crash);
            let torn = crash < HEADER || crash != boundaries[salvaged];
            while oracle_at < salvaged {
                oracle.try_apply(&trace[oracle_at]).unwrap();
                oracle_at += 1;
            }
            let snap_bytes = if salvaged >= SNAP_AT {
                &snap_mid_bytes
            } else {
                &snap0_bytes
            };

            // Strict: a torn tail is a clean error naming the offset; an
            // exact-boundary crash leaves a fully valid (shorter) log.
            let strict = FaultyBackend::new();
            strict.plant(&log_path, log_bytes[..crash as usize].to_vec());
            strict.plant(&snap_path, snap_bytes.clone());
            let strict_result = persist::recover_with(
                &topo,
                &mut strict.clone(),
                &snap_path,
                &log_path,
                RecoveryPolicy::Strict,
            );
            if torn {
                let err = strict_result.err().expect("torn tail must fail Strict");
                let msg = err.to_string();
                assert!(
                    matches!(err, PersistError::Corrupt(_)),
                    "kind {kind}, crash {crash}: strict error kind: {msg}"
                );
                assert!(
                    msg.contains(&format!("byte {tear_offset}")) || crash < HEADER,
                    "kind {kind}, crash {crash}: strict error must name the tear: {msg}"
                );
            } else {
                let (net, total, tail) = strict_result.unwrap();
                assert_eq!(total, salvaged as u64);
                assert!(tail.is_none());
                assert_bit_identical(
                    &net,
                    &oracle,
                    &format!("kind {kind}, crash {crash}, strict"),
                );
            }

            // RepairTail: always recovers, bit-identical to the salvaged
            // prefix, and truncates the torn bytes off the file.
            let faulty = FaultyBackend::new();
            faulty.plant(&log_path, log_bytes[..crash as usize].to_vec());
            faulty.plant(&snap_path, snap_bytes.clone());
            let mut handle = faulty.clone();
            let (net, total, tail) = persist::recover_with(
                &topo,
                &mut handle,
                &snap_path,
                &log_path,
                RecoveryPolicy::RepairTail,
            )
            .unwrap_or_else(|e| panic!("kind {kind}, crash {crash}: RepairTail failed: {e}"));
            assert_eq!(
                total, salvaged as u64,
                "kind {kind}, crash {crash}: salvaged op count"
            );
            assert_eq!(
                tail.is_some(),
                torn,
                "kind {kind}, crash {crash}: torn-tail report"
            );
            if let Some(tail) = tail {
                assert_eq!(tail.offset, tear_offset, "kind {kind}, crash {crash}");
                assert_eq!(
                    faulty.surviving(&log_path).unwrap().len() as u64,
                    tear_offset.max(HEADER),
                    "kind {kind}, crash {crash}: file truncated to the valid prefix"
                );
                // The repaired log now reads cleanly even under Strict.
                let reread =
                    read_log_with(&mut faulty.clone(), &log_path, RecoveryPolicy::Strict).unwrap();
                assert_eq!(reread.ops.len(), salvaged);
            }
            let ctx = format!("kind {kind}, crash {crash}, repair");
            if point_idx % 10 == 0 {
                assert_bit_identical_deep(&net, &oracle, &ctx);
            } else {
                assert_bit_identical(&net, &oracle, &ctx);
            }
        }
    }
}

/// A live crash (fail-at-byte-N mid-run, not a staged artifact): the run
/// dies partway through a batch flush; after reboot, `RepairTail` recovery
/// lands on an applied prefix at least as long as the last acknowledged
/// sync.
#[test]
fn live_crash_mid_run_recovers_to_acknowledged_prefix() {
    let mut rng = StdRng::seed_from_u64(0x11fe_cafe);
    let topo = random_topology(&mut rng, 5, true);
    let trace = make_trace(0x0dd_f00d, &topo, 100);
    for (kind, crash_at) in [(0usize, 700u64), (2, 1100), (4, 401)] {
        let backend = FaultyBackend::with_plan(FaultPlan {
            crash_at_byte: Some(crash_at),
            ..Default::default()
        });
        let log_path = p("/vd/live.dnlog");
        let snap_path = p("/vd/live.dnsnap");
        // Planted, not written: the snapshot must not consume crash budget.
        backend.plant(
            &snap_path,
            Snapshot::of_net(&build(&topo, kind), 0).to_bytes(),
        );
        let mut logged = LoggedNet::with_backend(
            build(&topo, kind),
            Box::new(backend.clone()),
            &log_path,
            0,
            Durability::FsyncPerBatch,
        )
        .unwrap();
        let mut acked = 0u64;
        let mut crashed = false;
        for chunk in trace.chunks(5) {
            logged.apply_batch(chunk).unwrap();
            match logged.sync() {
                Ok(()) => acked = logged.ops_applied(),
                Err(PersistError::Io(_)) => {
                    crashed = true;
                    break;
                }
                Err(e) => panic!("unexpected error kind: {e}"),
            }
        }
        assert!(crashed, "kind {kind}: the plan must have fired");
        assert!(backend.crashed());
        drop(logged); // deferred error was consumed by sync(); no panic

        backend.reboot();
        let (net, salvaged, _) = persist::recover_with(
            &topo,
            &mut backend.clone(),
            &snap_path,
            &log_path,
            RecoveryPolicy::RepairTail,
        )
        .unwrap();
        assert!(
            salvaged >= acked && salvaged <= trace.len() as u64,
            "kind {kind}: salvaged {salvaged} vs acked {acked}"
        );
        let mut oracle = build(&topo, kind);
        for op in &trace[..salvaged as usize] {
            oracle.try_apply(op).unwrap();
        }
        assert_bit_identical_deep(&net, &oracle, &format!("kind {kind}, live crash"));
    }
}

/// Satellite: `FsyncPerBatch` surfaces fsync failures as
/// `PersistError::Io` instead of silently succeeding, and the durability
/// ladder fsyncs exactly when it promises to.
#[test]
fn durability_ladder_honors_fsync_and_surfaces_failures() {
    let mut rng = StdRng::seed_from_u64(0xf5ac);
    let topo = random_topology(&mut rng, 4, true);
    let trace = make_trace(0xf5ac_0002, &topo, 20);

    // fsync failure at FsyncPerBatch: deferred by apply_batch, surfaced as
    // Io by the next flush().
    let backend = FaultyBackend::with_plan(FaultPlan {
        fail_fsyncs: 1,
        ..Default::default()
    });
    let mut logged = LoggedNet::with_backend(
        build(&topo, 0),
        Box::new(backend.clone()),
        &p("/vd/fsync.dnlog"),
        0,
        Durability::FsyncPerBatch,
    )
    .unwrap();
    logged.apply_batch(&trace[..5]).unwrap();
    let err = logged.flush().expect_err("fsync failure must surface");
    assert!(
        matches!(err, PersistError::Io(_)),
        "fsync failure must be PersistError::Io, got: {err}"
    );
    logged.sync().unwrap(); // the injected failure was one-shot
    drop(logged);

    // Sync counts across the ladder: Buffered and FlushPerBatch never
    // fsync on flush; FsyncPerBatch fsyncs once per batch.
    for (durability, expect_syncs) in [
        (Durability::Buffered, 0u64),
        (Durability::FlushPerBatch, 0),
        (Durability::FsyncPerBatch, 4),
    ] {
        let backend = FaultyBackend::new();
        let log_path = p("/vd/ladder.dnlog");
        let mut logged = LoggedNet::with_backend(
            build(&topo, 0),
            Box::new(backend.clone()),
            &log_path,
            0,
            durability,
        )
        .unwrap();
        for chunk in trace.chunks(5) {
            logged.apply_batch(chunk).unwrap();
        }
        assert_eq!(
            backend.sync_count(),
            expect_syncs,
            "{durability:?}: fsyncs after 4 batches"
        );
        // Buffered writes nothing until an explicit sync.
        if durability == Durability::Buffered {
            assert_eq!(backend.surviving(&log_path).unwrap().len() as u64, HEADER);
        }
        logged.sync().unwrap();
        assert_eq!(backend.sync_count(), expect_syncs + 1);
        let report =
            read_log_with(&mut backend.clone(), &log_path, RecoveryPolicy::Strict).unwrap();
        assert_eq!(report.ops.len(), trace.len(), "{durability:?}: all logged");
        drop(logged);
    }
}

/// Satellite: snapshot writes are atomic — a crash at the rename leaves the
/// previous good snapshot byte-for-byte intact and restorable.
#[test]
fn atomic_snapshot_survives_crash_at_rename() {
    let mut rng = StdRng::seed_from_u64(0xa70a);
    let topo = random_topology(&mut rng, 5, true);
    let trace = make_trace(0xa70a_0003, &topo, 40);
    let backend = FaultyBackend::new();
    let snap_path = p("/vd/state.dnsnap");

    let mut net = build(&topo, 2);
    for op in &trace[..20] {
        net.try_apply(op).unwrap();
    }
    let digest20 = state_digest(&net);
    Snapshot::of_net(&net, 20)
        .write_to_backend(&mut backend.clone(), &snap_path)
        .unwrap();
    let good_bytes = backend.surviving(&snap_path).unwrap();

    for op in &trace[20..] {
        net.try_apply(op).unwrap();
    }
    backend.inject(FaultPlan {
        crash_on_rename: true,
        ..Default::default()
    });
    let err = Snapshot::of_net(&net, 40)
        .write_to_backend(&mut backend.clone(), &snap_path)
        .expect_err("crash at rename must surface");
    assert!(matches!(err, PersistError::Io(_)));
    assert!(backend.crashed());

    backend.reboot();
    assert_eq!(
        backend.surviving(&snap_path).unwrap(),
        good_bytes,
        "old snapshot must be untouched"
    );
    let snap = Snapshot::read_from_backend(&mut backend.clone(), &snap_path).unwrap();
    assert_eq!(snap.ops_applied(), 20);
    let restored = snap.restore(&topo).unwrap();
    assert_eq!(state_digest(&restored), digest20);
}

/// Satellite: a deferred log-flush error is impossible to lose —
/// `into_net` surfaces it, and dropping the wrapper with one pending
/// panics. A transient short write heals via truncate-then-retry without
/// duplicating records.
#[test]
fn deferred_flush_errors_cannot_be_dropped_and_short_writes_heal() {
    let mut rng = StdRng::seed_from_u64(0xdefe);
    let topo = random_topology(&mut rng, 4, true);
    let trace = make_trace(0xdefe_0004, &topo, 20);
    let log_path = p("/vd/deferred.dnlog");

    // (a) into_net surfaces the deferred error instead of dropping it.
    let backend = FaultyBackend::new();
    let mut logged = LoggedNet::with_backend(
        build(&topo, 0),
        Box::new(backend.clone()),
        &log_path,
        0,
        Durability::FlushPerBatch,
    )
    .unwrap();
    logged.apply_batch(&trace[..5]).unwrap();
    backend.inject(FaultPlan {
        fail_append_at_byte: Some(backend.bytes_appended() + 10),
        ..Default::default()
    });
    logged.apply_batch(&trace[5..10]).unwrap(); // flush failure deferred
    match logged.into_net() {
        Err(PersistError::Io(_)) => {}
        Err(e) => panic!("deferred error surfaced with the wrong kind: {e}"),
        Ok(_) => panic!("deferred error must surface from into_net"),
    }

    // (b) dropping with a pending deferred error panics.
    let backend = FaultyBackend::new();
    let mut logged = LoggedNet::with_backend(
        build(&topo, 0),
        Box::new(backend.clone()),
        &log_path,
        0,
        Durability::FlushPerBatch,
    )
    .unwrap();
    logged.apply_batch(&trace[..5]).unwrap();
    backend.inject(FaultPlan {
        fail_append_at_byte: Some(backend.bytes_appended() + 10),
        ..Default::default()
    });
    logged.apply_batch(&trace[5..10]).unwrap();
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(logged)))
        .expect_err("drop with pending deferred error must panic");
    let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("deferred log-flush error"),
        "panic message: {msg}"
    );

    // (c) wounded truncate-then-retry: the short write lands a partial
    // record; the retry truncates back and re-appends, leaving a log that
    // parses cleanly with every op exactly once.
    let backend = FaultyBackend::new();
    let mut logged = LoggedNet::with_backend(
        build(&topo, 0),
        Box::new(backend.clone()),
        &log_path,
        0,
        Durability::FlushPerBatch,
    )
    .unwrap();
    logged.apply_batch(&trace[..5]).unwrap();
    let committed = backend.surviving(&log_path).unwrap().len();
    backend.inject(FaultPlan {
        fail_append_at_byte: Some(backend.bytes_appended() + 7),
        ..Default::default()
    });
    logged.apply_batch(&trace[5..10]).unwrap(); // short write, deferred
    let surviving = backend.surviving(&log_path).unwrap().len();
    assert!(
        surviving > committed,
        "the short write must have landed a partial record"
    );
    assert!(matches!(logged.flush(), Err(PersistError::Io(_)))); // surface it
    logged.flush().unwrap(); // retry: truncate + re-append succeeds
    let report = read_log_with(&mut backend.clone(), &log_path, RecoveryPolicy::Strict).unwrap();
    assert_eq!(report.ops, trace[..10].to_vec(), "no duplicate records");
    drop(logged);
}

fn checkpoint_cfg(every_ops: u64, retain: usize) -> CheckpointConfig {
    CheckpointConfig {
        every_ops,
        retain,
        durability: Durability::FsyncPerBatch,
    }
}

fn dir_artifacts(backend: &FaultyBackend, dir: &Path) -> (Vec<String>, Vec<String>) {
    let mut snaps = Vec::new();
    let mut segs = Vec::new();
    for path in backend.clone().list_dir(dir).unwrap() {
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        if name.starts_with("snap-") {
            snaps.push(name);
        } else if name.starts_with("log-") {
            segs.push(name);
        }
    }
    (snaps, segs)
}

/// Satellite: recovery and `violations_at` over a rotated multi-segment
/// log with a checkpoint mid-history, including a segment boundary that
/// falls inside a batch (aggregation) window, plus retention pruning.
#[test]
fn checkpoint_manager_rotates_retains_and_recovers_multi_segment() {
    let mut rng = StdRng::seed_from_u64(0xc4ec);
    let topo = random_topology(&mut rng, 5, true);
    let trace = make_trace(0xc4ec_0005, &topo, 120);
    let backend = FaultyBackend::new();
    let dir = p("/vd/ckpt");

    let mut mgr = CheckpointManager::create(
        Box::new(backend.clone()),
        &dir,
        build(&topo, 2),
        0,
        checkpoint_cfg(25, 2),
    )
    .unwrap();
    // Batches of 8 against a 25-op cadence: every rotation lands inside a
    // batch window, so a batch's records straddle two segments.
    for chunk in trace.chunks(8) {
        mgr.apply_batch(chunk).unwrap();
    }
    assert_eq!(mgr.ops_applied(), 120);
    assert_eq!(mgr.segment_start(), 100);
    assert_eq!(mgr.last_checkpoint(), 104);

    // Rotation at exact multiples; snapshots at the commit after each
    // crossing; retention keeps the newest two snapshots and only the
    // segments needed to replay from the oldest retained one.
    let (snaps, segs) = dir_artifacts(&backend, &dir);
    assert_eq!(
        snaps,
        vec!["snap-000000000080.dnsnap", "snap-000000000104.dnsnap"]
    );
    assert_eq!(
        segs,
        vec!["log-000000000075.dnlog", "log-000000000100.dnlog"]
    );

    let live = mgr.close().unwrap();
    let live_digest = state_digest(&live);

    // Clean recovery (Strict: nothing is torn).
    let (mut mgr2, report) = CheckpointManager::recover(
        Box::new(backend.clone()),
        &dir,
        &topo,
        RecoveryPolicy::Strict,
        checkpoint_cfg(25, 2),
    )
    .unwrap();
    assert_eq!(report.baseline_ops, 104);
    assert_eq!(report.replayed_ops, 16);
    assert_eq!(report.ops_incorporated, 120);
    assert_eq!(report.segments_replayed, 1);
    assert!(report.torn.is_none());
    assert_eq!(state_digest(mgr2.net()), live_digest);

    // Time-travel across the retained window, including op 102 — past a
    // segment boundary (100) that fell inside a batch window — and op 85,
    // which needs the snapshot at 80 plus a partial segment replay.
    for op_n in [80u64, 85, 100, 102, 104, 110, 120] {
        let mut oracle = build(&topo, 2);
        for op in &trace[..op_n as usize] {
            oracle.try_apply(op).unwrap();
        }
        let got = CheckpointManager::violations_at(
            &mut backend.clone(),
            &dir,
            &topo,
            op_n,
            RecoveryPolicy::Strict,
        )
        .unwrap();
        assert_eq!(
            got,
            oracle.active_violations().unwrap(),
            "violations_at({op_n})"
        );
    }
    // History before the oldest retained checkpoint is gone — clean error.
    let err = CheckpointManager::violations_at(
        &mut backend.clone(),
        &dir,
        &topo,
        27,
        RecoveryPolicy::Strict,
    );
    assert!(matches!(err, Err(PersistError::Mismatch(_))));

    // The recovered manager keeps appending into the same segment; a
    // subsequent recovery sees the extended history.
    let extra = make_trace(0xc4ec_0006, &topo, 10);
    let mut oracle_ops: Vec<Op> = trace.clone();
    for chunk in extra.chunks(5) {
        let applied = mgr2.apply_batch(chunk).unwrap().len();
        oracle_ops.extend_from_slice(&chunk[..applied]);
    }
    mgr2.sync().unwrap();
    let after_digest = state_digest(mgr2.net());
    drop(mgr2);
    let (mgr3, report3) = CheckpointManager::recover(
        Box::new(backend.clone()),
        &dir,
        &topo,
        RecoveryPolicy::Strict,
        checkpoint_cfg(25, 2),
    )
    .unwrap();
    assert_eq!(report3.ops_incorporated, oracle_ops.len() as u64);
    assert_eq!(state_digest(mgr3.net()), after_digest);
    drop(mgr3);
}

/// Regression (ISSUE 10 satellite): retention vs. time-travel at the exact
/// segment boundary. With batches aligned to the cadence every snapshot
/// lands exactly at a segment start, so the segment *ending* at the oldest
/// retained snapshot satisfies retention's `end <= oldest_kept` and is
/// deleted on every rotation. Time-traveling to the ops just after the
/// oldest retained snapshot must still succeed from the surviving segments
/// — retention must never delete a segment the oldest snapshot needs.
#[test]
fn retention_never_strands_time_travel_just_after_oldest_snapshot() {
    let mut rng = StdRng::seed_from_u64(0xc4fb);
    let topo = random_topology(&mut rng, 5, true);
    let trace = make_trace(0xc4fb_0008, &topo, 24);
    let backend = FaultyBackend::new();
    let dir = p("/vd/retention");

    let mut mgr = CheckpointManager::create(
        Box::new(backend.clone()),
        &dir,
        build(&topo, 2),
        0,
        checkpoint_cfg(4, 2),
    )
    .unwrap();
    // Batches of 4 against a 4-op cadence: six rotations, each snapshot at
    // a segment start, each rotation making one more segment deletable.
    for chunk in trace.chunks(4) {
        mgr.apply_batch(chunk).unwrap();
    }
    assert_eq!(mgr.ops_applied(), 24);
    assert_eq!(mgr.checkpoints_written(), 7); // initial + one per rotation
    drop(mgr.close().unwrap());

    // Retention kept the newest two snapshots and exactly the segments
    // needed to replay forward from the oldest one — everything older,
    // including the segment whose end equals the oldest retained snapshot,
    // is gone.
    let (snaps, segs) = dir_artifacts(&backend, &dir);
    assert_eq!(
        snaps,
        vec!["snap-000000000020.dnsnap", "snap-000000000024.dnsnap"]
    );
    assert_eq!(
        segs,
        vec!["log-000000000020.dnlog", "log-000000000024.dnlog"]
    );

    // Time-travel to the oldest retained snapshot and every op just after
    // it: baseline snap-20 plus a replay that starts at the first record of
    // segment log-20 (the `end == oldest_kept` equality boundary).
    for op_n in [20u64, 21, 22, 23, 24] {
        let mut oracle = build(&topo, 2);
        for op in &trace[..op_n as usize] {
            oracle.try_apply(op).unwrap();
        }
        let got = CheckpointManager::violations_at(
            &mut backend.clone(),
            &dir,
            &topo,
            op_n,
            RecoveryPolicy::Strict,
        )
        .unwrap();
        assert_eq!(
            got,
            oracle.active_violations().unwrap(),
            "violations_at({op_n})"
        );
    }
    // One op before the horizon has no snapshot at or before it: a clean
    // error, not a bogus replay.
    let err = CheckpointManager::violations_at(
        &mut backend.clone(),
        &dir,
        &topo,
        19,
        RecoveryPolicy::Strict,
    );
    assert!(matches!(err, Err(PersistError::Mismatch(_))));
}

/// Crash sweep over a checkpoint directory: crash at every record boundary
/// (and sampled bytes) of the *final* segment; `RepairTail` recovery must
/// land bit-identical to the oracle at the salvaged prefix. Also: a corrupt
/// newest snapshot falls back to the previous checkpoint, and a torn
/// non-final segment is corruption even under `RepairTail`.
#[test]
fn checkpoint_crash_sweep_with_snapshot_fallback() {
    let mut rng = StdRng::seed_from_u64(0xc4fa);
    let topo = random_topology(&mut rng, 5, true);
    let trace = make_trace(0xc4fa_0007, &topo, 120);
    let backend = FaultyBackend::new();
    let dir = p("/vd/sweep");

    let mut mgr = CheckpointManager::create(
        Box::new(backend.clone()),
        &dir,
        build(&topo, 1),
        0,
        checkpoint_cfg(25, 3),
    )
    .unwrap();
    for chunk in trace.chunks(8) {
        mgr.apply_batch(chunk).unwrap();
    }
    mgr.close().unwrap();

    // Capture the pristine directory contents.
    let files: Vec<(PathBuf, Vec<u8>)> = backend
        .clone()
        .list_dir(&dir)
        .unwrap()
        .into_iter()
        .map(|path| {
            let bytes = backend.surviving(&path).unwrap();
            (path, bytes)
        })
        .collect();
    let last_seg_path = p("/vd/sweep/log-000000000100.dnlog");
    let last_seg = backend.surviving(&last_seg_path).unwrap();
    let tail_trace = &trace[100..];
    let tail_boundaries = record_boundaries(tail_trace);
    assert_eq!(last_seg.len() as u64, *tail_boundaries.last().unwrap());

    let stage = |last_seg_keep: usize| -> FaultyBackend {
        let staged = FaultyBackend::new();
        for (path, bytes) in &files {
            staged.plant(path, bytes.clone());
        }
        staged.plant(&last_seg_path, last_seg[..last_seg_keep].to_vec());
        staged
    };

    let mut crash_points: Vec<u64> = Vec::new();
    for (i, w) in tail_boundaries.windows(2).enumerate() {
        crash_points.push(w[1]);
        if i % 3 == 0 && w[1] - w[0] > 2 {
            crash_points.push(w[0] + (w[1] - w[0]) / 2);
        }
    }
    crash_points.sort_unstable();
    let mut oracle = build(&topo, 1);
    let mut oracle_at = 0usize;
    for &crash in &crash_points {
        let (salvaged_in_seg, tear_offset) = salvage_at(&tail_boundaries, crash);
        let global = 100 + salvaged_in_seg;
        while oracle_at < global {
            oracle.try_apply(&trace[oracle_at]).unwrap();
            oracle_at += 1;
        }
        let staged = stage(crash as usize);
        let (mgr, report) = CheckpointManager::recover(
            Box::new(staged.clone()),
            &dir,
            &topo,
            RecoveryPolicy::RepairTail,
            checkpoint_cfg(25, 3),
        )
        .unwrap_or_else(|e| panic!("crash {crash}: RepairTail recovery failed: {e}"));
        // Below the newest snapshot (op 104) the snapshot state wins.
        assert_eq!(
            report.ops_incorporated,
            (global as u64).max(104),
            "crash {crash}: recovered position"
        );
        assert_eq!(report.torn.is_some(), crash != tear_offset, "crash {crash}");
        if global as u64 >= 104 {
            assert_bit_identical(mgr.net(), &oracle, &format!("crash {crash}"));
        }
        drop(mgr);
    }

    // Corrupt newest snapshot → fall back to the previous checkpoint and
    // still recover the full history bit-identically.
    while oracle_at < trace.len() {
        oracle.try_apply(&trace[oracle_at]).unwrap();
        oracle_at += 1;
    }
    let staged = stage(last_seg.len());
    let snap_path = p("/vd/sweep/snap-000000000104.dnsnap");
    let mut bad = staged.surviving(&snap_path).unwrap();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x20;
    staged.plant(&snap_path, bad);
    let (mgr, report) = CheckpointManager::recover(
        Box::new(staged.clone()),
        &dir,
        &topo,
        RecoveryPolicy::RepairTail,
        checkpoint_cfg(25, 3),
    )
    .unwrap();
    assert_eq!(report.snapshots_skipped, 1);
    assert!(report.baseline_ops < 104);
    assert_eq!(report.ops_incorporated, 120);
    assert_bit_identical_deep(mgr.net(), &oracle, "snapshot fallback");
    drop(mgr);

    // A torn non-final segment is unrecoverable corruption, even under
    // RepairTail (only the crash-active tail may legally be torn). The
    // newest snapshot is corrupted too so replay is forced through the
    // torn middle segment.
    let staged = stage(last_seg.len());
    let mid_seg_path = p("/vd/sweep/log-000000000075.dnlog");
    let mid_seg = staged.surviving(&mid_seg_path).unwrap();
    staged.plant(&mid_seg_path, mid_seg[..mid_seg.len() - 3].to_vec());
    let mut bytes = staged.surviving(&snap_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    staged.plant(&snap_path, bytes);
    let err = CheckpointManager::recover(
        Box::new(staged.clone()),
        &dir,
        &topo,
        RecoveryPolicy::RepairTail,
        checkpoint_cfg(25, 3),
    );
    assert!(
        matches!(
            err,
            Err(PersistError::Corrupt(_) | PersistError::Mismatch(_))
        ),
        "torn middle segment must not silently recover"
    );
}
