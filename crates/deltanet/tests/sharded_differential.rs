//! Sharded-vs-single differential tests: identical randomized traces —
//! inserts, removals, compaction passes, and rules straddling shard
//! boundaries — replayed through a plain [`DeltaNet`] and a
//! [`ShardedDeltaNet`] at several shard counts (including a non-power-of-two
//! count, so boundaries fall at non-prefix positions and straddling is
//! common) must be observationally identical: the same per-update changed
//! links, the same loop and blackhole verdicts, the same labels and what-if
//! answers as normalized intervals, and atom counts that agree exactly once
//! the interior shard boundaries are accounted for.

use deltanet::{DeltaNet, DeltaNetConfig, Parallelism, ShardedDeltaNet};
use netmodel::checker::Checker;
use netmodel::interval::{normalize, Interval};
use netmodel::rule::Rule;
use netmodel::topology::{LinkId, Topology};
use netmodel::trace::Op;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use testutil::{
    blackholes_by_node, loops_by_cycle, random_rule as random_rule_in, random_topology,
};

/// Shard counts exercised by every test; 7 is deliberately not a power of
/// two, so its boundaries align with no prefix and wide rules straddle.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// A strongly connected 5-switch topology with drop links, over an 8-bit
/// address space (small enough to churn hard in a few hundred ops) — the
/// shared `testutil` generator.
fn small_topology(rng: &mut StdRng) -> Topology {
    random_topology(rng, 5, true)
}

/// Short prefix lengths are common (uniform `0..=8`), so many rules span
/// several shards.
fn random_rule(rng: &mut StdRng, topo: &mut Topology, id: u64) -> Rule {
    random_rule_in(rng, topo, id, 8, 40)
}

fn plain_label_intervals(net: &DeltaNet, link: LinkId) -> Vec<Interval> {
    normalize(
        net.label(link)
            .iter()
            .map(|a| net.atoms().atom_interval(a))
            .collect(),
    )
}

/// How many packet classes the sharded engine counts beyond the single
/// engine: one per interior shard boundary that is not also an interval
/// bound of the single engine's atom map (those boundaries split an atom the
/// single engine keeps whole).
fn boundary_extra(plain: &DeltaNet, sharded: &ShardedDeltaNet) -> usize {
    sharded
        .shard_ranges()
        .iter()
        .skip(1)
        .filter(|range| !plain.atoms().contains_bound(range.lo()))
        .count()
}

/// Whether `interval` crosses at least one interior shard boundary.
fn straddles(sharded: &ShardedDeltaNet, interval: Interval) -> bool {
    sharded
        .shard_ranges()
        .iter()
        .skip(1)
        .any(|range| interval.lo() < range.lo() && range.lo() < interval.hi())
}

/// Asserts every observable quantity agrees. `exact_atoms` additionally
/// pins the atom-count sum; it must be off while threshold-triggered
/// compaction is live, because the plain engine compacts on a *global*
/// reclaimable count while each shard compacts on its own, so their
/// dead-bound sets (never their observable behaviour) drift between passes.
fn assert_observationally_equal(
    plain: &DeltaNet,
    sharded: &ShardedDeltaNet,
    exact_atoms: bool,
    tag: &str,
) {
    assert_eq!(
        plain.rule_count(),
        sharded.rule_count(),
        "{tag}: rule count"
    );
    for link in plain.topology().links().to_vec() {
        assert_eq!(
            plain_label_intervals(plain, link.id),
            sharded.label_intervals(link.id),
            "{tag}: labels diverge on {:?}",
            link.id
        );
        let a = plain.link_failure_impact(link.id, true);
        let b = sharded.link_failure_impact(link.id, true);
        assert_eq!(
            a.affected_packets, b.affected_packets,
            "{tag}: what-if packets diverge on {:?}",
            link.id
        );
        assert_eq!(
            a.affected_links, b.affected_links,
            "{tag}: what-if links diverge on {:?}",
            link.id
        );
        assert_eq!(
            loops_by_cycle(&a.violations),
            loops_by_cycle(&b.violations),
            "{tag}: what-if loop verdicts diverge on {:?}",
            link.id
        );
    }
    assert_eq!(
        loops_by_cycle(&plain.check_all_loops()),
        loops_by_cycle(&sharded.check_all_loops()),
        "{tag}: full loop audits diverge"
    );
    assert_eq!(
        blackholes_by_node(&plain.check_all_blackholes()),
        blackholes_by_node(&sharded.check_all_blackholes()),
        "{tag}: blackhole verdicts diverge"
    );
    // When monitoring is on, the maintained violation state must agree with
    // the full scans on both engines: exactly on the single engine, and at
    // the cycle/node level across the shard merge.
    if let Some(active) = plain.active_violations() {
        let mut expect = plain.check_all_loops();
        expect.extend(plain.check_all_blackholes());
        assert_eq!(active, expect, "{tag}: plain monitor diverges from scans");
    }
    if let Some(active) = sharded.active_violations() {
        assert_eq!(
            loops_by_cycle(&active),
            loops_by_cycle(&sharded.check_all_loops()),
            "{tag}: sharded monitor loops diverge from scans"
        );
        assert_eq!(
            blackholes_by_node(&active),
            blackholes_by_node(&sharded.check_all_blackholes()),
            "{tag}: sharded monitor blackholes diverge from scans"
        );
    }
    // Atom-count sums: exact once the interior boundaries are accounted.
    if exact_atoms {
        assert_eq!(
            sharded.atom_count(),
            plain.atom_count() + boundary_extra(plain, sharded),
            "{tag}: atom-count sums diverge (boundary extra {})",
            boundary_extra(plain, sharded)
        );
    }
}

#[test]
fn sharded_engine_matches_single_engine_under_random_churn() {
    for seed in 0..4u64 {
        for shards in SHARD_COUNTS {
            let mut rng = StdRng::seed_from_u64(0x5AAD ^ (seed << 8) ^ shards as u64);
            let mut topo = small_topology(&mut rng);
            // Odd seeds churn with per-shard automatic compaction on, so the
            // equivalence also covers threshold-triggered passes.
            // Monitoring is on throughout, so this suite also pins the
            // shard-wise merged live violation state against the full scans.
            let config = DeltaNetConfig {
                field_width: 8,
                check_loops_per_update: true,
                compact_threshold: if seed % 2 == 1 { Some(3) } else { None },
                monitor_violations: true,
                ..DeltaNetConfig::default()
            };
            // Class/atom counts are compared exactly only while no automatic
            // compaction can fire (see `assert_observationally_equal`).
            let aligned_compaction = config.compact_threshold.is_none();
            let mut plain = DeltaNet::new(topo.clone(), config);
            let mut sharded = ShardedDeltaNet::new(topo.clone(), config, shards);
            let mut live: Vec<Rule> = Vec::new();
            let mut next_id = 0u64;
            for step in 0..200 {
                let remove = !live.is_empty() && rng.gen_bool(0.35);
                let (op, interval) = if remove {
                    let rule = live.swap_remove(rng.gen_range(0..live.len()));
                    (Op::Remove(rule.id), rule.interval())
                } else {
                    let rule = random_rule(&mut rng, &mut topo, next_id);
                    next_id += 1;
                    if live.iter().any(|r| r.conflicts_with(&rule)) {
                        continue;
                    }
                    live.push(rule);
                    (Op::Insert(rule), rule.interval())
                };
                let a = plain.apply(&op);
                let b = sharded.apply(&op);
                let tag = format!("seed {seed} shards {shards} step {step}");
                assert_eq!(a.changed_links, b.changed_links, "{tag}: changed links");
                assert_eq!(
                    loops_by_cycle(&a.violations),
                    loops_by_cycle(&b.violations),
                    "{tag}: per-update loop verdicts"
                );
                // Merged delta-graph class counts: identical unless the rule
                // straddles a boundary, in which case the sharded engine
                // counts each split piece (never fewer, at most one extra
                // per interior boundary crossed). Only comparable while
                // compaction timing cannot diverge.
                if !aligned_compaction {
                    // Observable parts (changed links, verdicts) were already
                    // compared above; class counts drift with pass timing.
                } else if straddles(&sharded, interval) {
                    assert!(
                        b.affected_classes >= a.affected_classes,
                        "{tag}: straddling op lost classes ({} vs {})",
                        b.affected_classes,
                        a.affected_classes
                    );
                    assert!(
                        b.affected_classes < a.affected_classes + shards,
                        "{tag}: straddling op over-counted ({} vs {})",
                        b.affected_classes,
                        a.affected_classes
                    );
                } else {
                    assert_eq!(
                        a.affected_classes, b.affected_classes,
                        "{tag}: non-straddling class counts"
                    );
                }
                // An explicit compaction pass mid-trace on both engines.
                if step == 120 {
                    plain.compact();
                    sharded.compact();
                }
                if step % 25 == 24 {
                    assert_observationally_equal(&plain, &sharded, aligned_compaction, &tag);
                }
            }
            // A final explicit pass on both engines erases all dead bounds,
            // so the atom-count sum is exact again even after divergent
            // threshold-triggered compaction timing.
            plain.compact();
            sharded.compact();
            assert_observationally_equal(
                &plain,
                &sharded,
                true,
                &format!("seed {seed} shards {shards} final"),
            );
        }
    }
}

#[test]
fn batched_application_matches_single_engine() {
    for shards in SHARD_COUNTS {
        let mut rng = StdRng::seed_from_u64(0xBA7C ^ shards as u64);
        let mut topo = small_topology(&mut rng);
        let config = DeltaNetConfig {
            field_width: 8,
            check_loops_per_update: true,
            compact_threshold: None,
            monitor_violations: true,
            ..DeltaNetConfig::default()
        };
        // Record a well-formed trace first.
        let mut ops: Vec<Op> = Vec::new();
        let mut live: Vec<Rule> = Vec::new();
        let mut next_id = 0u64;
        while ops.len() < 160 {
            if !live.is_empty() && rng.gen_bool(0.35) {
                let rule = live.swap_remove(rng.gen_range(0..live.len()));
                ops.push(Op::Remove(rule.id));
            } else {
                let rule = random_rule(&mut rng, &mut topo, next_id);
                next_id += 1;
                if live.iter().any(|r| r.conflicts_with(&rule)) {
                    continue;
                }
                live.push(rule);
                ops.push(Op::Insert(rule));
            }
        }
        let mut plain = DeltaNet::new(topo.clone(), config);
        let mut sharded =
            ShardedDeltaNet::with_parallelism(topo.clone(), config, shards, Parallelism::fixed(3));
        let plain_reports: Vec<_> = ops.iter().map(|op| plain.apply(op)).collect();
        let mut sharded_reports = Vec::new();
        for window in ops.chunks(16) {
            sharded_reports.extend(sharded.apply_batch(window).expect("trace is well-formed"));
        }
        assert_eq!(plain_reports.len(), sharded_reports.len());
        for (i, (a, b)) in plain_reports.iter().zip(&sharded_reports).enumerate() {
            assert_eq!(a.rule_id, b.rule_id, "shards {shards} op {i}");
            assert_eq!(a.was_insert, b.was_insert, "shards {shards} op {i}");
            assert_eq!(
                a.changed_links, b.changed_links,
                "shards {shards} op {i}: changed links"
            );
            assert_eq!(
                loops_by_cycle(&a.violations),
                loops_by_cycle(&b.violations),
                "shards {shards} op {i}: loop verdicts"
            );
        }
        assert_observationally_equal(
            &plain,
            &sharded,
            true,
            &format!("shards {shards} batched final"),
        );
    }
}
