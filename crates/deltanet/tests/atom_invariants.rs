//! Randomized engine-level invariant tests, below the workspace-level
//! integration suites: the atom map's partition invariant, `AtomSet`
//! round-trips against a `BTreeSet` model, and the owner BST's
//! highest-priority semantics against a sorted-vector model.

use deltanet::atoms::{AtomId, AtomMap};
use deltanet::atomset::AtomSet;
use deltanet::owner::legacy::{BTreeSourceRules, HashOwner};
use deltanet::owner::{Owner, RuleStore, SourceRules};
use netmodel::interval::Interval;
use netmodel::rule::RuleId;
use netmodel::topology::{LinkId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// After any sequence of `create_atoms` calls, the atoms are consecutive,
/// disjoint, cover the whole field space, and `atom_of_value` agrees with
/// `atom_interval` everywhere; `atoms_of` reproduces each inserted interval
/// exactly.
#[test]
fn atom_map_partitions_field_space_under_random_inserts() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = 10u8;
        let max = 1u128 << width;
        let mut m = AtomMap::new(width);
        let mut inserted: Vec<Interval> = Vec::new();
        for _ in 0..rng.gen_range(1..60) {
            let interval = testutil::random_interval(&mut rng, width);
            let delta = m.create_atoms(interval);
            assert!(delta.len() <= 2, "seed {seed}: more than two splits");
            inserted.push(interval);
        }

        // Partition: consecutive, disjoint, covering.
        let mut pieces: Vec<Interval> = m.iter().map(|(_, iv)| iv).collect();
        pieces.sort();
        assert_eq!(pieces.len(), m.atom_count());
        assert!(m.atom_count() <= 2 * inserted.len() + 1);
        assert_eq!(pieces.first().unwrap().lo(), 0, "seed {seed}");
        assert_eq!(pieces.last().unwrap().hi(), max, "seed {seed}");
        for w in pieces.windows(2) {
            assert_eq!(w[0].hi(), w[1].lo(), "seed {seed}: gap or overlap");
        }

        // ⟦interval⟧ is exact for every inserted interval.
        for iv in &inserted {
            let atoms = m.atoms_of(*iv);
            assert_eq!(atoms.len(), m.atoms_of_count(*iv));
            let total: u128 = atoms.iter().map(|&a| m.atom_interval(a).len()).sum();
            assert_eq!(total, iv.len(), "seed {seed}: {iv} not covered exactly");
            for &a in &atoms {
                assert!(iv.contains_interval(&m.atom_interval(a)));
            }
        }

        // Point queries agree with the interval table.
        for x in 0..max {
            let a = m.atom_of_value(x);
            assert!(m.atom_interval(a).contains(x), "seed {seed}: value {x}");
        }
    }
}

/// Building an `AtomSet` from any id sequence and iterating it back yields
/// the sorted deduplicated ids, and union/intersection/difference round-trip
/// through the `BTreeSet` model (both the allocating and in-place forms).
#[test]
fn atomset_set_algebra_round_trips_against_model() {
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(0xA70_5E7 ^ seed);
        let draw = |rng: &mut StdRng| -> Vec<u32> {
            let n = rng.gen_range(0..80);
            (0..n).map(|_| rng.gen_range(0..400u32)).collect()
        };
        let a_ids = draw(&mut rng);
        let b_ids = draw(&mut rng);

        let a: AtomSet = a_ids.iter().map(|&x| AtomId(x)).collect();
        let b: AtomSet = b_ids.iter().map(|&x| AtomId(x)).collect();
        let model_a: BTreeSet<u32> = a_ids.iter().copied().collect();
        let model_b: BTreeSet<u32> = b_ids.iter().copied().collect();

        // Iteration yields sorted, deduplicated ids.
        let back: Vec<u32> = a.iter().map(|x| x.0).collect();
        let model_back: Vec<u32> = model_a.iter().copied().collect();
        assert_eq!(back, model_back, "seed {seed}");
        assert_eq!(a.len(), model_a.len());
        for &x in &model_a {
            assert!(a.contains(AtomId(x)));
        }

        // Allocating algebra.
        let pairs: [(AtomSet, Vec<u32>); 3] = [
            (a.union(&b), model_a.union(&model_b).copied().collect()),
            (
                a.intersection(&b),
                model_a.intersection(&model_b).copied().collect(),
            ),
            (
                a.difference(&b),
                model_a.difference(&model_b).copied().collect(),
            ),
        ];
        for (i, (got, want)) in pairs.iter().enumerate() {
            let got_ids: Vec<u32> = got.iter().map(|x| x.0).collect();
            assert_eq!(&got_ids, want, "seed {seed}: op {i}");
            assert_eq!(got.len(), want.len());
        }

        // In-place forms agree with the allocating forms.
        let mut u = a.clone();
        let grew = u.union_with(&b);
        assert_eq!(u, a.union(&b), "seed {seed}");
        assert_eq!(grew, u.len() > a.len(), "seed {seed}");
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, a.intersection(&b), "seed {seed}");
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d, a.difference(&b), "seed {seed}");

        // Predicates.
        assert_eq!(
            a.intersects(&b),
            model_a.intersection(&model_b).next().is_some()
        );
        assert_eq!(a.is_subset_of(&b), model_a.is_subset(&model_b));
        assert!(a.intersection(&b).is_subset_of(&a));
        assert!(a.intersection(&b).is_subset_of(&b));
        assert!(a.is_subset_of(&a.union(&b)));
    }
}

/// The owner store returns the highest-priority rule through arbitrary
/// interleavings of inserts and removals of non-highest entries, matching a
/// sorted-vector model keyed the same way (`(priority, rule-id)`). Run
/// against any [`RuleStore`] implementation.
fn check_rule_store_against_model<S: RuleStore>(tag: &str) {
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(0x0B57 ^ seed);
        let mut bst = S::default();
        let mut model: Vec<(u32, u64)> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..200 {
            let insert = model.is_empty() || rng.gen_bool(0.6);
            if insert {
                let priority = rng.gen_range(1..1000);
                let id = next_id;
                next_id += 1;
                bst.insert(priority, RuleId(id), LinkId((id % 7) as u32));
                model.push((priority, id));
            } else {
                // Remove an arbitrary (not necessarily highest) entry — the
                // operation that rules out a plain priority queue (§3.2).
                let victim = model.swap_remove(rng.gen_range(0..model.len()));
                assert!(bst.remove(victim.0, RuleId(victim.1)), "{tag} seed {seed}");
                assert!(!bst.remove(victim.0, RuleId(victim.1)), "{tag} seed {seed}");
            }
            assert_eq!(bst.len(), model.len(), "{tag} seed {seed}");
            match model.iter().max() {
                None => assert!(bst.highest().is_none(), "{tag} seed {seed}"),
                Some(&(priority, id)) => {
                    let h = bst.highest().expect("model non-empty");
                    assert_eq!((h.priority, h.id.0), (priority, id), "{tag} seed {seed}");
                    assert_eq!(h.link, LinkId((id % 7) as u32), "{tag} seed {seed}");
                    assert!(bst.contains(priority, RuleId(id)));
                }
            }
            // Iteration is by increasing (priority, id).
            let iterated: Vec<(u32, u64)> = bst.iter().map(|r| (r.priority, r.id.0)).collect();
            let mut sorted = model.clone();
            sorted.sort_unstable();
            assert_eq!(iterated, sorted, "{tag} seed {seed}");
        }
    }
}

#[test]
fn owner_smallvec_store_highest_priority_matches_model() {
    check_rule_store_against_model::<SourceRules>("small-vec");
}

#[test]
fn owner_btree_store_highest_priority_matches_model() {
    check_rule_store_against_model::<BTreeSourceRules>("btree");
}

/// Differential test of the two rule-store representations: identical
/// randomized insert/remove traces through the BTreeMap-backed
/// [`BTreeSourceRules`] and the small-vec [`SourceRules`] must produce
/// identical `highest()`, `len()`, `contains()` and iteration outcomes after
/// every step — including traces that cross the inline→spill boundary in
/// both directions.
#[test]
fn smallvec_and_btree_stores_agree_on_random_traces() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xD1FF ^ seed);
        let mut new_store = SourceRules::default();
        let mut old_store = BTreeSourceRules::default();
        let mut live: Vec<(u32, u64)> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..300 {
            // Bias phases so the store repeatedly grows past the inline
            // capacity and drains back: mostly-insert for 100 steps,
            // mostly-remove for the next 50, and so on.
            let insert_bias = if (step / 100) % 3 == 2 { 0.25 } else { 0.75 };
            if live.is_empty() || rng.gen_bool(insert_bias) {
                // Occasionally reuse a live key to exercise the
                // replace-on-duplicate-key path of both stores.
                let (priority, id) = if !live.is_empty() && rng.gen_bool(0.05) {
                    live[rng.gen_range(0..live.len())]
                } else {
                    let p = rng.gen_range(1..50);
                    let id = next_id;
                    next_id += 1;
                    live.push((p, id));
                    (p, id)
                };
                let link = LinkId(rng.gen_range(0..5));
                new_store.insert(priority, RuleId(id), link);
                RuleStore::insert(&mut old_store, priority, RuleId(id), link);
            } else {
                let (priority, id) = live.swap_remove(rng.gen_range(0..live.len()));
                let a = new_store.remove(priority, RuleId(id));
                let b = RuleStore::remove(&mut old_store, priority, RuleId(id));
                assert_eq!(a, b, "seed {seed} step {step}");
            }
            assert_eq!(
                new_store.len(),
                RuleStore::len(&old_store),
                "seed {seed} step {step}"
            );
            assert_eq!(
                new_store.highest(),
                RuleStore::highest(&old_store),
                "seed {seed} step {step}"
            );
            let a: Vec<_> = new_store.iter().collect();
            let b: Vec<_> = RuleStore::iter(&old_store).collect();
            assert_eq!(a, b, "seed {seed} step {step}");
            for &(p, id) in live.iter().take(5) {
                assert_eq!(
                    new_store.contains(p, RuleId(id)),
                    RuleStore::contains(&old_store, p, RuleId(id)),
                    "seed {seed} step {step}"
                );
            }
        }
    }
}

/// Compaction differential for the two owner layouts: randomized traces of
/// splits (`clone_atom`), merges (`clear_atom`) and renumberings (`remap`)
/// through the arena [`Owner`] and the legacy [`HashOwner`] must keep every
/// `(atom, source)` cell identical.
#[test]
fn arena_and_hash_owner_agree_under_compaction_traces() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0xC0417 ^ seed);
        let mut arena = Owner::new();
        let mut hash = HashOwner::new();
        let sources = 4u32;
        let mut alive: Vec<u32> = vec![0]; // live atom ids
        let mut next_atom = 1u32;
        let mut live: Vec<(u32, u32, u32, u64)> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..300 {
            match rng.gen_range(0..12) {
                // Split.
                0 | 1 if alive.len() < 40 => {
                    let old = alive[rng.gen_range(0..alive.len())];
                    let new = next_atom;
                    next_atom += 1;
                    alive.push(new);
                    arena.clone_atom(AtomId(old), AtomId(new));
                    hash.clone_atom(AtomId(old), AtomId(new));
                    let copied: Vec<_> = live
                        .iter()
                        .filter(|&&(a, ..)| a == old)
                        .map(|&(_, s, p, id)| (new, s, p, id))
                        .collect();
                    live.extend(copied);
                }
                // Merge: an atom dies; its cells are freed in both layouts.
                2 if alive.len() > 1 => {
                    let pos = rng.gen_range(0..alive.len());
                    let dead = alive.swap_remove(pos);
                    arena.clear_atom(AtomId(dead));
                    hash.clear_atom(AtomId(dead));
                    live.retain(|&(a, ..)| a != dead);
                }
                // Renumber: dense ids for the survivors, in id order.
                3 => {
                    alive.sort_unstable();
                    let mut remap = vec![u32::MAX; next_atom as usize];
                    for (new, &old) in alive.iter().enumerate() {
                        remap[old as usize] = new as u32;
                    }
                    arena.remap(&remap, alive.len());
                    hash.remap(&remap, alive.len());
                    for entry in &mut live {
                        entry.0 = remap[entry.0 as usize];
                    }
                    alive = (0..alive.len() as u32).collect();
                    next_atom = alive.len() as u32;
                }
                // Remove a live entry.
                4 | 5 if !live.is_empty() => {
                    let (atom, source, priority, id) =
                        live.swap_remove(rng.gen_range(0..live.len()));
                    let a = arena
                        .get_mut(AtomId(atom), NodeId(source))
                        .remove(priority, RuleId(id));
                    let b = RuleStore::remove(
                        hash.get_mut(AtomId(atom), NodeId(source)),
                        priority,
                        RuleId(id),
                    );
                    assert_eq!(a, b, "seed {seed} step {step}");
                    assert!(a, "seed {seed} step {step}");
                }
                // Insert.
                _ => {
                    let atom = alive[rng.gen_range(0..alive.len())];
                    let source = rng.gen_range(0..sources);
                    let priority = rng.gen_range(1..20);
                    let id = next_id;
                    next_id += 1;
                    let link = LinkId(id as u32 % 5);
                    arena
                        .get_mut(AtomId(atom), NodeId(source))
                        .insert(priority, RuleId(id), link);
                    RuleStore::insert(
                        hash.get_mut(AtomId(atom), NodeId(source)),
                        priority,
                        RuleId(id),
                        link,
                    );
                    live.push((atom, source, priority, id));
                }
            }
            assert_eq!(
                arena.total_entries(),
                hash.total_entries(),
                "seed {seed} step {step}"
            );
        }
        for &atom in &alive {
            for source in 0..sources {
                let a = arena
                    .get(AtomId(atom), NodeId(source))
                    .and_then(|r| r.highest());
                let b = hash
                    .get(AtomId(atom), NodeId(source))
                    .and_then(RuleStore::highest);
                assert_eq!(a, b, "seed {seed}: owner[α{atom}][n{source}] differs");
            }
        }
    }
}

/// Equal-priority differential test: with priorities drawn from a tiny
/// range (collisions on nearly every step), the small-vec store, the BTree
/// store, and the sorted-vector model must still agree on `highest()` — the
/// `(priority, rule-id)` tie-break the engine's insert-time `wins` predicate
/// relies on for label/owner consistency.
#[test]
fn equal_priority_ties_agree_across_stores_and_model() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(0x71E ^ seed);
        let mut small = SourceRules::default();
        let mut btree = BTreeSourceRules::default();
        let mut model: Vec<(u32, u64)> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..150 {
            if model.is_empty() || rng.gen_bool(0.6) {
                let priority = rng.gen_range(1..4); // heavy collisions
                let id = next_id;
                next_id += 1;
                let link = LinkId((id % 3) as u32);
                small.insert(priority, RuleId(id), link);
                RuleStore::insert(&mut btree, priority, RuleId(id), link);
                model.push((priority, id));
            } else {
                let (p, id) = model.swap_remove(rng.gen_range(0..model.len()));
                assert!(small.remove(p, RuleId(id)), "seed {seed} step {step}");
                assert!(
                    RuleStore::remove(&mut btree, p, RuleId(id)),
                    "seed {seed} step {step}"
                );
            }
            let expected = model.iter().max().copied();
            let got_small = small.highest().map(|r| (r.priority, r.id.0));
            let got_btree = RuleStore::highest(&btree).map(|r| (r.priority, r.id.0));
            assert_eq!(got_small, expected, "seed {seed} step {step}: small-vec");
            assert_eq!(got_btree, expected, "seed {seed} step {step}: btree");
        }
    }
}

/// Differential test of the two *owner* layouts: identical randomized traces
/// of `clone_atom` (atom splits), per-atom inserts and removals through the
/// arena [`Owner`] and the legacy hash-of-trees [`HashOwner`] must yield the
/// same ownership outcome (`highest()`) for every `(atom, source)` cell.
#[test]
fn arena_owner_and_hash_owner_agree_on_split_traces() {
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(0xA2E4A ^ seed);
        let mut arena = Owner::new();
        let mut hash = HashOwner::new();
        let sources = 6u32;
        let mut atoms = 1u32; // atom ids 0..atoms are allocated
        let mut live: Vec<(u32, u32, u32, u64)> = Vec::new(); // (atom, source, priority, id)
        let mut next_id = 0u64;
        for step in 0..400 {
            match rng.gen_range(0..10) {
                // Atom split: clone an existing atom's cells to a fresh id,
                // duplicating every live (atom, ...) entry — exactly what
                // Algorithm 1 line 4 does.
                0 | 1 if atoms < 60 => {
                    let old = rng.gen_range(0..atoms);
                    let new = atoms;
                    atoms += 1;
                    arena.clone_atom(AtomId(old), AtomId(new));
                    hash.clone_atom(AtomId(old), AtomId(new));
                    let copied: Vec<_> = live
                        .iter()
                        .filter(|&&(a, ..)| a == old)
                        .map(|&(_, s, p, id)| (new, s, p, id))
                        .collect();
                    live.extend(copied);
                }
                2 | 3 if !live.is_empty() => {
                    let (atom, source, priority, id) =
                        live.swap_remove(rng.gen_range(0..live.len()));
                    let a = arena
                        .get_mut(AtomId(atom), NodeId(source))
                        .remove(priority, RuleId(id));
                    let b = RuleStore::remove(
                        hash.get_mut(AtomId(atom), NodeId(source)),
                        priority,
                        RuleId(id),
                    );
                    assert_eq!(a, b, "seed {seed} step {step}");
                    assert!(a, "seed {seed} step {step}: live entry missing");
                }
                _ => {
                    let atom = rng.gen_range(0..atoms);
                    let source = rng.gen_range(0..sources);
                    let priority = rng.gen_range(1..100);
                    let id = next_id;
                    next_id += 1;
                    let link = LinkId(id as u32 % 9);
                    arena
                        .get_mut(AtomId(atom), NodeId(source))
                        .insert(priority, RuleId(id), link);
                    RuleStore::insert(
                        hash.get_mut(AtomId(atom), NodeId(source)),
                        priority,
                        RuleId(id),
                        link,
                    );
                    live.push((atom, source, priority, id));
                }
            }
            assert_eq!(
                arena.total_entries(),
                hash.total_entries(),
                "seed {seed} step {step}"
            );
        }
        // Final sweep: every (atom, source) cell agrees between the layouts.
        for atom in 0..atoms {
            for source in 0..sources {
                let a = arena
                    .get(AtomId(atom), NodeId(source))
                    .and_then(|r| r.highest());
                let b = hash
                    .get(AtomId(atom), NodeId(source))
                    .and_then(RuleStore::highest);
                assert_eq!(a, b, "seed {seed}: owner[α{atom}][n{source}] differs");
                let a_all: Vec<_> = arena
                    .get(AtomId(atom), NodeId(source))
                    .map(|r| r.iter().collect())
                    .unwrap_or_default();
                let b_all: Vec<_> = hash
                    .get(AtomId(atom), NodeId(source))
                    .map(|r| RuleStore::iter(r).collect())
                    .unwrap_or_default();
                assert_eq!(
                    a_all, b_all,
                    "seed {seed}: owner[α{atom}][n{source}] differs"
                );
            }
        }
    }
}
