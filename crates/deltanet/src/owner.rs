//! The `owner` structure: which rule owns each atom at each switch.
//!
//! Per §3.2, `owner` is "an array of hash tables, each of which stores a
//! balanced binary search tree containing rules ordered by priority": for
//! every atom `α` and source node `s`, `owner[α][s]` holds the rules
//! installed at `s` whose interval contains `α`, ordered by priority. The
//! highest-priority such rule *owns* the atom at that switch, and its link
//! is the one whose label carries `α`.
//!
//! A priority queue would not suffice because Algorithm 2 must remove
//! arbitrary rules, not just the highest-priority one. The paper prescribes
//! a BST; this implementation keeps the BST *semantics* (ordered by
//! `(priority, rule-id)`, arbitrary removal, O(log n) lookup) but flattens
//! the representation for the update hot path:
//!
//! * [`SourceRules`] stores the per-`(atom, switch)` rules as an **inline
//!   sorted small-vec**: up to [`INLINE_RULES`] entries live inside the
//!   struct itself, spilling to a heap vector only beyond that. Most cells
//!   hold a handful of rules, so cloning one is a flat `memcpy` instead of
//!   a tree-of-nodes clone, and lookups are branchless binary searches over
//!   contiguous memory.
//! * [`Owner`] is an arena of those cells: `per_atom[α]` is a dense,
//!   NodeId-sorted slot list rather than a hash table, so the copy step of
//!   Algorithm 1 (`owner[α'] ← owner[α]` on an atom split) is a single
//!   vector clone with no rehashing and no per-entry tree allocations.
//!
//! The original tree-of-trees representation is preserved in [`legacy`] —
//! both implement [`RuleStore`], so the differential tests in
//! `tests/atom_invariants.rs` and the owner microbenchmark can drive
//! identical traces through old and new and compare outcomes and cost.

use crate::atoms::AtomId;
use netmodel::rule::{Priority, RuleId};
use netmodel::topology::{LinkId, NodeId};

/// Number of rule entries stored inline in a [`SourceRules`] cell before it
/// spills to the heap. Sized so the inline case covers the common fan-in of
/// overlapping rules per `(atom, switch)` cell while keeping the cell small
/// enough that `Owner::clone_atom` stays a flat copy.
pub const INLINE_RULES: usize = 4;

/// A rule entry as seen by the owner structure: enough to run Algorithms 1
/// and 2 without chasing a pointer to the full rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OwnedRule {
    /// The rule's priority.
    pub priority: Priority,
    /// The rule's id.
    pub id: RuleId,
    /// The rule's link (`link(r)`).
    pub link: LinkId,
}

impl OwnedRule {
    const EMPTY: OwnedRule = OwnedRule {
        priority: 0,
        id: RuleId(0),
        link: LinkId(0),
    };

    #[inline]
    fn key(&self) -> (Priority, RuleId) {
        (self.priority, self.id)
    }
}

/// The common interface of the per-`(atom, switch)` rule containers: ordered
/// by `(priority, rule-id)`, supporting arbitrary removal and a
/// highest-priority query. Implemented by the small-vec [`SourceRules`]
/// (production) and the BTreeMap [`legacy::BTreeSourceRules`] (reference),
/// so property tests can drive identical traces through both.
pub trait RuleStore: Default {
    /// Inserts a rule.
    fn insert(&mut self, priority: Priority, id: RuleId, link: LinkId);

    /// Removes a rule; returns whether it was present.
    fn remove(&mut self, priority: Priority, id: RuleId) -> bool;

    /// The highest-priority rule, if any (`bst.highest_priority_rule()`).
    fn highest(&self) -> Option<OwnedRule>;

    /// Whether the given rule is stored here (`r ∈ bst`).
    fn contains(&self, priority: Priority, id: RuleId) -> bool;

    /// Number of rules at this switch containing the atom.
    fn len(&self) -> usize;

    /// Whether no rule at this switch contains the atom.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates `(priority, id, link)` in increasing `(priority, id)` order.
    fn iter(&self) -> impl Iterator<Item = OwnedRule> + '_;
}

/// The rules of one switch that contain a given atom, ordered by priority.
///
/// Keys are `(priority, rule-id)` so that entries are unique even while two
/// *non-overlapping* rules share a priority; the paper's well-formedness
/// assumption (overlapping rules have distinct priorities) guarantees that
/// the maximum key is the unique highest-priority owner.
///
/// Entries are kept sorted in increasing `(priority, id)` order in an inline
/// buffer of [`INLINE_RULES`] slots, spilling to a heap vector only when the
/// cell outgrows it. A spilled cell stays spilled until it empties, avoiding
/// thrash at the boundary.
#[derive(Clone, Debug)]
pub struct SourceRules {
    /// Number of live entries in `inline`; `u8::MAX` marks a spilled cell.
    inline_len: u8,
    /// The inline buffer; only `inline[..inline_len]` is meaningful.
    inline: [OwnedRule; INLINE_RULES],
    /// Heap storage once the cell spills (empty and unallocated otherwise).
    spill: Vec<OwnedRule>,
}

const SPILLED: u8 = u8::MAX;

// `inline_len` must be able to distinguish every fill level from the
// sentinel.
const _: () = assert!(INLINE_RULES < SPILLED as usize);

impl Default for SourceRules {
    fn default() -> Self {
        SourceRules {
            inline_len: 0,
            inline: [OwnedRule::EMPTY; INLINE_RULES],
            spill: Vec::new(),
        }
    }
}

impl PartialEq for SourceRules {
    /// Logical equality: same rules in the same order, regardless of
    /// inline-vs-spilled representation.
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SourceRules {}

impl SourceRules {
    /// The live entries as a sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[OwnedRule] {
        if self.inline_len == SPILLED {
            &self.spill
        } else {
            &self.inline[..self.inline_len as usize]
        }
    }

    /// Whether this cell has spilled to the heap (diagnostics / tests).
    #[inline]
    pub fn is_spilled(&self) -> bool {
        self.inline_len == SPILLED
    }

    /// Binary-searches the sorted entries for `(priority, id)`.
    #[inline]
    fn search(&self, priority: Priority, id: RuleId) -> Result<usize, usize> {
        self.as_slice()
            .binary_search_by_key(&(priority, id), OwnedRule::key)
    }

    fn spill_and_insert(&mut self, pos: usize, entry: OwnedRule) {
        debug_assert_eq!(self.inline_len as usize, INLINE_RULES);
        self.spill.reserve(INLINE_RULES + 1);
        self.spill.extend_from_slice(&self.inline);
        self.spill.insert(pos, entry);
        self.inline_len = SPILLED;
    }

    /// Estimated heap usage in bytes (the inline buffer is not heap memory).
    pub fn memory_bytes(&self) -> usize {
        self.spill.capacity() * std::mem::size_of::<OwnedRule>()
    }

    /// Heap bytes addressed by live entries: zero while inline, entry count
    /// times entry size once spilled. Unlike [`SourceRules::memory_bytes`]
    /// this depends only on the logical state (entries + spilled flag), so a
    /// snapshot-restored cell reports the same value as the live one.
    pub fn live_bytes(&self) -> usize {
        if self.inline_len == SPILLED {
            self.spill.len() * std::mem::size_of::<OwnedRule>()
        } else {
            0
        }
    }

    /// Rebuilds a cell from its sorted entries and spilled flag (the inverse
    /// of [`SourceRules::as_slice`] + [`SourceRules::is_spilled`]). Validates
    /// that entries are strictly increasing by `(priority, id)` and that the
    /// flag is representable — a non-spilled cell fits the inline buffer, a
    /// spilled cell is non-empty ("a spilled cell stays spilled until it
    /// empties") — returning a description of the violation otherwise.
    pub fn from_entries(entries: &[OwnedRule], spilled: bool) -> Result<SourceRules, String> {
        if entries.windows(2).any(|w| w[0].key() >= w[1].key()) {
            return Err("owner cell entries not strictly sorted".to_string());
        }
        if spilled {
            if entries.is_empty() {
                return Err("spilled owner cell cannot be empty".to_string());
            }
            Ok(SourceRules {
                inline_len: SPILLED,
                inline: [OwnedRule::EMPTY; INLINE_RULES],
                spill: entries.to_vec(),
            })
        } else {
            if entries.len() > INLINE_RULES {
                return Err(format!(
                    "inline owner cell holds {} entries (max {INLINE_RULES})",
                    entries.len()
                ));
            }
            let mut inline = [OwnedRule::EMPTY; INLINE_RULES];
            inline[..entries.len()].copy_from_slice(entries);
            Ok(SourceRules {
                inline_len: entries.len() as u8,
                inline,
                spill: Vec::new(),
            })
        }
    }
}

impl RuleStore for SourceRules {
    #[inline]
    fn insert(&mut self, priority: Priority, id: RuleId, link: LinkId) {
        let entry = OwnedRule { priority, id, link };
        match self.search(priority, id) {
            // Same key: replace the link, matching BTreeMap::insert.
            Ok(pos) => {
                if self.inline_len == SPILLED {
                    self.spill[pos] = entry;
                } else {
                    self.inline[pos] = entry;
                }
            }
            Err(pos) => {
                if self.inline_len == SPILLED {
                    self.spill.insert(pos, entry);
                } else if (self.inline_len as usize) < INLINE_RULES {
                    let len = self.inline_len as usize;
                    self.inline.copy_within(pos..len, pos + 1);
                    self.inline[pos] = entry;
                    self.inline_len += 1;
                } else {
                    self.spill_and_insert(pos, entry);
                }
            }
        }
    }

    #[inline]
    fn remove(&mut self, priority: Priority, id: RuleId) -> bool {
        match self.search(priority, id) {
            Ok(pos) => {
                if self.inline_len == SPILLED {
                    self.spill.remove(pos);
                    if self.spill.is_empty() {
                        // Reclaim the empty cell's heap allocation.
                        self.spill = Vec::new();
                        self.inline_len = 0;
                    }
                } else {
                    let len = self.inline_len as usize;
                    self.inline.copy_within(pos + 1..len, pos);
                    self.inline_len -= 1;
                }
                true
            }
            Err(_) => false,
        }
    }

    #[inline]
    fn highest(&self) -> Option<OwnedRule> {
        self.as_slice().last().copied()
    }

    #[inline]
    fn contains(&self, priority: Priority, id: RuleId) -> bool {
        self.search(priority, id).is_ok()
    }

    #[inline]
    fn len(&self) -> usize {
        if self.inline_len == SPILLED {
            self.spill.len()
        } else {
            self.inline_len as usize
        }
    }

    fn iter(&self) -> impl Iterator<Item = OwnedRule> + '_ {
        self.as_slice().iter().copied()
    }
}

// Inherent forwarders so call sites (engine, tests) don't need the trait in
// scope; they compile to the same code.
impl SourceRules {
    /// Inserts a rule (see [`RuleStore::insert`]).
    #[inline]
    pub fn insert(&mut self, priority: Priority, id: RuleId, link: LinkId) {
        RuleStore::insert(self, priority, id, link);
    }

    /// Removes a rule; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, priority: Priority, id: RuleId) -> bool {
        RuleStore::remove(self, priority, id)
    }

    /// The highest-priority rule, if any.
    #[inline]
    pub fn highest(&self) -> Option<OwnedRule> {
        RuleStore::highest(self)
    }

    /// Whether the given rule is stored here.
    #[inline]
    pub fn contains(&self, priority: Priority, id: RuleId) -> bool {
        RuleStore::contains(self, priority, id)
    }

    /// Number of rules at this switch containing the atom.
    #[inline]
    pub fn len(&self) -> usize {
        RuleStore::len(self)
    }

    /// Whether no rule at this switch contains the atom.
    #[inline]
    pub fn is_empty(&self) -> bool {
        RuleStore::is_empty(self)
    }

    /// Iterates `(priority, id, link)` in increasing priority order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = OwnedRule> + '_ {
        RuleStore::iter(self)
    }
}

/// One slot of an atom's source list: a switch and its rules for the atom.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SourceSlot {
    source: NodeId,
    rules: SourceRules,
}

/// `owner[α][source]` for every allocated atom.
///
/// Layout: a dense arena indexed by atom id; `per_atom[α]` is a NodeId-sorted
/// vector of [`SourceSlot`]s (a *source-slot list*). Compared to the previous
/// `Vec<HashMap<NodeId, BTreeMap<..>>>`:
///
/// * lookup is a binary search over a contiguous slot list — no hashing;
/// * `clone_atom` (Algorithm 1 line 4) clones one vector whose elements are
///   flat cells — one allocation plus `memcpy` in the common all-inline case,
///   instead of a hash-table rebuild plus one tree clone per source;
/// * iteration over a split atom's sources walks contiguous memory in NodeId
///   order (deterministic, unlike hash iteration).
#[derive(Clone, Debug, Default)]
pub struct Owner {
    per_atom: Vec<Vec<SourceSlot>>,
}

impl Owner {
    /// Creates an empty owner structure.
    pub fn new() -> Self {
        Owner::default()
    }

    /// Makes sure `owner[atom]` exists (as an empty slot list). Called
    /// whenever a new atom id is allocated.
    pub fn ensure_atom(&mut self, atom: AtomId) {
        if atom.index() >= self.per_atom.len() {
            self.per_atom.resize_with(atom.index() + 1, Vec::new);
        }
    }

    /// `owner[new] ← owner[old]` — the copy step of Algorithm 1 (line 4)
    /// performed when atom `old` is split and `new` takes over its upper
    /// half: every rule containing the old atom also contains the new one.
    ///
    /// This is the hottest cloning site of the engine; with the arena layout
    /// it performs a single slot-list clone (plus a heap clone for the rare
    /// spilled cell) instead of a per-source tree-of-trees clone.
    pub fn clone_atom(&mut self, old: AtomId, new: AtomId) {
        self.ensure_atom(new.max(old));
        let copied = self.per_atom[old.index()].clone();
        self.per_atom[new.index()] = copied;
    }

    #[inline]
    fn find(&self, atom: AtomId, source: NodeId) -> Option<(usize, &Vec<SourceSlot>)> {
        let slots = self.per_atom.get(atom.index())?;
        let pos = slots.binary_search_by_key(&source, |s| s.source).ok()?;
        Some((pos, slots))
    }

    /// The rules containing `atom` at `source` (read-only); `None` when no
    /// rule at that switch contains the atom.
    pub fn get(&self, atom: AtomId, source: NodeId) -> Option<&SourceRules> {
        let (pos, slots) = self.find(atom, source)?;
        Some(&slots[pos].rules)
    }

    /// Mutable access, creating the slot on first use (Algorithm 1 inserts
    /// into the BST irrespective of ownership, line 22). A single binary
    /// search serves both the incumbent-owner read and the insert that
    /// follows — callers should hold on to the returned reference instead of
    /// looking the cell up twice.
    pub fn get_mut(&mut self, atom: AtomId, source: NodeId) -> &mut SourceRules {
        self.ensure_atom(atom);
        let slots = &mut self.per_atom[atom.index()];
        let pos = match slots.binary_search_by_key(&source, |s| s.source) {
            Ok(pos) => pos,
            Err(pos) => {
                if slots.capacity() == 0 {
                    // Skip the 1→2→4 growth chain: nearly every atom that
                    // gains one source slot gains a few.
                    slots.reserve(4);
                }
                slots.insert(
                    pos,
                    SourceSlot {
                        source,
                        rules: SourceRules::default(),
                    },
                );
                pos
            }
        };
        &mut slots[pos].rules
    }

    /// Iterates `(source, rules)` pairs for one atom in increasing NodeId
    /// order — the loop of Algorithm 1 lines 5–8.
    pub fn sources(&self, atom: AtomId) -> impl Iterator<Item = (NodeId, &SourceRules)> + '_ {
        self.per_atom
            .get(atom.index())
            .into_iter()
            .flat_map(|slots| slots.iter().map(|s| (s.source, &s.rules)))
    }

    /// Removes empty per-source slots of an atom (keeps the structure tidy
    /// after removals; not required for correctness).
    pub fn prune_empty(&mut self, atom: AtomId) {
        if let Some(slots) = self.per_atom.get_mut(atom.index()) {
            slots.retain(|s| !s.rules.is_empty());
        }
    }

    /// Frees an atom's slot list entirely, releasing its heap storage — the
    /// counterpart of [`Owner::clone_atom`] used when a compaction pass
    /// merges the atom away.
    pub fn clear_atom(&mut self, atom: AtomId) {
        if let Some(slots) = self.per_atom.get_mut(atom.index()) {
            *slots = Vec::new();
        }
    }

    /// Applies the id remapping of a compaction pass: slot lists move from
    /// their old atom index to `remap[old]`, the arena shrinks to `new_len`
    /// entries, and reclaimed ids (marked [`crate::atoms::REMAP_DEAD`]) must
    /// have been cleared beforehand.
    pub fn remap(&mut self, remap: &[u32], new_len: usize) {
        let old = std::mem::take(&mut self.per_atom);
        self.per_atom.resize_with(new_len, Vec::new);
        for (old_index, slots) in old.into_iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            let new = remap
                .get(old_index)
                .copied()
                .unwrap_or(crate::atoms::REMAP_DEAD);
            assert!(
                new != crate::atoms::REMAP_DEAD,
                "owner slots survive for reclaimed atom α{old_index}"
            );
            self.per_atom[new as usize] = slots;
        }
    }

    /// Number of atoms for which the structure has been allocated.
    pub fn atom_capacity(&self) -> usize {
        self.per_atom.len()
    }

    /// Total number of `(atom, source, rule)` entries — the `O(R·K)` space
    /// term of the complexity analysis.
    pub fn total_entries(&self) -> usize {
        self.per_atom
            .iter()
            .flat_map(|slots| slots.iter())
            .map(|s| s.rules.len())
            .sum()
    }

    /// Number of cells that have spilled past the inline buffer
    /// (diagnostics for the bench memory accounting).
    pub fn spilled_cells(&self) -> usize {
        self.per_atom
            .iter()
            .flat_map(|slots| slots.iter())
            .filter(|s| s.rules.is_spilled())
            .count()
    }

    /// Estimated heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.per_atom.capacity() * std::mem::size_of::<Vec<SourceSlot>>();
        for slots in &self.per_atom {
            bytes += slots.capacity() * std::mem::size_of::<SourceSlot>();
            bytes += slots.iter().map(|s| s.rules.memory_bytes()).sum::<usize>();
        }
        bytes
    }

    /// Heap bytes addressed by live entries — the len-based counterpart of
    /// [`Owner::memory_bytes`], a function of the logical state alone so a
    /// snapshot round-trip reproduces it exactly.
    pub fn live_bytes(&self) -> usize {
        let mut bytes = self.per_atom.len() * std::mem::size_of::<Vec<SourceSlot>>();
        for slots in &self.per_atom {
            bytes += slots.len() * std::mem::size_of::<SourceSlot>();
            bytes += slots.iter().map(|s| s.rules.live_bytes()).sum::<usize>();
        }
        bytes
    }

    /// Exports the full arena for a snapshot: one entry per allocated atom,
    /// each a NodeId-sorted list of `(source, spilled, entries)` cells.
    /// Empty cells are included — the engine never prunes them, and the
    /// len-based byte accounting counts them — so the export is exactly what
    /// [`Owner::from_cells`] needs to rebuild a logically identical arena.
    pub fn export_cells(&self) -> Vec<Vec<(NodeId, bool, Vec<OwnedRule>)>> {
        self.per_atom
            .iter()
            .map(|slots| {
                slots
                    .iter()
                    .map(|s| (s.source, s.rules.is_spilled(), s.rules.as_slice().to_vec()))
                    .collect()
            })
            .collect()
    }

    /// Rebuilds an arena from the export of [`Owner::export_cells`],
    /// validating per-cell entry order (via [`SourceRules::from_entries`])
    /// and the NodeId-sorted slot invariant.
    pub fn from_cells(cells: Vec<Vec<(NodeId, bool, Vec<OwnedRule>)>>) -> Result<Owner, String> {
        let mut per_atom = Vec::with_capacity(cells.len());
        for atom_cells in cells {
            if atom_cells.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err("owner slots not strictly NodeId-sorted".to_string());
            }
            let mut slots = Vec::with_capacity(atom_cells.len());
            for (source, spilled, entries) in atom_cells {
                slots.push(SourceSlot {
                    source,
                    rules: SourceRules::from_entries(&entries, spilled)?,
                });
            }
            per_atom.push(slots);
        }
        Ok(Owner { per_atom })
    }
}

pub mod legacy {
    //! The pre-arena owner representation — `HashMap` of `BTreeMap`s — kept
    //! as the reference implementation for the differential property tests
    //! and the old-vs-new owner microbenchmark. Not used by the engine.

    use super::{OwnedRule, RuleStore};
    use crate::atoms::AtomId;
    use netmodel::rule::{Priority, RuleId};
    use netmodel::topology::{LinkId, NodeId};
    use std::collections::{BTreeMap, HashMap};

    /// The original BTreeMap-backed per-`(atom, switch)` rule container.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    pub struct BTreeSourceRules {
        bst: BTreeMap<(Priority, RuleId), LinkId>,
    }

    impl RuleStore for BTreeSourceRules {
        #[inline]
        fn insert(&mut self, priority: Priority, id: RuleId, link: LinkId) {
            self.bst.insert((priority, id), link);
        }

        #[inline]
        fn remove(&mut self, priority: Priority, id: RuleId) -> bool {
            self.bst.remove(&(priority, id)).is_some()
        }

        #[inline]
        fn highest(&self) -> Option<OwnedRule> {
            self.bst
                .iter()
                .next_back()
                .map(|(&(priority, id), &link)| OwnedRule { priority, id, link })
        }

        #[inline]
        fn contains(&self, priority: Priority, id: RuleId) -> bool {
            self.bst.contains_key(&(priority, id))
        }

        #[inline]
        fn len(&self) -> usize {
            self.bst.len()
        }

        fn iter(&self) -> impl Iterator<Item = OwnedRule> + '_ {
            self.bst
                .iter()
                .map(|(&(priority, id), &link)| OwnedRule { priority, id, link })
        }
    }

    /// The original owner layout: one hash table per atom, one BST per
    /// source. Mirrors the subset of [`super::Owner`]'s API the engine's
    /// update loops need, so the microbenchmark can replay the same trace
    /// through both representations.
    #[derive(Clone, Debug, Default)]
    pub struct HashOwner {
        per_atom: Vec<HashMap<NodeId, BTreeSourceRules>>,
    }

    impl HashOwner {
        /// Creates an empty owner structure.
        pub fn new() -> Self {
            HashOwner::default()
        }

        /// Makes sure `owner[atom]` exists (as an empty table).
        pub fn ensure_atom(&mut self, atom: AtomId) {
            if atom.index() >= self.per_atom.len() {
                self.per_atom.resize_with(atom.index() + 1, HashMap::new);
            }
        }

        /// `owner[new] ← owner[old]`: the deep clone the arena replaces.
        pub fn clone_atom(&mut self, old: AtomId, new: AtomId) {
            self.ensure_atom(new.max(old));
            let copied = self.per_atom[old.index()].clone();
            self.per_atom[new.index()] = copied;
        }

        /// Frees an atom's table (compaction merge), mirroring
        /// [`super::Owner::clear_atom`].
        pub fn clear_atom(&mut self, atom: AtomId) {
            if let Some(table) = self.per_atom.get_mut(atom.index()) {
                *table = HashMap::new();
            }
        }

        /// Applies a compaction remapping, mirroring [`super::Owner::remap`]
        /// so differential tests can drive identical compaction traces
        /// through both layouts.
        pub fn remap(&mut self, remap: &[u32], new_len: usize) {
            let old = std::mem::take(&mut self.per_atom);
            self.per_atom.resize_with(new_len, HashMap::new);
            for (old_index, table) in old.into_iter().enumerate() {
                if table.is_empty() {
                    continue;
                }
                let new = remap
                    .get(old_index)
                    .copied()
                    .unwrap_or(crate::atoms::REMAP_DEAD);
                assert!(
                    new != crate::atoms::REMAP_DEAD,
                    "owner cells survive for reclaimed atom α{old_index}"
                );
                self.per_atom[new as usize] = table;
            }
        }

        /// Read-only access to one cell.
        pub fn get(&self, atom: AtomId, source: NodeId) -> Option<&BTreeSourceRules> {
            self.per_atom.get(atom.index())?.get(&source)
        }

        /// Mutable access, creating the cell on first use.
        pub fn get_mut(&mut self, atom: AtomId, source: NodeId) -> &mut BTreeSourceRules {
            self.ensure_atom(atom);
            self.per_atom[atom.index()].entry(source).or_default()
        }

        /// Iterates `(source, rules)` pairs for one atom (hash order).
        pub fn sources(
            &self,
            atom: AtomId,
        ) -> impl Iterator<Item = (NodeId, &BTreeSourceRules)> + '_ {
            self.per_atom
                .get(atom.index())
                .into_iter()
                .flat_map(|m| m.iter().map(|(&n, r)| (n, r)))
        }

        /// Total number of `(atom, source, rule)` entries.
        pub fn total_entries(&self) -> usize {
            self.per_atom
                .iter()
                .flat_map(|m| m.values())
                .map(RuleStore::len)
                .sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u64) -> RuleId {
        RuleId(i)
    }

    #[test]
    fn source_rules_priority_order() {
        let mut s = SourceRules::default();
        s.insert(10, rid(1), LinkId(0));
        s.insert(30, rid(2), LinkId(1));
        s.insert(20, rid(3), LinkId(2));
        assert_eq!(s.len(), 3);
        let h = s.highest().unwrap();
        assert_eq!(h.id, rid(2));
        assert_eq!(h.priority, 30);
        assert_eq!(h.link, LinkId(1));
        // Iteration is by increasing priority.
        let prios: Vec<Priority> = s.iter().map(|r| r.priority).collect();
        assert_eq!(prios, vec![10, 20, 30]);
    }

    #[test]
    fn source_rules_remove_arbitrary() {
        let mut s = SourceRules::default();
        s.insert(10, rid(1), LinkId(0));
        s.insert(30, rid(2), LinkId(1));
        s.insert(20, rid(3), LinkId(2));
        // Remove a non-highest rule (the reason a BST is used, §3.2).
        assert!(s.remove(20, rid(3)));
        assert!(!s.remove(20, rid(3)));
        assert_eq!(s.highest().unwrap().id, rid(2));
        assert!(s.contains(10, rid(1)));
        assert!(!s.contains(20, rid(3)));
        // Remove the highest; ownership falls back to the next.
        assert!(s.remove(30, rid(2)));
        assert_eq!(s.highest().unwrap().id, rid(1));
        assert!(s.remove(10, rid(1)));
        assert!(s.is_empty());
        assert!(s.highest().is_none());
    }

    #[test]
    fn equal_priority_disjoint_rules_coexist() {
        // Non-overlapping rules may share a priority; the store must keep
        // both.
        let mut s = SourceRules::default();
        s.insert(10, rid(1), LinkId(0));
        s.insert(10, rid(2), LinkId(1));
        assert_eq!(s.len(), 2);
        // Ties are broken by rule id; the exact winner is irrelevant for
        // well-formed data planes but must be deterministic.
        assert_eq!(s.highest().unwrap().id, rid(2));
    }

    #[test]
    fn duplicate_key_insert_replaces_link() {
        // BTreeMap::insert semantics: same (priority, id) replaces the value.
        let mut s = SourceRules::default();
        s.insert(10, rid(1), LinkId(0));
        s.insert(10, rid(1), LinkId(5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.highest().unwrap().link, LinkId(5));
    }

    #[test]
    fn spill_past_inline_capacity_and_back() {
        let mut s = SourceRules::default();
        let n = INLINE_RULES as u32 + 3;
        for i in 0..n {
            s.insert(i + 1, rid(u64::from(i)), LinkId(i));
            assert_eq!(s.len(), (i + 1) as usize);
        }
        assert!(s.is_spilled());
        // Sorted order and highest survive the spill.
        let prios: Vec<Priority> = s.iter().map(|r| r.priority).collect();
        assert_eq!(prios, (1..=n).collect::<Vec<_>>());
        assert_eq!(s.highest().unwrap().priority, n);
        // Draining the cell returns it to (empty) inline storage.
        for i in 0..n {
            assert!(s.remove(i + 1, rid(u64::from(i))));
        }
        assert!(s.is_empty());
        assert!(!s.is_spilled());
        assert_eq!(s.memory_bytes(), 0);
        // And it is usable again afterwards.
        s.insert(7, rid(70), LinkId(1));
        assert_eq!(s.highest().unwrap().priority, 7);
    }

    #[test]
    fn owner_clone_atom_copies_all_sources() {
        let mut o = Owner::new();
        o.ensure_atom(AtomId(0));
        o.get_mut(AtomId(0), NodeId(1)).insert(5, rid(1), LinkId(0));
        o.get_mut(AtomId(0), NodeId(2)).insert(7, rid(2), LinkId(3));
        o.clone_atom(AtomId(0), AtomId(1));
        assert_eq!(
            o.get(AtomId(1), NodeId(1)).unwrap().highest().unwrap().id,
            rid(1)
        );
        assert_eq!(
            o.get(AtomId(1), NodeId(2)).unwrap().highest().unwrap().link,
            LinkId(3)
        );
        // The copy is independent of the original.
        o.get_mut(AtomId(1), NodeId(1)).insert(9, rid(9), LinkId(7));
        assert_eq!(o.get(AtomId(0), NodeId(1)).unwrap().len(), 1);
        assert_eq!(o.get(AtomId(1), NodeId(1)).unwrap().len(), 2);
    }

    #[test]
    fn owner_sources_iteration_and_entries() {
        let mut o = Owner::new();
        o.get_mut(AtomId(3), NodeId(1)).insert(2, rid(2), LinkId(1));
        o.get_mut(AtomId(3), NodeId(0)).insert(1, rid(1), LinkId(0));
        o.get_mut(AtomId(3), NodeId(1)).insert(3, rid(3), LinkId(2));
        // Sources iterate in NodeId order (deterministic, unlike the old
        // hash layout) regardless of insertion order.
        let sources: Vec<NodeId> = o.sources(AtomId(3)).map(|(n, _)| n).collect();
        assert_eq!(sources, vec![NodeId(0), NodeId(1)]);
        assert_eq!(o.total_entries(), 3);
        assert_eq!(o.sources(AtomId(99)).count(), 0);
        assert!(o.get(AtomId(3), NodeId(9)).is_none());
    }

    #[test]
    fn prune_empty_drops_only_empty_entries() {
        let mut o = Owner::new();
        o.get_mut(AtomId(0), NodeId(0)).insert(1, rid(1), LinkId(0));
        o.get_mut(AtomId(0), NodeId(1)).insert(2, rid(2), LinkId(1));
        assert!(o.get_mut(AtomId(0), NodeId(1)).remove(2, rid(2)));
        o.prune_empty(AtomId(0));
        assert!(o.get(AtomId(0), NodeId(1)).is_none());
        assert!(o.get(AtomId(0), NodeId(0)).is_some());
    }

    #[test]
    fn memory_accounting_is_monotone() {
        let mut o = Owner::new();
        let before = o.memory_bytes();
        for atom in 0..50u32 {
            for node in 0..4u32 {
                o.get_mut(AtomId(atom), NodeId(node)).insert(
                    node,
                    rid(u64::from(atom * 10 + node)),
                    LinkId(node),
                );
            }
        }
        assert!(o.memory_bytes() > before);
        assert_eq!(o.total_entries(), 200);
        assert_eq!(o.atom_capacity(), 50);
        assert_eq!(o.spilled_cells(), 0);
    }

    #[test]
    fn clone_atom_with_spilled_cell() {
        let mut o = Owner::new();
        for i in 0..(INLINE_RULES as u32 + 2) {
            o.get_mut(AtomId(0), NodeId(0))
                .insert(i + 1, rid(u64::from(i)), LinkId(0));
        }
        assert_eq!(o.spilled_cells(), 1);
        o.clone_atom(AtomId(0), AtomId(5));
        assert_eq!(o.spilled_cells(), 2);
        assert_eq!(o.get(AtomId(5), NodeId(0)).unwrap().len(), INLINE_RULES + 2);
        // ensure_atom extended the arena to cover atoms 1..=5 as well.
        assert_eq!(o.atom_capacity(), 6);
        assert_eq!(o.sources(AtomId(3)).count(), 0);
    }

    #[test]
    fn clear_atom_frees_slots_and_remap_moves_them() {
        let mut o = Owner::new();
        o.get_mut(AtomId(0), NodeId(1)).insert(5, rid(1), LinkId(0));
        o.get_mut(AtomId(2), NodeId(0)).insert(7, rid(2), LinkId(1));
        o.get_mut(AtomId(4), NodeId(3)).insert(9, rid(3), LinkId(2));
        // Merge α2 away, then renumber {α0 → 0, α4 → 1}.
        o.clear_atom(AtomId(2));
        assert_eq!(o.sources(AtomId(2)).count(), 0);
        let remap = [0, u32::MAX, u32::MAX, u32::MAX, 1];
        o.remap(&remap, 2);
        assert_eq!(o.atom_capacity(), 2);
        assert_eq!(
            o.get(AtomId(0), NodeId(1)).unwrap().highest().unwrap().id,
            rid(1)
        );
        assert_eq!(
            o.get(AtomId(1), NodeId(3)).unwrap().highest().unwrap().id,
            rid(3)
        );
        assert_eq!(o.total_entries(), 2);
    }

    #[test]
    #[should_panic(expected = "reclaimed atom")]
    fn remap_rejects_uncleaned_dead_atoms() {
        let mut o = Owner::new();
        o.get_mut(AtomId(1), NodeId(0)).insert(5, rid(1), LinkId(0));
        o.remap(&[0, u32::MAX], 1);
    }

    #[test]
    fn legacy_owner_clear_and_remap_mirror_arena() {
        let mut o = legacy::HashOwner::new();
        o.get_mut(AtomId(0), NodeId(1)).insert(5, rid(1), LinkId(0));
        o.get_mut(AtomId(3), NodeId(2)).insert(7, rid(2), LinkId(1));
        o.clear_atom(AtomId(0));
        assert!(o.get(AtomId(0), NodeId(1)).is_none());
        o.remap(&[u32::MAX, u32::MAX, u32::MAX, 0], 1);
        assert_eq!(
            RuleStore::highest(o.get(AtomId(0), NodeId(2)).unwrap())
                .unwrap()
                .id,
            rid(2)
        );
        assert_eq!(o.total_entries(), 1);
    }

    #[test]
    fn legacy_store_matches_new_store_api() {
        let mut new = SourceRules::default();
        let mut old = legacy::BTreeSourceRules::default();
        for (p, i, l) in [(10, 1, 0), (30, 2, 1), (20, 3, 2), (10, 4, 3)] {
            new.insert(p, rid(i), LinkId(l));
            RuleStore::insert(&mut old, p, rid(i), LinkId(l));
        }
        assert_eq!(new.len(), RuleStore::len(&old));
        assert_eq!(new.highest(), RuleStore::highest(&old));
        let a: Vec<OwnedRule> = new.iter().collect();
        let b: Vec<OwnedRule> = RuleStore::iter(&old).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn legacy_hash_owner_basics() {
        let mut o = legacy::HashOwner::new();
        o.get_mut(AtomId(0), NodeId(1)).insert(5, rid(1), LinkId(0));
        o.clone_atom(AtomId(0), AtomId(2));
        assert_eq!(
            RuleStore::highest(o.get(AtomId(2), NodeId(1)).unwrap())
                .unwrap()
                .id,
            rid(1)
        );
        assert_eq!(o.total_entries(), 2);
        assert_eq!(o.sources(AtomId(0)).count(), 1);
        assert!(o.get(AtomId(1), NodeId(1)).is_none());
    }
}
