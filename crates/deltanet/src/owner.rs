//! The `owner` structure: which rule owns each atom at each switch.
//!
//! Per §3.2, `owner` is "an array of hash tables, each of which stores a
//! balanced binary search tree containing rules ordered by priority": for
//! every atom `α` and source node `s`, `owner[α][s]` holds the rules
//! installed at `s` whose interval contains `α`, ordered by priority. The
//! highest-priority such rule *owns* the atom at that switch, and its link
//! is the one whose label carries `α`.
//!
//! A priority queue would not suffice because Algorithm 2 must remove
//! arbitrary rules, not just the highest-priority one — hence the BST
//! (here a `BTreeMap` keyed by `(priority, rule-id)`).

use crate::atoms::AtomId;
use netmodel::rule::{Priority, RuleId};
use netmodel::topology::{LinkId, NodeId};
use std::collections::HashMap;

/// The rules of one switch that contain a given atom, ordered by priority.
///
/// Keys are `(priority, rule-id)` so that entries are unique even while two
/// *non-overlapping* rules share a priority; the paper's well-formedness
/// assumption (overlapping rules have distinct priorities) guarantees that
/// the maximum key is the unique highest-priority owner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SourceRules {
    bst: std::collections::BTreeMap<(Priority, RuleId), LinkId>,
}

/// A rule entry as seen by the owner structure: enough to run Algorithms 1
/// and 2 without chasing a pointer to the full rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OwnedRule {
    /// The rule's priority.
    pub priority: Priority,
    /// The rule's id.
    pub id: RuleId,
    /// The rule's link (`link(r)`).
    pub link: LinkId,
}

impl SourceRules {
    /// Inserts a rule.
    #[inline]
    pub fn insert(&mut self, priority: Priority, id: RuleId, link: LinkId) {
        self.bst.insert((priority, id), link);
    }

    /// Removes a rule; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, priority: Priority, id: RuleId) -> bool {
        self.bst.remove(&(priority, id)).is_some()
    }

    /// The highest-priority rule, if any (`bst.highest_priority_rule()`).
    #[inline]
    pub fn highest(&self) -> Option<OwnedRule> {
        self.bst
            .iter()
            .next_back()
            .map(|(&(priority, id), &link)| OwnedRule { priority, id, link })
    }

    /// Whether no rule at this switch contains the atom.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bst.is_empty()
    }

    /// Number of rules at this switch containing the atom.
    #[inline]
    pub fn len(&self) -> usize {
        self.bst.len()
    }

    /// Whether the given rule is stored here (`r ∈ bst`).
    pub fn contains(&self, priority: Priority, id: RuleId) -> bool {
        self.bst.contains_key(&(priority, id))
    }

    /// Iterates `(priority, id, link)` in increasing priority order.
    pub fn iter(&self) -> impl Iterator<Item = OwnedRule> + '_ {
        self.bst
            .iter()
            .map(|(&(priority, id), &link)| OwnedRule { priority, id, link })
    }

    fn memory_bytes(&self) -> usize {
        // Key + value + BTreeMap per-entry overhead (~2 words).
        self.bst.len()
            * (std::mem::size_of::<(Priority, RuleId)>() + std::mem::size_of::<LinkId>() + 16)
    }
}

/// `owner[α][source]` for every allocated atom.
#[derive(Clone, Debug, Default)]
pub struct Owner {
    per_atom: Vec<HashMap<NodeId, SourceRules>>,
}

impl Owner {
    /// Creates an empty owner structure.
    pub fn new() -> Self {
        Owner::default()
    }

    /// Makes sure `owner[atom]` exists (as an empty table) and returns its
    /// index. Called whenever a new atom id is allocated.
    pub fn ensure_atom(&mut self, atom: AtomId) {
        if atom.index() >= self.per_atom.len() {
            self.per_atom.resize_with(atom.index() + 1, HashMap::new);
        }
    }

    /// `owner[new] ← owner[old]` — the copy step of Algorithm 1 (line 4)
    /// performed when atom `old` is split and `new` takes over its upper
    /// half: every rule containing the old atom also contains the new one.
    pub fn clone_atom(&mut self, old: AtomId, new: AtomId) {
        self.ensure_atom(new);
        let copied = self.per_atom[old.index()].clone();
        self.per_atom[new.index()] = copied;
    }

    /// The rules containing `atom` at `source` (read-only); `None` when no
    /// rule at that switch contains the atom.
    pub fn get(&self, atom: AtomId, source: NodeId) -> Option<&SourceRules> {
        self.per_atom.get(atom.index())?.get(&source)
    }

    /// Mutable access, creating the entry on first use (Algorithm 1 inserts
    /// into the BST irrespective of ownership, line 22).
    pub fn get_mut(&mut self, atom: AtomId, source: NodeId) -> &mut SourceRules {
        self.ensure_atom(atom);
        self.per_atom[atom.index()].entry(source).or_default()
    }

    /// Iterates `(source, rules)` pairs for one atom — the loop of
    /// Algorithm 1 lines 5–8.
    pub fn sources(&self, atom: AtomId) -> impl Iterator<Item = (NodeId, &SourceRules)> + '_ {
        self.per_atom
            .get(atom.index())
            .into_iter()
            .flat_map(|m| m.iter().map(|(&n, r)| (n, r)))
    }

    /// Removes empty per-source entries of an atom (keeps the structure
    /// tidy after removals; not required for correctness).
    pub fn prune_empty(&mut self, atom: AtomId) {
        if let Some(m) = self.per_atom.get_mut(atom.index()) {
            m.retain(|_, rules| !rules.is_empty());
        }
    }

    /// Number of atoms for which the structure has been allocated.
    pub fn atom_capacity(&self) -> usize {
        self.per_atom.len()
    }

    /// Total number of `(atom, source, rule)` entries — the `O(R·K)` space
    /// term of the complexity analysis.
    pub fn total_entries(&self) -> usize {
        self.per_atom
            .iter()
            .flat_map(|m| m.values())
            .map(|r| r.len())
            .sum()
    }

    /// Estimated heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes =
            self.per_atom.capacity() * std::mem::size_of::<HashMap<NodeId, SourceRules>>();
        for m in &self.per_atom {
            // HashMap overhead per entry: key + value struct + ~1.1 slots.
            bytes += m.capacity()
                * (std::mem::size_of::<NodeId>() + std::mem::size_of::<SourceRules>() + 8);
            bytes += m.values().map(SourceRules::memory_bytes).sum::<usize>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u64) -> RuleId {
        RuleId(i)
    }

    #[test]
    fn source_rules_priority_order() {
        let mut s = SourceRules::default();
        s.insert(10, rid(1), LinkId(0));
        s.insert(30, rid(2), LinkId(1));
        s.insert(20, rid(3), LinkId(2));
        assert_eq!(s.len(), 3);
        let h = s.highest().unwrap();
        assert_eq!(h.id, rid(2));
        assert_eq!(h.priority, 30);
        assert_eq!(h.link, LinkId(1));
        // Iteration is by increasing priority.
        let prios: Vec<Priority> = s.iter().map(|r| r.priority).collect();
        assert_eq!(prios, vec![10, 20, 30]);
    }

    #[test]
    fn source_rules_remove_arbitrary() {
        let mut s = SourceRules::default();
        s.insert(10, rid(1), LinkId(0));
        s.insert(30, rid(2), LinkId(1));
        s.insert(20, rid(3), LinkId(2));
        // Remove a non-highest rule (the reason a BST is used, §3.2).
        assert!(s.remove(20, rid(3)));
        assert!(!s.remove(20, rid(3)));
        assert_eq!(s.highest().unwrap().id, rid(2));
        assert!(s.contains(10, rid(1)));
        assert!(!s.contains(20, rid(3)));
        // Remove the highest; ownership falls back to the next.
        assert!(s.remove(30, rid(2)));
        assert_eq!(s.highest().unwrap().id, rid(1));
        assert!(s.remove(10, rid(1)));
        assert!(s.is_empty());
        assert!(s.highest().is_none());
    }

    #[test]
    fn equal_priority_disjoint_rules_coexist() {
        // Non-overlapping rules may share a priority; the BST must keep both.
        let mut s = SourceRules::default();
        s.insert(10, rid(1), LinkId(0));
        s.insert(10, rid(2), LinkId(1));
        assert_eq!(s.len(), 2);
        // Ties are broken by rule id; the exact winner is irrelevant for
        // well-formed data planes but must be deterministic.
        assert_eq!(s.highest().unwrap().id, rid(2));
    }

    #[test]
    fn owner_clone_atom_copies_all_sources() {
        let mut o = Owner::new();
        o.ensure_atom(AtomId(0));
        o.get_mut(AtomId(0), NodeId(1)).insert(5, rid(1), LinkId(0));
        o.get_mut(AtomId(0), NodeId(2)).insert(7, rid(2), LinkId(3));
        o.clone_atom(AtomId(0), AtomId(1));
        assert_eq!(
            o.get(AtomId(1), NodeId(1)).unwrap().highest().unwrap().id,
            rid(1)
        );
        assert_eq!(
            o.get(AtomId(1), NodeId(2)).unwrap().highest().unwrap().link,
            LinkId(3)
        );
        // The copy is independent of the original.
        o.get_mut(AtomId(1), NodeId(1)).insert(9, rid(9), LinkId(7));
        assert_eq!(o.get(AtomId(0), NodeId(1)).unwrap().len(), 1);
        assert_eq!(o.get(AtomId(1), NodeId(1)).unwrap().len(), 2);
    }

    #[test]
    fn owner_sources_iteration_and_entries() {
        let mut o = Owner::new();
        o.get_mut(AtomId(3), NodeId(0)).insert(1, rid(1), LinkId(0));
        o.get_mut(AtomId(3), NodeId(1)).insert(2, rid(2), LinkId(1));
        o.get_mut(AtomId(3), NodeId(1)).insert(3, rid(3), LinkId(2));
        let mut sources: Vec<NodeId> = o.sources(AtomId(3)).map(|(n, _)| n).collect();
        sources.sort();
        assert_eq!(sources, vec![NodeId(0), NodeId(1)]);
        assert_eq!(o.total_entries(), 3);
        assert_eq!(o.sources(AtomId(99)).count(), 0);
        assert!(o.get(AtomId(3), NodeId(9)).is_none());
    }

    #[test]
    fn prune_empty_drops_only_empty_entries() {
        let mut o = Owner::new();
        o.get_mut(AtomId(0), NodeId(0)).insert(1, rid(1), LinkId(0));
        o.get_mut(AtomId(0), NodeId(1)).insert(2, rid(2), LinkId(1));
        assert!(o.get_mut(AtomId(0), NodeId(1)).remove(2, rid(2)));
        o.prune_empty(AtomId(0));
        assert!(o.get(AtomId(0), NodeId(1)).is_none());
        assert!(o.get(AtomId(0), NodeId(0)).is_some());
    }

    #[test]
    fn memory_accounting_is_monotone() {
        let mut o = Owner::new();
        let before = o.memory_bytes();
        for atom in 0..50u32 {
            for node in 0..4u32 {
                o.get_mut(AtomId(atom), NodeId(node)).insert(
                    node,
                    rid(u64::from(atom * 10 + node)),
                    LinkId(node),
                );
            }
        }
        assert!(o.memory_bytes() > before);
        assert_eq!(o.total_entries(), 200);
        assert_eq!(o.atom_capacity(), 50);
    }
}
