//! Atoms and the ordered bound map `M` (paper §3.1).
//!
//! The match intervals of all rules in the network segment a header
//! field's value space into mutually disjoint half-closed intervals called
//! *atoms*. The paper presents this over one field — the destination
//! address, where the intervals come from IP prefixes — but the structure
//! is field-agnostic: an [`AtomMap`] is parameterized only by a bit width,
//! and a multi-field engine keeps one per declared header field (the
//! primary field's map carries owners and labels; the secondary maps are
//! pure interval lattices, see `crate::multifield`). The representation is
//! an ordered map `M` from interval bounds to *atom identifiers*: the pair
//! `n ↦ α` means that `α` denotes the atom `[n : n')` where `n'` is the
//! next greater key in `M`. The map is initialized with `MIN ↦ α₀` and
//! `MAX ↦ α∞` where `α∞` is a sentinel that never denotes a real atom, so
//! the number of atoms is always `|M| - 1`.
//!
//! Inserting a rule calls [`AtomMap::create_atoms`] (the paper's
//! `CREATE_ATOMS⁺`), which inserts the rule's lower and upper bound if not
//! already present and returns the at most two *delta-pairs* `α ↦ α'`
//! describing which existing atoms were split. This incremental refinement
//! is what lets Delta-net represent every Boolean combination of rules
//! without ever recomputing equivalence classes from scratch.

use netmodel::interval::{Bound, Interval};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an atom.
///
/// Identifiers are handed out by a consecutively increasing counter starting
/// at zero (paper §3.1), so they double as dense indices into the `owner`
/// and label structures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The sentinel `α∞` paired with the `MAX` key; it never denotes an atom.
    pub const INF: AtomId = AtomId(u32::MAX);

    /// The atom id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == AtomId::INF {
            write!(f, "α∞")
        } else {
            write!(f, "α{}", self.0)
        }
    }
}

impl fmt::Display for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A delta-pair `α ↦ α'` produced by an atom split: the half-closed interval
/// previously denoted by `old` is now denoted by `old` (its lower part) and
/// `new` (its upper part).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaPair {
    /// The atom that was split (keeps the lower part of its old interval).
    pub old: AtomId,
    /// The freshly created atom denoting the upper part.
    pub new: AtomId,
}

/// The inverse of a [`DeltaPair`], produced by [`AtomMap::remove_bound`]
/// when two adjacent atoms merge: `kept` absorbs `freed`'s interval and
/// `freed`'s identifier goes onto the free list for reuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AtomMerge {
    /// The surviving atom (the lower neighbour; its interval grew).
    pub kept: AtomId,
    /// The reclaimed atom (the upper neighbour; its id is now free).
    pub freed: AtomId,
}

/// The value marking a dead (reclaimed) atom id in the remap table returned
/// by [`AtomMap::renumber`].
pub const REMAP_DEAD: u32 = u32::MAX;

/// The ordered map `M` of interval bounds to atom identifiers.
///
/// # Examples
///
/// ```
/// use deltanet::atoms::AtomMap;
/// use netmodel::interval::Interval;
///
/// // Table 1 of the paper: rH = [10:12), rL = [0:16) over 32-bit addresses.
/// let mut m = AtomMap::new(32);
/// let d1 = m.create_atoms(Interval::new(10, 12));
/// let d2 = m.create_atoms(Interval::new(0, 16));
/// assert!(d1.len() <= 2 && d2.len() <= 2);
/// assert_eq!(m.atom_count(), 4); // [0:10), [10:12), [12:16), [16:2^32)
/// ```
#[derive(Clone, Debug)]
pub struct AtomMap {
    /// `M`: bound ↦ atom id. Always contains `MIN` and `MAX`.
    map: BTreeMap<Bound, AtomId>,
    /// Interval currently denoted by each atom id (dense, indexed by id).
    /// Slots of reclaimed ids hold stale intervals until reuse.
    intervals: Vec<Interval>,
    /// Atom ids reclaimed by [`AtomMap::remove_bound`], awaiting reuse by
    /// the next split (the §3.2.2 garbage-collection remark).
    free: Vec<AtomId>,
    /// Exclusive upper bound of the whole field space (`MAX = 2^width`).
    max: Bound,
}

impl AtomMap {
    /// Creates the atom map for a `width`-bit header field, containing the
    /// single atom `[MIN : MAX)`.
    pub fn new(width: u8) -> Self {
        assert!(width > 0 && width <= 127, "unsupported field width {width}");
        let max = 1u128 << width;
        let mut map = BTreeMap::new();
        map.insert(0, AtomId(0));
        map.insert(max, AtomId::INF);
        AtomMap {
            map,
            intervals: vec![Interval::new(0, max)],
            free: Vec::new(),
            max,
        }
    }

    /// The exclusive upper bound `MAX = 2^width` of the field space.
    #[inline]
    pub fn max_bound(&self) -> Bound {
        self.max
    }

    /// The number of atoms currently represented (`|M| - 1`).
    #[inline]
    pub fn atom_count(&self) -> usize {
        self.map.len() - 1
    }

    /// Size of the atom-identifier table: the high-water mark of ids handed
    /// out since the last [`AtomMap::renumber`]. Dense structures indexed by
    /// atom id (the owner arena, label bitsets) scale with this, not with
    /// [`AtomMap::atom_count`], which is why long-running churn needs the
    /// compaction pass to bring it back down.
    #[inline]
    pub fn allocated_atoms(&self) -> usize {
        self.intervals.len()
    }

    /// Number of reclaimed atom ids currently awaiting reuse.
    #[inline]
    pub fn free_atoms(&self) -> usize {
        self.free.len()
    }

    /// The half-closed interval currently denoted by `atom`.
    ///
    /// # Panics
    ///
    /// Panics if `atom` is the `α∞` sentinel or has not been allocated.
    #[inline]
    pub fn atom_interval(&self, atom: AtomId) -> Interval {
        self.intervals[atom.index()]
    }

    /// The atom containing the single field value `x`.
    pub fn atom_of_value(&self, x: Bound) -> AtomId {
        assert!(x < self.max, "value {x} outside field space");
        let (_, &atom) = self
            .map
            .range(..=x)
            .next_back()
            .expect("MIN is always present");
        atom
    }

    /// The paper's `CREATE_ATOMS⁺`: ensures both bounds of `interval` are
    /// keys of `M`, allocating at most two new atoms, and returns the
    /// delta-pairs describing the splits (possibly empty).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or extends beyond the field space.
    pub fn create_atoms(&mut self, interval: Interval) -> Vec<DeltaPair> {
        let mut out = Vec::with_capacity(2);
        self.create_atoms_into(interval, &mut out);
        out
    }

    /// Allocation-free form of [`AtomMap::create_atoms`]: clears `out` and
    /// fills it with the delta-pairs. The engine's update loop calls this
    /// with a scratch buffer it owns, so the steady state (both bounds
    /// already in `M`, or `out` already at capacity 2) never allocates.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or extends beyond the field space.
    pub fn create_atoms_into(&mut self, interval: Interval, out: &mut Vec<DeltaPair>) {
        assert!(!interval.is_empty(), "rules must match at least one packet");
        assert!(
            interval.hi() <= self.max,
            "interval {interval} outside field space [0 : {})",
            self.max
        );
        out.clear();
        let lower = interval.lo();
        let upper = interval.hi();
        if let Some(pair) = self.insert_bound(lower) {
            out.push(pair);
        }
        if let Some(pair) = self.insert_bound(upper) {
            out.push(pair);
        }
        debug_assert!(out.len() <= 2);
    }

    /// Inserts a single bound, splitting the atom it falls into. Returns the
    /// delta-pair if a split happened, `None` if the bound was already a key.
    fn insert_bound(&mut self, bound: Bound) -> Option<DeltaPair> {
        if self.map.contains_key(&bound) {
            return None;
        }
        // The atom being split is the one whose key is the greatest key
        // strictly below `bound`.
        let (&_pred_key, &old) = self
            .map
            .range(..bound)
            .next_back()
            .expect("MIN is always present and bound > MIN here");
        let old_interval = self.intervals[old.index()];
        debug_assert!(old_interval.contains(bound));
        // Prefer a reclaimed id over growing the table, so churn with
        // compaction stays at a bounded high-water mark.
        let upper = Interval::new(bound, old_interval.hi());
        let new = match self.free.pop() {
            Some(id) => {
                self.intervals[id.index()] = upper;
                id
            }
            None => {
                let id = AtomId(self.intervals.len() as u32);
                assert!(id != AtomId::INF, "atom identifier space exhausted");
                self.intervals.push(upper);
                id
            }
        };
        // The old atom keeps the lower part; the new atom takes the upper.
        self.intervals[old.index()] = Interval::new(old_interval.lo(), bound);
        self.map.insert(bound, new);
        Some(DeltaPair { old, new })
    }

    /// The inverse of [`AtomMap::insert_bound`] — the merge step of the
    /// compaction pass (§3.2.2 remark): removes `bound` from `M`, so the
    /// atom starting at `bound` is absorbed by its lower neighbour, whose
    /// interval grows accordingly. The absorbed id goes onto the free list.
    ///
    /// Returns `None` if `bound` is not a key of `M`. The caller is
    /// responsible for ensuring no live rule references `bound` (otherwise
    /// the merged atom would no longer be a Boolean-combination building
    /// block of the rule set) and for erasing the freed id from the owner
    /// and label structures.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is the structural `MIN` or `MAX` key.
    pub fn remove_bound(&mut self, bound: Bound) -> Option<AtomMerge> {
        assert!(
            bound != 0 && bound != self.max,
            "cannot remove the structural MIN/MAX bound"
        );
        let freed = self.map.remove(&bound)?;
        let (_, &kept) = self
            .map
            .range(..bound)
            .next_back()
            .expect("MIN is always present and bound > MIN here");
        let freed_interval = self.intervals[freed.index()];
        let kept_interval = self.intervals[kept.index()];
        debug_assert_eq!(kept_interval.hi(), bound, "map and interval table diverged");
        debug_assert_eq!(
            freed_interval.lo(),
            bound,
            "map and interval table diverged"
        );
        self.intervals[kept.index()] = Interval::new(kept_interval.lo(), freed_interval.hi());
        self.free.push(freed);
        Some(AtomMerge { kept, freed })
    }

    /// Renumbers the surviving atoms densely (`0..atom_count()`) in
    /// increasing address order, truncating the interval table and clearing
    /// the free list. Returns the remap table `old id → new id`, with
    /// [`REMAP_DEAD`] marking reclaimed ids; callers must apply the same
    /// remapping to every structure indexed by atom id.
    pub fn renumber(&mut self) -> Vec<u32> {
        let mut remap = vec![REMAP_DEAD; self.intervals.len()];
        let mut new_intervals = Vec::with_capacity(self.atom_count());
        for atom in self.map.values_mut() {
            if *atom == AtomId::INF {
                continue;
            }
            let new = AtomId(new_intervals.len() as u32);
            remap[atom.index()] = new.0;
            new_intervals.push(self.intervals[atom.index()]);
            *atom = new;
        }
        self.intervals = new_intervals;
        self.free.clear();
        remap
    }

    /// All keys of `M` except the structural `MIN` and `MAX` — the bounds a
    /// compaction pass inspects for liveness.
    pub fn interior_bounds(&self) -> impl Iterator<Item = Bound> + '_ {
        self.map
            .keys()
            .copied()
            .filter(move |&b| b != 0 && b != self.max)
    }

    /// The atoms whose union is exactly `interval` (the paper's
    /// `⟦interval(r)⟧`), in increasing address order.
    ///
    /// Both bounds of `interval` must already be keys of `M`, i.e.
    /// [`AtomMap::create_atoms`] must have been called for this interval (or
    /// intervals sharing its bounds) beforehand.
    pub fn atoms_of(&self, interval: Interval) -> Vec<AtomId> {
        self.iter_atoms_of(interval).collect()
    }

    /// Iterator form of [`AtomMap::atoms_of`], avoiding the intermediate
    /// allocation on the hot path.
    pub fn iter_atoms_of(&self, interval: Interval) -> impl Iterator<Item = AtomId> + '_ {
        debug_assert!(
            self.map.contains_key(&interval.lo()) && self.map.contains_key(&interval.hi()),
            "atoms_of called for an interval whose bounds are not in M: {interval}"
        );
        self.map
            .range(interval.lo()..interval.hi())
            .map(|(_, &atom)| atom)
    }

    /// The number of atoms covering `interval` without materializing them.
    pub fn atoms_of_count(&self, interval: Interval) -> usize {
        self.map.range(interval.lo()..interval.hi()).count()
    }

    /// All (atom, interval) pairs in increasing address order, excluding the
    /// `α∞` sentinel. Intended for reporting and tests, not the hot path.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, Interval)> + '_ {
        self.map
            .iter()
            .filter(|(_, &a)| a != AtomId::INF)
            .map(move |(_, &a)| (a, self.intervals[a.index()]))
    }

    /// Whether a bound is currently a key of `M` (used by tests and the
    /// garbage-collection bookkeeping in the engine).
    pub fn contains_bound(&self, bound: Bound) -> bool {
        self.map.contains_key(&bound)
    }

    /// Estimated heap usage in bytes of the map and the interval table.
    pub fn memory_bytes(&self) -> usize {
        // BTreeMap nodes: key + value + per-entry overhead (~2 words).
        let entry = std::mem::size_of::<Bound>() + std::mem::size_of::<AtomId>() + 16;
        self.map.len() * entry
            + self.intervals.capacity() * std::mem::size_of::<Interval>()
            + self.free.capacity() * std::mem::size_of::<AtomId>()
    }

    /// Heap bytes addressed by live entries (≤ [`AtomMap::memory_bytes`],
    /// which counts allocated capacity). A function of the logical state
    /// alone — two maps holding the same bounds, ids and free list report
    /// the same value regardless of how their allocations grew — which is
    /// what lets a snapshot-restored engine reproduce the live engine's
    /// byte accounting exactly.
    pub fn live_bytes(&self) -> usize {
        let entry = std::mem::size_of::<Bound>() + std::mem::size_of::<AtomId>() + 16;
        self.map.len() * entry
            + self.intervals.len() * std::mem::size_of::<Interval>()
            + self.free.len() * std::mem::size_of::<AtomId>()
    }

    /// Every `(bound, atom id)` entry of `M` in ascending bound order,
    /// *excluding* the structural `MAX ↦ α∞` sentinel (it is implied by the
    /// field width). The snapshot export of the map.
    pub fn export_entries(&self) -> Vec<(Bound, AtomId)> {
        self.map
            .iter()
            .filter(|(_, &a)| a != AtomId::INF)
            .map(|(&b, &a)| (b, a))
            .collect()
    }

    /// The reclaimed-id free list, most recently freed last. Order matters:
    /// it is a stack, and replay determinism after a restore depends on the
    /// next split popping the same id the live engine would.
    pub fn free_list(&self) -> &[AtomId] {
        &self.free
    }

    /// Rebuilds an atom map from snapshot parts: the field width, the id
    /// table size (`allocated_atoms`), the `M` entries of
    /// [`AtomMap::export_entries`] and the free list of
    /// [`AtomMap::free_list`]. Validates the structural invariants —
    /// ascending bounds starting at `0`, unique live ids, live ids and free
    /// ids together covering `0..allocated` exactly once — and returns a
    /// description of the first violation otherwise, so a corrupted
    /// snapshot surfaces as a clean error.
    pub fn from_parts(
        width: u8,
        allocated: usize,
        entries: &[(Bound, AtomId)],
        free: Vec<AtomId>,
    ) -> Result<AtomMap, String> {
        if width == 0 || width > 127 {
            return Err(format!("unsupported field width {width}"));
        }
        let max = 1u128 << width;
        if entries.first().map(|&(b, _)| b) != Some(0) {
            return Err("atom map must start at bound 0".to_string());
        }
        if entries.len() + free.len() != allocated {
            return Err(format!(
                "atom table size mismatch: {} live + {} free != {allocated} allocated",
                entries.len(),
                free.len()
            ));
        }
        let mut seen = vec![false; allocated];
        let mut claim = |atom: AtomId| -> Result<(), String> {
            match seen.get_mut(atom.index()) {
                Some(slot) if !*slot => {
                    *slot = true;
                    Ok(())
                }
                Some(_) => Err(format!("atom id {atom} occurs twice")),
                None => Err(format!("atom id {atom} outside table of {allocated}")),
            }
        };
        let mut map = BTreeMap::new();
        let mut intervals = vec![Interval::new(0, 0); allocated];
        for (i, &(bound, atom)) in entries.iter().enumerate() {
            let next = entries.get(i + 1).map(|&(b, _)| b).unwrap_or(max);
            if bound >= next {
                return Err(format!("atom bounds not ascending at {bound}"));
            }
            claim(atom)?;
            intervals[atom.index()] = Interval::new(bound, next);
            map.insert(bound, atom);
        }
        for &atom in &free {
            claim(atom)?;
        }
        map.insert(max, AtomId::INF);
        Ok(AtomMap {
            map,
            intervals,
            free,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: Bound, hi: Bound) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn initial_state_has_one_atom() {
        let m = AtomMap::new(32);
        assert_eq!(m.atom_count(), 1);
        assert_eq!(m.atom_interval(AtomId(0)), iv(0, 1 << 32));
        assert_eq!(m.atom_of_value(0), AtomId(0));
        assert_eq!(m.atom_of_value((1 << 32) - 1), AtomId(0));
    }

    #[test]
    fn paper_table1_atoms() {
        // Figure 5: rH = [10:12), rL = [0:16) produce atoms
        // α-pieces [0:10), [10:12), [12:16) plus the remainder [16:2^32).
        let mut m = AtomMap::new(32);
        let d_h = m.create_atoms(iv(10, 12));
        assert_eq!(d_h.len(), 2);
        let d_l = m.create_atoms(iv(0, 16));
        // 0 is MIN (already present); 16 is new → one split.
        assert_eq!(d_l.len(), 1);
        assert_eq!(m.atom_count(), 4);

        // ⟦interval(rH)⟧ is a single atom, ⟦interval(rL)⟧ is three atoms.
        assert_eq!(m.atoms_of(iv(10, 12)).len(), 1);
        assert_eq!(m.atoms_of(iv(0, 16)).len(), 3);

        // The three rL atoms cover exactly [0:16).
        let atoms = m.atoms_of(iv(0, 16));
        let mut covered: Vec<Interval> = atoms.iter().map(|&a| m.atom_interval(a)).collect();
        covered.sort();
        assert_eq!(covered, vec![iv(0, 10), iv(10, 12), iv(12, 16)]);
    }

    #[test]
    fn paper_medium_rule_split_example() {
        // §3.2.1: after rH and rL, inserting rM = [8:12) splits [0:10) into
        // [0:8) and [8:10): exactly one delta-pair.
        let mut m = AtomMap::new(32);
        m.create_atoms(iv(10, 12));
        m.create_atoms(iv(0, 16));
        let before = m.atom_of_value(9);
        let delta = m.create_atoms(iv(8, 12));
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].old, before);
        assert_eq!(m.atom_interval(delta[0].old), iv(0, 8));
        assert_eq!(m.atom_interval(delta[0].new), iv(8, 10));
        // rM is now represented by exactly two atoms: [8:10) and [10:12).
        assert_eq!(m.atoms_of(iv(8, 12)).len(), 2);
    }

    #[test]
    fn same_lower_bound_yields_three_atoms() {
        // §3.1: 1.2.0.0/16 and 1.2.0.0/24 share a lower bound, so together
        // they yield only three atoms (including the surrounding remainder
        // pieces), not four: keys {0, lo, hi24, hi16, MAX} minus MAX.
        let mut m = AtomMap::new(32);
        let p16: netmodel::ip::IpPrefix = "1.2.0.0/16".parse().unwrap();
        let p24: netmodel::ip::IpPrefix = "1.2.0.0/24".parse().unwrap();
        m.create_atoms(p16.interval());
        m.create_atoms(p24.interval());
        // keys: MIN, lo(p16)=lo(p24), hi(p24), hi(p16), MAX → 4 atoms.
        assert_eq!(m.atom_count(), 4);
    }

    #[test]
    fn create_atoms_is_idempotent() {
        let mut m = AtomMap::new(32);
        assert_eq!(m.create_atoms(iv(10, 20)).len(), 2);
        assert!(m.create_atoms(iv(10, 20)).is_empty());
        assert_eq!(m.atom_count(), 3);
    }

    #[test]
    fn atom_set_is_order_invariant() {
        // §3.1: the set of atoms at the end is invariant under insertion
        // order (though the identifiers differ).
        let intervals = [iv(0, 100), iv(50, 80), iv(20, 60), iv(90, 200)];
        let mut m1 = AtomMap::new(32);
        for i in intervals {
            m1.create_atoms(i);
        }
        let mut m2 = AtomMap::new(32);
        for i in intervals.iter().rev() {
            m2.create_atoms(*i);
        }
        let set1: Vec<Interval> = {
            let mut v: Vec<_> = m1.iter().map(|(_, iv)| iv).collect();
            v.sort();
            v
        };
        let set2: Vec<Interval> = {
            let mut v: Vec<_> = m2.iter().map(|(_, iv)| iv).collect();
            v.sort();
            v
        };
        assert_eq!(set1, set2);
        assert_eq!(m1.atom_count(), m2.atom_count());
    }

    #[test]
    fn atoms_partition_the_field_space() {
        let mut m = AtomMap::new(16);
        for i in [iv(5, 9), iv(0, 32), iv(100, 2000), iv(7, 1000)] {
            m.create_atoms(i);
        }
        let mut intervals: Vec<Interval> = m.iter().map(|(_, iv)| iv).collect();
        intervals.sort();
        // Consecutive, non-overlapping, covering [0, 2^16).
        assert_eq!(intervals.first().unwrap().lo(), 0);
        assert_eq!(intervals.last().unwrap().hi(), 1 << 16);
        for w in intervals.windows(2) {
            assert_eq!(w[0].hi(), w[1].lo());
        }
    }

    #[test]
    fn atom_of_value_matches_intervals() {
        let mut m = AtomMap::new(16);
        m.create_atoms(iv(10, 20));
        m.create_atoms(iv(15, 40));
        for x in [0u128, 9, 10, 14, 15, 19, 20, 39, 40, 65535] {
            let a = m.atom_of_value(x);
            assert!(m.atom_interval(a).contains(x), "value {x} atom {a:?}");
        }
    }

    #[test]
    fn atoms_of_count_matches_atoms_of() {
        let mut m = AtomMap::new(16);
        m.create_atoms(iv(10, 20));
        m.create_atoms(iv(15, 40));
        m.create_atoms(iv(0, 100));
        for interval in [iv(10, 20), iv(15, 40), iv(0, 100)] {
            assert_eq!(m.atoms_of(interval).len(), m.atoms_of_count(interval));
        }
    }

    #[test]
    fn delta_pair_count_never_exceeds_two() {
        let mut m = AtomMap::new(16);
        let mut rng_state = 12345u64;
        for _ in 0..500 {
            // Simple LCG so the test needs no external crate.
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lo = (rng_state >> 16) % 65_000;
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let span = 1 + (rng_state >> 16) % 500;
            let hi = (lo + span).min(65_536);
            let delta = m.create_atoms(iv(lo as Bound, hi as Bound));
            assert!(delta.len() <= 2);
        }
        // Atom count can never exceed 2 * rules + 1.
        assert!(m.atom_count() <= 2 * 500 + 1);
    }

    #[test]
    fn width_4_appendix_a_example() {
        // Appendix A uses 4-bit addresses: rules [10:12) and [0:16) over a
        // 4-bit space give exactly the three atoms of Figure 9.
        let mut m = AtomMap::new(4);
        m.create_atoms(iv(10, 12));
        m.create_atoms(iv(0, 16));
        assert_eq!(m.atom_count(), 3);
        let mut intervals: Vec<Interval> = m.iter().map(|(_, iv)| iv).collect();
        intervals.sort();
        assert_eq!(intervals, vec![iv(0, 10), iv(10, 12), iv(12, 16)]);
    }

    #[test]
    #[should_panic(expected = "outside field space")]
    fn interval_beyond_field_space_panics() {
        let mut m = AtomMap::new(4);
        m.create_atoms(iv(0, 17));
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn empty_interval_panics() {
        let mut m = AtomMap::new(4);
        m.create_atoms(iv(3, 3));
    }

    #[test]
    fn memory_bytes_grows_with_atoms() {
        let mut m = AtomMap::new(32);
        let before = m.memory_bytes();
        for i in 0..100u128 {
            m.create_atoms(iv(i * 10, i * 10 + 5));
        }
        assert!(m.memory_bytes() > before);
    }

    #[test]
    fn remove_bound_merges_into_lower_neighbour() {
        let mut m = AtomMap::new(16);
        m.create_atoms(iv(10, 20));
        m.create_atoms(iv(15, 40));
        // atoms: [0,10) [10,15) [15,20) [20,40) [40,2^16)
        assert_eq!(m.atom_count(), 5);
        let left = m.atom_of_value(14);
        let right = m.atom_of_value(15);
        let merge = m.remove_bound(15).unwrap();
        assert_eq!(
            merge,
            AtomMerge {
                kept: left,
                freed: right
            }
        );
        assert_eq!(m.atom_count(), 4);
        assert_eq!(m.atom_interval(left), iv(10, 20));
        assert_eq!(m.free_atoms(), 1);
        assert!(!m.contains_bound(15));
        // Removing an absent bound is a no-op.
        assert!(m.remove_bound(15).is_none());
        // Consecutive merges chain through the surviving neighbour.
        let first = m.atom_of_value(0);
        m.remove_bound(10);
        m.remove_bound(20);
        assert_eq!(m.atom_interval(first), iv(0, 40));
        assert_eq!(m.atom_count(), 2);
        assert_eq!(m.free_atoms(), 3);
    }

    #[test]
    fn split_after_merge_reuses_freed_ids() {
        let mut m = AtomMap::new(16);
        m.create_atoms(iv(10, 20));
        let allocated = m.allocated_atoms();
        m.remove_bound(10);
        m.remove_bound(20);
        assert_eq!(m.free_atoms(), 2);
        // New splits pop the free list instead of growing the table.
        m.create_atoms(iv(100, 200));
        assert_eq!(m.allocated_atoms(), allocated);
        assert_eq!(m.free_atoms(), 0);
        assert_eq!(m.atoms_of(iv(100, 200)).len(), 1);
        // Point queries and partition stay correct with recycled ids.
        for x in [0u128, 99, 100, 199, 200, 65535] {
            assert!(m.atom_interval(m.atom_of_value(x)).contains(x));
        }
    }

    #[test]
    #[should_panic(expected = "structural MIN/MAX")]
    fn remove_bound_rejects_min() {
        let mut m = AtomMap::new(16);
        m.remove_bound(0);
    }

    #[test]
    fn renumber_makes_ids_dense_in_address_order() {
        let mut m = AtomMap::new(16);
        m.create_atoms(iv(20, 30));
        m.create_atoms(iv(5, 8)); // allocated after but lower in address order
        m.remove_bound(30);
        let remap = m.renumber();
        assert_eq!(m.atom_count(), 4); // [0,5) [5,8) [8,20) [20,2^16)
        assert_eq!(m.allocated_atoms(), m.atom_count());
        assert_eq!(m.free_atoms(), 0);
        assert_eq!(remap.iter().filter(|&&n| n == REMAP_DEAD).count(), 1);
        // Ids follow address order after the renumbering.
        let ids: Vec<u32> = m.iter().map(|(a, _)| a.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let intervals: Vec<Interval> = m.iter().map(|(_, i)| i).collect();
        assert_eq!(
            intervals,
            vec![iv(0, 5), iv(5, 8), iv(8, 20), iv(20, 1 << 16)]
        );
        // The remap table maps every surviving old id onto its new id.
        for (old, &new) in remap.iter().enumerate() {
            if new != REMAP_DEAD {
                let _ = old;
                assert!((new as usize) < m.atom_count());
            }
        }
        // Splitting keeps working after a renumber.
        let delta = m.create_atoms(iv(6, 10));
        assert_eq!(delta.len(), 2);
    }

    #[test]
    fn display_of_atom_ids() {
        assert_eq!(AtomId(3).to_string(), "α3");
        assert_eq!(AtomId::INF.to_string(), "α∞");
    }
}
