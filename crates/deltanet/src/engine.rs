//! The Delta-net engine: Algorithms 1 and 2 of the paper, plus the
//! [`Checker`] implementation used by the experiments.
//!
//! [`DeltaNet`] owns the three global structures of §3.2 — the atom map `M`,
//! the `owner` array and the edge `label`s — and transforms them
//! incrementally on every rule insertion and removal. Each update also
//! produces a [`DeltaGraph`] (the by-product described in §3.3) on which the
//! configured per-update property checks run.
//!
//! The update core is written against an explicit interval rather than the
//! rule's full match range, so an engine can be *clipped* to a contiguous
//! slice of the address space ([`DeltaNet::clipped`]) and used as one shard
//! of a [`crate::shard::ShardedDeltaNet`] — the §6 observation that the main
//! loops over atoms parallelize, realized by partitioning the atoms
//! themselves.
//!
//! When the configuration declares *secondary* header fields
//! ([`DeltaNetConfig::sec_widths`] — e.g. a source address next to the
//! destination), the engine additionally keeps one interval lattice per
//! secondary field and dispatches every check through the cross-field
//! machinery of [`crate::multifield`]. The default single-field
//! configuration never touches that path: atoms, owners, and labels behave
//! bit-identically to the paper's presentation.

use crate::atoms::{AtomId, AtomMap, DeltaPair};
use crate::delta_graph::DeltaGraph;
use crate::labels::Labels;
use crate::loops;
use crate::monitor::ViolationMonitor;
use crate::multifield::{self, MfClassState, MfScratch, MfView, SecClass};
use crate::owner::Owner;
use netmodel::checker::{Checker, UpdateError, UpdateReport, WhatIfReport};
use netmodel::header::{HeaderSpace, MAX_SECONDARY_FIELDS};
use netmodel::interval::{normalize, Bound, Interval};
use netmodel::rule::{Rule, RuleId};
use netmodel::topology::{LinkId, Topology};
use netmodel::trace::Op;
use std::collections::HashMap;

/// Configuration of a [`DeltaNet`] instance.
#[derive(Clone, Copy, Debug)]
pub struct DeltaNetConfig {
    /// Width in bits of the matched *primary* header field (32 for IPv4
    /// destination addresses) — the axis atoms, labels, and shard
    /// partitioning run on.
    pub field_width: u8,
    /// Widths in bits of the declared *secondary* header fields, in field
    /// order; `0` marks "no field" (the array is fixed-size so the config
    /// stays `Copy`, and nonzero entries must be contiguous from position
    /// 0 — use [`DeltaNetConfig::with_secondary`]). All-zero — the default
    /// — is the paper's single-field shape and keeps every existing hot
    /// path untouched.
    pub sec_widths: [u8; MAX_SECONDARY_FIELDS],
    /// Whether to run forwarding-loop detection on the delta-graph of every
    /// update (the experiment of §4.3.1).
    pub check_loops_per_update: bool,
    /// When `Some(t)`, a rule removal that leaves at least `max(t, 1)`
    /// reclaimable interval bounds triggers an automatic
    /// [`DeltaNet::compact`] pass (deferred while a delta-graph aggregation
    /// is in progress). `None` (the default) matches the paper's
    /// presentation: atoms only ever split, and memory grows monotonically
    /// under rule churn.
    pub compact_threshold: Option<usize>,
    /// Whether to maintain the current set of forwarding-loop and blackhole
    /// violations as live state, updated incrementally from every update's
    /// delta-graph (see [`crate::monitor::ViolationMonitor`]). Off by
    /// default; a monitor can also be attached to a running engine with
    /// [`DeltaNet::enable_monitor`].
    pub monitor_violations: bool,
}

impl Default for DeltaNetConfig {
    fn default() -> Self {
        DeltaNetConfig {
            field_width: 32,
            sec_widths: [0; MAX_SECONDARY_FIELDS],
            check_loops_per_update: true,
            compact_threshold: None,
            monitor_violations: false,
        }
    }
}

impl DeltaNetConfig {
    /// Declares secondary header fields with the given bit-widths (builder
    /// style): `config.with_secondary(&[16])` verifies a `[dst, src]`
    /// plane with 16-bit source addresses.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SECONDARY_FIELDS`] widths are given or any
    /// width is 0 or exceeds 127 bits.
    pub fn with_secondary(mut self, widths: &[u8]) -> Self {
        assert!(
            widths.len() <= MAX_SECONDARY_FIELDS,
            "at most {MAX_SECONDARY_FIELDS} secondary fields supported"
        );
        self.sec_widths = [0; MAX_SECONDARY_FIELDS];
        for (i, &w) in widths.iter().enumerate() {
            assert!(
                w > 0 && w <= netmodel::header::MAX_SECONDARY_WIDTH,
                "unsupported secondary field width {w}"
            );
            self.sec_widths[i] = w;
        }
        self
    }

    /// Number of declared secondary fields.
    pub fn secondary_count(&self) -> usize {
        self.sec_widths.iter().take_while(|&&w| w != 0).count()
    }

    /// The header space this configuration declares, primary field first.
    pub fn header_space(&self) -> HeaderSpace {
        let mut widths = [0u8; 1 + MAX_SECONDARY_FIELDS];
        widths[0] = self.field_width;
        let count = 1 + self.secondary_count();
        widths[1..count].copy_from_slice(&self.sec_widths[..count - 1]);
        HeaderSpace::new(&widths[..count])
    }

    /// Validates a rule's secondary constraints against the declared
    /// header space: constraining more fields than declared, or an
    /// interval extending past a declared field's range, is an
    /// [`UpdateError::FieldMismatch`]. Constraining *fewer* fields is fine
    /// — missing fields are wildcards.
    pub(crate) fn validate_rule_fields(&self, rule: &Rule) -> Result<(), UpdateError> {
        let declared = self.secondary_count();
        let constrained = rule.sec.count();
        let fits = constrained <= declared
            && rule
                .sec
                .intervals()
                .iter()
                .enumerate()
                .all(|(i, iv)| iv.hi() <= 1u128 << self.sec_widths[i]);
        if fits {
            Ok(())
        } else {
            Err(UpdateError::FieldMismatch {
                rule: rule.id,
                declared,
                constrained,
            })
        }
    }
}

/// What one [`DeltaNet::compact`] pass accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Atoms merged into their lower neighbour (one per reclaimed bound).
    pub merged_atoms: usize,
    /// Size of the atom-id table before the pass.
    pub allocated_before: usize,
    /// Size of the atom-id table after renumbering (equals the live atom
    /// count).
    pub allocated_after: usize,
    /// Estimated engine heap bytes before the pass.
    pub bytes_before: usize,
    /// Estimated engine heap bytes after the pass.
    pub bytes_after: usize,
}

/// The Delta-net real-time data-plane checker.
///
/// # Examples
///
/// ```
/// use deltanet::{DeltaNet, DeltaNetConfig};
/// use netmodel::checker::Checker;
/// use netmodel::topology::Topology;
/// use netmodel::rule::{Rule, RuleId};
///
/// let mut topo = Topology::new();
/// let s1 = topo.add_node("s1");
/// let s2 = topo.add_node("s2");
/// let link = topo.add_link(s1, s2);
/// let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
///
/// let rule = Rule::forward(RuleId(0), "10.0.0.0/8".parse().unwrap(), 100, s1, link);
/// let report = net.insert_rule(rule);
/// assert!(report.violations.is_empty());
/// assert_eq!(net.rule_count(), 1);
/// assert!(!net.label(link).is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct DeltaNet {
    topology: Topology,
    config: DeltaNetConfig,
    atoms: AtomMap,
    owner: Owner,
    labels: Labels,
    rules: HashMap<RuleId, Rule>,
    /// Reference counts of interval bounds contributed by live rules; used
    /// by the garbage-collection bookkeeping of §3.2.2.
    bound_refs: HashMap<Bound, u32>,
    /// Interior bounds of `M` no longer referenced by any live rule,
    /// maintained incrementally so the compaction trigger is O(1) per
    /// update. Invariant: equals the number of keys of `M` that are neither
    /// `MIN`/`MAX` nor keys of `bound_refs`.
    reclaimable: usize,
    /// One interval lattice per declared secondary header field (empty for
    /// the single-field shape). Secondary lattices carry no owner cells or
    /// edge labels — the cross-field checks of [`crate::multifield`]
    /// enumerate their atom cross product at check time instead.
    sec_atoms: Vec<AtomMap>,
    /// Per-secondary-field bound reference counts — the `bound_refs`
    /// bookkeeping, mirrored per field.
    sec_bound_refs: Vec<HashMap<Bound, u32>>,
    /// Per-secondary-field reclaimable-bound counters — the `reclaimable`
    /// invariant, mirrored per field.
    sec_reclaimable: Vec<usize>,
    /// Number of compaction passes run so far (explicit or threshold-
    /// triggered).
    compactions: usize,
    /// The delta-graph of the most recent update.
    last_delta: DeltaGraph,
    /// An aggregation buffer for multi-update delta-graphs (§3.3).
    aggregate: Option<DeltaGraph>,
    /// Scratch buffer for the delta-pairs of an update, reused across
    /// updates so the steady-state hot path performs no per-update
    /// allocation. Invariant: empty between updates (taken at the start of
    /// `insert_rule`, cleared and put back before the update returns).
    pair_scratch: Vec<DeltaPair>,
    /// When `Some(range)`, this engine owns only that contiguous slice of
    /// the address space: every applied rule interval is intersected with it
    /// before the update core runs. This is the per-shard building block of
    /// [`crate::shard::ShardedDeltaNet`]; a stand-alone engine has `None`.
    clip: Option<Interval>,
    /// The incrementally maintained violation state, when monitoring is on
    /// ([`DeltaNetConfig::monitor_violations`] or
    /// [`DeltaNet::enable_monitor`]). Fed by every update's delta-graph in
    /// [`DeltaNet::finish_update`]; remapped across [`DeltaNet::compact`].
    monitor: Option<ViolationMonitor>,
    /// Memoized cross product of the secondary lattices' atoms
    /// ([`multifield::sec_classes`]), shared by every cross-field check.
    /// `None` when stale: invalidated whenever an update records secondary
    /// splits or a compaction merges secondary atoms, refilled on the next
    /// check. Always `None` on a single-field engine.
    sec_class_cache: Option<Vec<SecClass>>,
    /// Per-secondary-class violation ledger behind the incremental
    /// multi-field monitor repair ([`MfClassState`]): present iff this is a
    /// monitored multi-field engine (built lazily after a snapshot
    /// restore). Derived state — absent from snapshots and excluded from
    /// [`DeltaNet::live_bytes`].
    mf_state: Option<MfClassState>,
}

impl DeltaNet {
    /// Creates a checker over the given topology.
    pub fn new(topology: Topology, config: DeltaNetConfig) -> Self {
        let link_count = topology.link_count();
        let secondary = config.secondary_count();
        DeltaNet {
            topology,
            config,
            atoms: AtomMap::new(config.field_width),
            owner: Owner::new(),
            labels: Labels::with_links(link_count),
            rules: HashMap::new(),
            bound_refs: HashMap::new(),
            reclaimable: 0,
            sec_atoms: config.sec_widths[..secondary]
                .iter()
                .map(|&w| AtomMap::new(w))
                .collect(),
            sec_bound_refs: vec![HashMap::new(); secondary],
            sec_reclaimable: vec![0; secondary],
            compactions: 0,
            last_delta: DeltaGraph::new(),
            aggregate: None,
            pair_scratch: Vec::with_capacity(2),
            clip: None,
            monitor: config.monitor_violations.then(ViolationMonitor::new),
            sec_class_cache: None,
            mf_state: (config.monitor_violations && secondary > 0).then(MfClassState::new),
        }
    }

    /// Creates a checker with the default configuration (IPv4, per-update
    /// loop checking).
    pub fn with_topology(topology: Topology) -> Self {
        DeltaNet::new(topology, DeltaNetConfig::default())
    }

    /// Creates a *shard* engine: a checker that owns only the contiguous
    /// address range `clip` of the field space. Every rule applied to it is
    /// intersected with `clip` before the update core runs, so disjoint
    /// shards maintain disjoint atoms, owners, and label bits — the
    /// conflict-freedom [`crate::shard::ShardedDeltaNet`] relies on to apply
    /// shard groups concurrently.
    ///
    /// The clip bounds are seeded into the atom map and pinned in the
    /// garbage-collection bookkeeping, so [`DeltaNet::compact`] never merges
    /// across the shard boundary and [`DeltaNet::owned_atom_count`] stays
    /// well defined across compactions.
    ///
    /// # Panics
    ///
    /// Panics if `clip` is empty or extends beyond the configured field
    /// space.
    pub fn clipped(topology: Topology, config: DeltaNetConfig, clip: Interval) -> Self {
        let mut net = DeltaNet::new(topology, config);
        assert!(!clip.is_empty(), "empty shard range {clip}");
        assert!(
            clip.hi() <= net.atoms.max_bound(),
            "shard range {clip} outside field space [0 : {})",
            net.atoms.max_bound()
        );
        net.atoms.create_atoms(clip);
        *net.bound_refs.entry(clip.lo()).or_insert(0) += 1;
        *net.bound_refs.entry(clip.hi()).or_insert(0) += 1;
        net.clip = Some(clip);
        net
    }

    /// The address range this engine owns, when it is a shard of a
    /// [`crate::shard::ShardedDeltaNet`]; `None` for a stand-alone engine.
    pub fn clip(&self) -> Option<Interval> {
        self.clip
    }

    /// The interval of `rule` this engine is responsible for: the rule's
    /// interval intersected with the clip range, or the full interval for a
    /// stand-alone engine.
    fn clipped_interval(&self, rule: &Rule) -> Interval {
        match self.clip {
            Some(clip) => rule.interval().intersection(&clip),
            None => rule.interval(),
        }
    }

    /// The topology this checker verifies.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The atom map `M` of the primary field.
    pub fn atoms(&self) -> &AtomMap {
        &self.atoms
    }

    /// Whether this engine verifies a multi-field header space (at least
    /// one secondary field declared).
    pub fn is_multifield(&self) -> bool {
        !self.sec_atoms.is_empty()
    }

    /// The secondary-field atom lattices, in field order (empty for the
    /// single-field shape).
    pub fn secondary_atoms(&self) -> &[AtomMap] {
        &self.sec_atoms
    }

    /// The header space this engine verifies, primary field first.
    pub fn header_space(&self) -> HeaderSpace {
        self.config.header_space()
    }

    /// The borrowed state bundle the cross-field checks run on.
    fn mf_view(&self) -> MfView<'_> {
        MfView {
            topology: &self.topology,
            owner: &self.owner,
            atoms: &self.atoms,
            sec_atoms: &self.sec_atoms,
            rules: &self.rules,
        }
    }

    /// The edge labels — the paper's constant-time network-wide flow API
    /// (§3.3): the atoms currently forwarded along `link`.
    pub fn label(&self, link: LinkId) -> &crate::atomset::AtomSet {
        self.labels.get(link)
    }

    /// All edge labels.
    pub fn labels(&self) -> &Labels {
        &self.labels
    }

    /// The owner arena (read-only) — exposed for diagnostics and the bench
    /// memory accounting (spilled-cell counts, per-structure byte totals).
    pub fn owner(&self) -> &Owner {
        &self.owner
    }

    /// The delta-graph produced by the most recent update.
    pub fn last_delta(&self) -> &DeltaGraph {
        &self.last_delta
    }

    /// The live violation monitor, if monitoring is enabled.
    pub fn monitor(&self) -> Option<&ViolationMonitor> {
        self.monitor.as_ref()
    }

    /// Attaches a violation monitor to a running engine, seeding it from
    /// the current data plane with one full scan; every later update
    /// maintains it incrementally. Replaces any existing monitor. Engines
    /// created with [`DeltaNetConfig::monitor_violations`] start monitored
    /// without the scan.
    pub fn enable_monitor(&mut self) -> &ViolationMonitor {
        if self.is_multifield() {
            // One full per-class scan seeds both the ledger and — via its
            // class union — the monitor, so the two agree from the start.
            let state = self.build_mf_state();
            self.monitor = Some(ViolationMonitor::from_maps(
                state.union_loops(),
                state.union_holes(),
            ));
            self.mf_state = Some(state);
        } else {
            self.monitor = Some(self.fresh_monitor());
        }
        self.monitor.as_ref().expect("just attached")
    }

    /// A monitor seeded from the current data plane with one full scan,
    /// dispatching on the engine's header-space shape. Used to attach a
    /// monitor and by snapshot restore to verify a persisted monitor
    /// against the reconstructed plane.
    pub(crate) fn fresh_monitor(&self) -> ViolationMonitor {
        if self.is_multifield() {
            let classes = self.sec_class_list();
            let view = self.mf_view();
            ViolationMonitor::from_maps(
                multifield::mf_cycles(&view, &classes),
                multifield::mf_holes(&view, &classes),
            )
        } else {
            ViolationMonitor::from_state(&self.topology, &self.labels, &self.atoms)
        }
    }

    /// The secondary class list: the memoized enumeration when fresh, a
    /// from-scratch enumeration otherwise (read-only paths cannot refill
    /// the cache).
    fn sec_class_list(&self) -> Vec<SecClass> {
        match self.sec_class_cache.as_ref() {
            Some(classes) => classes.clone(),
            None => multifield::sec_classes(&self.sec_atoms),
        }
    }

    /// Refills the memoized secondary class list if it was invalidated.
    fn ensure_sec_classes(&mut self) {
        if self.sec_class_cache.is_none() {
            self.sec_class_cache = Some(multifield::sec_classes(&self.sec_atoms));
        }
    }

    /// Builds the per-class violation ledger with one full per-class scan
    /// — the multi-field analogue of [`ViolationMonitor::from_state`]'s
    /// seeding scan.
    fn build_mf_state(&self) -> MfClassState {
        let classes = self.sec_class_list();
        let view = self.mf_view();
        let atoms: Vec<AtomId> = view.atoms.iter().map(|(a, _)| a).collect();
        let mut scratch = MfScratch::new(view.topology.node_count());
        let (loops, holes) = multifield::mf_repair_slices(&view, &classes, &atoms, &mut scratch);
        MfClassState::from_slices(&classes, loops, holes)
    }

    /// The violations currently active in the data plane, rendered exactly
    /// like [`DeltaNet::check_all_loops`] followed by
    /// [`DeltaNet::check_all_blackholes`] — but read from the maintained
    /// state instead of rescanning the plane. `None` when monitoring is
    /// off.
    pub fn active_violations(&self) -> Option<Vec<netmodel::checker::InvariantViolation>> {
        self.monitor
            .as_ref()
            .map(|monitor| monitor.active_violations(&self.atoms))
    }

    /// The rule with the given id, if currently installed.
    pub fn rule(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(&id)
    }

    /// Iterates all currently installed rules (unspecified order).
    pub fn rules(&self) -> impl Iterator<Item = &Rule> + '_ {
        self.rules.values()
    }

    /// Starts aggregating delta-graphs: until [`DeltaNet::take_aggregate`]
    /// is called, every update's delta-graph is merged into one (§3.3:
    /// "multiple rule updates may be aggregated into a delta-graph").
    pub fn begin_aggregate(&mut self) {
        self.aggregate = Some(DeltaGraph::new());
    }

    /// Whether an aggregation window opened by [`DeltaNet::begin_aggregate`]
    /// is currently in progress. The violation monitor is repaired per
    /// update even inside a window, so state captured mid-window is still
    /// monitor-consistent — but automatic compaction is deferred, so
    /// callers scheduling maintenance (like checkpoint snapshots) may
    /// prefer window boundaries.
    pub fn is_aggregating(&self) -> bool {
        self.aggregate.is_some()
    }

    /// Stops aggregating and returns the combined delta-graph, canonicalized
    /// to its net effect ([`DeltaGraph::canonicalize`]: same-window
    /// insert+remove pairs cancel). Any automatic compaction deferred while
    /// the aggregation was in progress runs now, so a threshold crossed
    /// mid-aggregation is not silently dropped.
    pub fn take_aggregate(&mut self) -> DeltaGraph {
        let mut aggregate = self.aggregate.take().unwrap_or_default();
        aggregate.canonicalize();
        self.maybe_auto_compact();
        aggregate
    }

    /// Runs a compaction pass if the configured threshold is crossed and no
    /// aggregation is in progress (the aggregate holds atom ids a pass
    /// would invalidate).
    fn maybe_auto_compact(&mut self) {
        if let Some(threshold) = self.config.compact_threshold {
            if self.reclaimable_bounds() >= threshold.max(1) && self.aggregate.is_none() {
                self.compact();
            }
        }
    }

    /// Algorithm 1: inserts `rule` into its switch's forwarding table,
    /// updating atoms, owners, and edge labels, and returns the per-update
    /// report (affected atoms, changed links, any loops found).
    ///
    /// # Panics
    ///
    /// Panics if a rule with the same id is already installed or the rule
    /// references a link outside the topology. Use
    /// [`DeltaNet::try_insert_rule`] to get an error instead.
    pub fn insert_rule(&mut self, rule: Rule) -> UpdateReport {
        self.try_insert_rule(rule).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`DeltaNet::insert_rule`]: a duplicate rule id, an
    /// out-of-topology link, or (on a [`DeltaNet::clipped`] engine) a rule
    /// that does not intersect the shard range is reported as an
    /// [`UpdateError`] without touching the engine state.
    pub fn try_insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, UpdateError> {
        if self.rules.contains_key(&rule.id) {
            return Err(UpdateError::DuplicateRule(rule.id));
        }
        if rule.link.index() >= self.topology.link_count() {
            return Err(UpdateError::UnknownLink {
                rule: rule.id,
                link: rule.link,
            });
        }
        self.config.validate_rule_fields(&rule)?;
        debug_assert_eq!(
            self.topology.link(rule.link).src,
            rule.source,
            "rule source does not match its link"
        );

        let interval = self.clipped_interval(&rule);
        if interval.is_empty() {
            // Only reachable on a clipped engine: rule intervals are never
            // empty, so an empty clipped interval means no intersection.
            return Err(UpdateError::OutsideShard {
                rule: rule.id,
                range: self.clip.expect("empty interval implies a clip"),
            });
        }
        Ok(self.apply_insert(rule, interval))
    }

    /// The per-update core of Algorithm 1, applied to an explicit (possibly
    /// shard-clipped) interval. This is the reusable unit one shard of a
    /// [`crate::shard::ShardedDeltaNet`] executes; callers have already
    /// validated the rule and computed the interval this engine owns.
    fn apply_insert(&mut self, rule: Rule, interval: Interval) -> UpdateReport {
        let mut delta = DeltaGraph::new();

        // Garbage-collection bookkeeping (§3.2.2): a bound that is in `M`
        // but referenced by no live rule was counted reclaimable; this rule
        // revives it. Checked before `create_atoms_into` mutates `M`.
        for bound in [interval.lo(), interval.hi()] {
            if bound != 0
                && bound != self.atoms.max_bound()
                && !self.bound_refs.contains_key(&bound)
                && self.atoms.contains_bound(bound)
            {
                self.reclaimable -= 1;
            }
        }

        // Lines 2–9: create atoms and propagate splits to owners and labels.
        // The delta-pair buffer is engine-owned scratch; `labels` and `owner`
        // are disjoint fields, so the split loop updates labels in place
        // while iterating the new atom's sources — no `to_label` staging
        // buffer and no per-update allocation.
        let mut delta_pairs = std::mem::take(&mut self.pair_scratch);
        self.atoms.create_atoms_into(interval, &mut delta_pairs);
        for pair in &delta_pairs {
            delta.split(*pair);
            self.owner.clone_atom(pair.old, pair.new);
            // Every switch that had an owner for the old atom forwards the
            // new atom along the same link.
            for (_source, rules) in self.owner.sources(pair.new) {
                if let Some(hp) = rules.highest() {
                    self.labels.insert(hp.link, pair.new);
                }
            }
        }
        delta_pairs.clear();
        self.pair_scratch = delta_pairs;

        // Lines 10–23: reassign ownership of every atom in ⟦interval(r)⟧.
        // `iter_atoms_of` borrows only `self.atoms`, so the loop body is free
        // to mutate `owner`, `labels` and `delta` without materializing the
        // atom list. A single `get_mut` per atom serves both the incumbent
        // read and the insert (the incumbent is `Copy`).
        for alpha in self.atoms.iter_atoms_of(interval) {
            let rules = self.owner.get_mut(alpha, rule.source);
            let incumbent = rules.highest();
            rules.insert(rule.priority, rule.id, rule.link);
            // Equal priorities tie-break by rule id — the same order
            // `RuleStore::highest()` uses, so the label update always agrees
            // with later `highest()` reads (splits, removals, queries).
            let wins = incumbent.map_or(true, |r_prime| {
                (r_prime.priority, r_prime.id) < (rule.priority, rule.id)
            });
            if wins {
                match incumbent {
                    // Ownership moved but the forwarding link did not: the
                    // label is unchanged, so the delta-graph must record
                    // nothing (a spurious entry would inflate
                    // `affected_classes` and re-seed the per-update checks).
                    Some(r_prime) if r_prime.link == rule.link => {}
                    Some(r_prime) => {
                        self.labels.insert(rule.link, alpha);
                        delta.add(rule.link, alpha);
                        self.labels.remove(r_prime.link, alpha);
                        delta.remove(r_prime.link, alpha);
                    }
                    None => {
                        self.labels.insert(rule.link, alpha);
                        delta.add(rule.link, alpha);
                    }
                }
            }
        }

        // Secondary lattices: per constrained field, the same GC-revive +
        // atom-split + bound bookkeeping as above — minus owner and label
        // propagation, which secondary atoms do not carry.
        for (field, &iv) in rule.sec.intervals().iter().enumerate() {
            for bound in [iv.lo(), iv.hi()] {
                if bound != 0
                    && bound != self.sec_atoms[field].max_bound()
                    && !self.sec_bound_refs[field].contains_key(&bound)
                    && self.sec_atoms[field].contains_bound(bound)
                {
                    self.sec_reclaimable[field] -= 1;
                }
            }
            for pair in self.sec_atoms[field].create_atoms(iv) {
                delta.sec_split(field as u8, pair);
            }
            *self.sec_bound_refs[field].entry(iv.lo()).or_insert(0) += 1;
            *self.sec_bound_refs[field].entry(iv.hi()).or_insert(0) += 1;
        }

        // Bookkeeping.
        *self.bound_refs.entry(interval.lo()).or_insert(0) += 1;
        *self.bound_refs.entry(interval.hi()).or_insert(0) += 1;
        self.rules.insert(rule.id, rule);

        self.finish_update(delta, Some((rule, interval)), true)
    }

    /// Algorithm 2: removes the rule with id `id` and returns the per-update
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if no rule with that id is installed. Use
    /// [`DeltaNet::try_remove_rule`] to get an error instead.
    pub fn remove_rule(&mut self, id: RuleId) -> UpdateReport {
        self.try_remove_rule(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`DeltaNet::remove_rule`]: an unknown rule id is
    /// reported as an [`UpdateError`] without touching the engine state, so
    /// trace replay survives malformed input (double withdrawals, traces
    /// referencing rules that were never installed).
    pub fn try_remove_rule(&mut self, id: RuleId) -> Result<UpdateReport, UpdateError> {
        let rule = match self.rules.remove(&id) {
            Some(rule) => rule,
            None => return Err(UpdateError::UnknownRule(id)),
        };
        // The same deterministic clipping as the insert path, so the removal
        // touches exactly the bounds and atoms the insertion created.
        let interval = self.clipped_interval(&rule);
        let report = self.apply_remove(rule, interval);
        self.maybe_auto_compact();
        Ok(report)
    }

    /// The per-update core of Algorithm 2, the mirror of
    /// [`DeltaNet::apply_insert`]: the rule has already been detached from
    /// the rule table and its (possibly shard-clipped) interval computed.
    fn apply_remove(&mut self, rule: Rule, interval: Interval) -> UpdateReport {
        let mut delta = DeltaGraph::new();

        // One owner lookup per atom: the post-removal successor is read from
        // the same mutable borrow instead of a second `get_mut`.
        for alpha in self.atoms.iter_atoms_of(interval) {
            let rules = self.owner.get_mut(alpha, rule.source);
            let owner_before = rules.highest();
            let removed = rules.remove(rule.priority, rule.id);
            debug_assert!(removed, "owner store out of sync for {:?}", rule.id);
            let next_owner = rules.highest();
            if owner_before.map(|r| r.id) == Some(rule.id) {
                match next_owner {
                    // The successor forwards on the same link: label and
                    // delta-graph are unchanged (mirror of the insert path).
                    Some(next) if next.link == rule.link => {}
                    Some(next) => {
                        self.labels.remove(rule.link, alpha);
                        delta.remove(rule.link, alpha);
                        self.labels.insert(next.link, alpha);
                        delta.add(next.link, alpha);
                    }
                    None => {
                        self.labels.remove(rule.link, alpha);
                        delta.remove(rule.link, alpha);
                    }
                }
            }
        }

        // Garbage-collection bookkeeping (§3.2.2 remark): count bounds that
        // no live rule uses any longer; they are what a compaction pass
        // merges away.
        for bound in [interval.lo(), interval.hi()] {
            if let Some(count) = self.bound_refs.get_mut(&bound) {
                *count -= 1;
                if *count == 0 {
                    self.bound_refs.remove(&bound);
                    if bound != 0 && bound != self.atoms.max_bound() {
                        self.reclaimable += 1;
                    }
                }
            }
        }

        // Mirror bookkeeping for the secondary lattices.
        for (field, &iv) in rule.sec.intervals().iter().enumerate() {
            for bound in [iv.lo(), iv.hi()] {
                if let Some(count) = self.sec_bound_refs[field].get_mut(&bound) {
                    *count -= 1;
                    if *count == 0 {
                        self.sec_bound_refs[field].remove(&bound);
                        if bound != 0 && bound != self.sec_atoms[field].max_bound() {
                            self.sec_reclaimable[field] += 1;
                        }
                    }
                }
            }
        }

        self.finish_update(delta, Some((rule, interval)), false)
    }

    /// The compaction pass of the §3.2.2 garbage-collection remark — the
    /// operation the paper leaves as future work. Every interval bound no
    /// live rule references is removed from `M`, merging its upper
    /// neighbouring atom into the lower one (the two atoms are
    /// indistinguishable to every installed rule, so all owner cells and
    /// labels already agree); the surviving atoms are then renumbered
    /// densely so the id-indexed structures (owner arena, label bitsets,
    /// interval table) shrink back to the live atom count.
    ///
    /// After the pass, [`DeltaNet::reclaimable_bounds`] is `0` and
    /// [`DeltaNet::allocated_atoms`] equals [`DeltaNet::atom_count`].
    ///
    /// Atom ids are *not stable* across a compaction: ids obtained before
    /// the pass (label snapshots, delta-graphs) must not be used afterwards.
    /// [`DeltaNet::last_delta`] is therefore reset to empty. An in-progress
    /// aggregate (automatic compaction is deferred while one is open, so
    /// only an explicit call reaches this case) is *remapped* through the
    /// pass's renumbering table instead of being discarded
    /// ([`DeltaGraph::remap`]): the window's surviving label changes stay
    /// in the aggregate under their new ids, so a consumer of
    /// [`DeltaNet::take_aggregate`] — e.g. an external violation monitor —
    /// still sees every change the window made.
    pub fn compact(&mut self) -> CompactReport {
        let allocated_before = self.atoms.allocated_atoms();
        let bytes_before = self.memory_estimate();

        // Phase 1 — merge: drop every unreferenced interior bound. The
        // freed (upper) atom rides exactly one link per owning source — its
        // cell's highest rule's link — and the kept atom is already on those
        // links, because no live rule separates the two atoms.
        let dead: Vec<Bound> = self
            .atoms
            .interior_bounds()
            .filter(|b| !self.bound_refs.contains_key(b))
            .collect();
        for &bound in &dead {
            let merge = self.atoms.remove_bound(bound).expect("dead bound is in M");
            for (_source, rules) in self.owner.sources(merge.freed) {
                if let Some(hp) = rules.highest() {
                    self.labels.remove(hp.link, merge.freed);
                }
            }
            self.owner.clear_atom(merge.freed);
        }
        self.reclaimable = 0;

        // Phase 2 — renumber: dense ids again, every structure remapped in
        // lock-step. The monitor's violation sets are atom-id-keyed state
        // like the labels, so they remap too (reclaimed ids drop out; their
        // label-identical survivors keep every violation alive).
        let remap = self.atoms.renumber();
        self.owner.remap(&remap, self.atoms.atom_count());
        self.labels.remap(&remap);
        if let Some(monitor) = self.monitor.as_mut() {
            monitor.remap(&remap);
        }

        // Delta-graph state recorded before the pass refers to stale ids:
        // the last delta is reset (it describes a completed update), but an
        // open aggregate is rewritten in place — discarding it would lose
        // the window's changes for whoever takes it.
        self.last_delta = DeltaGraph::new();
        if let Some(agg) = self.aggregate.as_mut() {
            agg.remap(&remap);
        }

        // Secondary lattices: the same merge + renumber per field.
        // Secondary atom ids key no cross-structure state (no owner cells,
        // labels, or monitor sets — cross-field state keys off class
        // *representatives*, the lattice atoms' low bounds), so the
        // per-field renumbering tables are discarded. The memoized class
        // list does go stale here, and merged-away classes must leave the
        // per-class ledger.
        let mut sec_merged = 0;
        for field in 0..self.sec_atoms.len() {
            let dead: Vec<Bound> = self.sec_atoms[field]
                .interior_bounds()
                .filter(|b| !self.sec_bound_refs[field].contains_key(b))
                .collect();
            for &bound in &dead {
                self.sec_atoms[field]
                    .remove_bound(bound)
                    .expect("dead bound is in the secondary lattice");
            }
            sec_merged += dead.len();
            self.sec_reclaimable[field] = 0;
            self.sec_atoms[field].renumber();
        }
        self.sec_class_cache = None;
        if self.mf_state.is_some() {
            // Surviving classes keep their representatives (a merge never
            // moves a kept atom's low bound), so retaining the still-valid
            // keys and remapping the primary atoms keeps the ledger exact;
            // a dropped class was rule-indistinguishable from its kept
            // neighbour, so the class union — what the monitor tracks — is
            // invariant, mirroring `monitor.remap` above.
            let valid: std::collections::BTreeSet<SecClass> =
                multifield::sec_classes(&self.sec_atoms)
                    .into_iter()
                    .collect();
            if let Some(state) = self.mf_state.as_mut() {
                state.retain_classes(&valid);
                state.remap(&remap);
            }
        }

        self.compactions += 1;
        CompactReport {
            merged_atoms: dead.len() + sec_merged,
            allocated_before,
            allocated_after: self.atoms.allocated_atoms(),
            bytes_before,
            bytes_after: self.memory_estimate(),
        }
    }

    /// Shared tail of both algorithms: run the configured per-update checks
    /// on the delta-graph, feed the monitor, remember the delta, and build
    /// the report. `changed` carries the inserted/removed rule and the
    /// (possibly shard-clipped) interval the update ran on — the
    /// multi-field seeded check needs the rule itself, not just its id.
    fn finish_update(
        &mut self,
        delta: DeltaGraph,
        changed: Option<(Rule, Interval)>,
        was_insert: bool,
    ) -> UpdateReport {
        if self.is_multifield() && !delta.sec_splits.is_empty() {
            // New secondary bounds appeared: the memoized class list is
            // stale. Every cross-field path below re-enumerates on demand.
            self.sec_class_cache = None;
        }
        let violations = if !self.config.check_loops_per_update {
            Vec::new()
        } else if self.is_multifield() {
            // The label-seeded walk is unsound under cross-field
            // intersection (labels are a primary-field projection, and a
            // secondary-constrained update can close a loop without adding
            // a single label bit). Seed from the one node whose forwarding
            // the update changed instead — any new or dissolved loop must
            // route through it, on atoms of the update's interval and
            // secondary classes the rule matches.
            match &changed {
                Some((rule, interval)) => {
                    self.ensure_sec_classes();
                    let view = self.mf_view();
                    let classes = self.sec_class_cache.as_deref().expect("just refilled");
                    let cycles = multifield::find_loops_for_rule(&view, classes, rule, *interval);
                    loops::into_violations(cycles, &self.atoms)
                }
                None => Vec::new(),
            }
        } else {
            loops::find_loops_from_seeds(&self.topology, &self.labels, &self.atoms, &delta.added)
        };
        if self.monitor.is_some() {
            if self.is_multifield() {
                self.repair_mf_monitor(&delta, changed.as_ref());
            } else if let Some(monitor) = self.monitor.as_mut() {
                monitor.apply_update(&self.topology, &self.labels, &delta);
            }
        }
        let report = UpdateReport {
            rule_id: changed.map(|(rule, _)| rule.id),
            was_insert,
            affected_classes: delta.affected_atom_count(),
            changed_links: delta.changed_links(),
            violations,
        };
        if let Some(agg) = self.aggregate.as_mut() {
            agg.merge(&delta);
        }
        self.last_delta = delta;
        report
    }

    /// Repairs the multi-field violation ledger and monitor after one
    /// update by re-walking only the `(primary atom, secondary class)`
    /// slices the update can have touched — the cross-field analogue of
    /// the single-field delta-graph repair, replacing the former wholesale
    /// `mf_cycles` + `mf_holes` rescan.
    ///
    /// The touched slices form up to three rectangles:
    ///
    /// 1. the update's (clip-adjusted) interval's atoms × the classes the
    ///    rule's `SecondaryMatch` covers — the only slices whose forwarding
    ///    function the ownership change can alter (it changes exactly at
    ///    `rule.source`, and only where the rule both covers the atom and
    ///    matches the class) — narrowed further per atom by
    ///    [`multifield::decision_changed`] to the classes whose owner-cell
    ///    winner at the source actually changed;
    /// 2. primary atoms created by splits × *all* classes — new atoms have
    ///    no tracked state and are recomputed, never inherited (and the
    ///    high-bound split atom lies outside the interval, so rectangle 1
    ///    does not cover it);
    /// 3. every atom × classes created by secondary splits — same rule,
    ///    cross-field: a new class's slices are recomputed from scratch.
    ///
    /// Every slice not in these rectangles has an unchanged forwarding
    /// function, so its per-class ledger entries remain exact; the
    /// re-walked rectangles compute the full scan's exact per-slice
    /// predicates (via the fused [`multifield::mf_repair_slices`]), so the
    /// repaired ledger — and the class union handed to
    /// [`ViolationMonitor::replace_state`] for identity-level events —
    /// stays bit-identical to a from-scratch rescan.
    fn repair_mf_monitor(&mut self, delta: &DeltaGraph, changed: Option<&(Rule, Interval)>) {
        let (Some((rule, interval)), true) = (changed, self.mf_state.is_some()) else {
            // No per-rule footprint to scope by, or no ledger yet (the
            // first monitored update after a snapshot restore): one full
            // per-class rebuild — the cost of exactly one legacy rescan.
            self.rebuild_mf_monitor();
            return;
        };
        self.ensure_sec_classes();
        // Disjoint-field borrows: the view and class list stay immutable
        // while the ledger (a separate field) is repaired in place.
        let view = MfView {
            topology: &self.topology,
            owner: &self.owner,
            atoms: &self.atoms,
            sec_atoms: &self.sec_atoms,
            rules: &self.rules,
        };
        let classes: &[SecClass] = self.sec_class_cache.as_deref().expect("just refilled");
        let state = self.mf_state.as_mut().expect("checked above");
        let mut scratch = MfScratch::new(view.topology.node_count());
        let mut apply_rect = |atoms: &[AtomId], cls: &[SecClass], scratch: &mut MfScratch| {
            if atoms.is_empty() || cls.is_empty() {
                return;
            }
            let (loops, holes) = multifield::mf_repair_slices(&view, cls, atoms, scratch);
            let atom_set: crate::atomset::AtomSet = atoms.iter().copied().collect();
            state.apply_slices(cls, &atom_set, loops, holes);
        };

        // Rectangle 1: interval atoms × rule-matched classes, narrowed per
        // atom to the classes whose forwarding decision actually changed.
        // The rule only participates in the owner cells at its own source,
        // so one cell probe per (atom, class) — shadowed inserts and
        // removals of shadowed or link-equivalent rules — rules out most of
        // the rectangle without walking it.
        let interval_atoms: Vec<AtomId> = view.atoms.iter_atoms_of(*interval).collect();
        let mut changed_classes: Vec<SecClass> = Vec::with_capacity(classes.len());
        for &atom in &interval_atoms {
            changed_classes.clear();
            changed_classes.extend(
                classes
                    .iter()
                    .filter(|class| multifield::decision_changed(&view, rule, atom, class))
                    .copied(),
            );
            apply_rect(&[atom], &changed_classes, &mut scratch);
        }

        // Rectangle 2: primary split atoms × all classes.
        if !delta.splits.is_empty() {
            let mut split_atoms: Vec<AtomId> = delta.splits.iter().map(|pair| pair.new).collect();
            split_atoms.sort_unstable();
            split_atoms.dedup();
            apply_rect(&split_atoms, classes, &mut scratch);
        }

        // Rectangle 3: all atoms × new classes. A class is new iff some
        // field's representative is the low bound of a secondary atom a
        // recorded split created (further same-update splits of that atom
        // are recorded too, so every new representative is found).
        if !delta.sec_splits.is_empty() {
            let mut reps: Vec<(usize, Bound)> = delta
                .sec_splits
                .iter()
                .map(|&(field, pair)| {
                    let field = field as usize;
                    (field, view.sec_atoms[field].atom_interval(pair.new).lo())
                })
                .collect();
            reps.sort_unstable();
            reps.dedup();
            let fresh: Vec<SecClass> = classes
                .iter()
                .filter(|class| reps.iter().any(|&(field, bound)| class[field] == bound))
                .copied()
                .collect();
            if !fresh.is_empty() {
                let all_atoms: Vec<AtomId> = view.atoms.iter().map(|(a, _)| a).collect();
                apply_rect(&all_atoms, &fresh, &mut scratch);
            }
        }

        let loops = state.union_loops();
        let holes = state.union_holes();
        if let Some(monitor) = self.monitor.as_mut() {
            monitor.replace_state(loops, holes);
        }
    }

    /// Rebuilds the per-class ledger with one full per-class scan and
    /// feeds its union to the monitor (identity-level event diff
    /// preserved, exactly like the scoped path).
    fn rebuild_mf_monitor(&mut self) {
        let state = self.build_mf_state();
        let loops = state.union_loops();
        let holes = state.union_holes();
        self.mf_state = Some(state);
        if let Some(monitor) = self.monitor.as_mut() {
            monitor.replace_state(loops, holes);
        }
    }

    /// Number of atoms (packet classes) currently represented.
    pub fn atom_count(&self) -> usize {
        self.atoms.atom_count()
    }

    /// Number of atoms inside the range this engine owns: for a shard, the
    /// atoms of its clip range (the seeded clip bounds are always keys of
    /// `M`, so this is exact); for a stand-alone engine, simply
    /// [`DeltaNet::atom_count`]. Summing this over the shards of a
    /// [`crate::shard::ShardedDeltaNet`] counts every atom exactly once.
    pub fn owned_atom_count(&self) -> usize {
        match self.clip {
            Some(clip) => self.atoms.atoms_of_count(clip),
            None => self.atom_count(),
        }
    }

    /// Number of interval bounds no longer referenced by any live rule —
    /// atoms that a [`DeltaNet::compact`] pass merges away (the "garbage
    /// collection" remark of §3.2.2), summed across the primary and all
    /// secondary lattices. Maintained incrementally, so reading it — and
    /// the automatic compaction trigger built on it — is O(1).
    pub fn reclaimable_bounds(&self) -> usize {
        self.reclaimable + self.sec_reclaimable.iter().sum::<usize>()
    }

    /// The primary-lattice share of [`DeltaNet::reclaimable_bounds`] —
    /// persisted separately from the per-field secondary counters.
    pub(crate) fn primary_reclaimable(&self) -> usize {
        self.reclaimable
    }

    /// Size of the atom-id table: the high-water mark of ids since the last
    /// compaction. The gap to [`DeltaNet::atom_count`] plus
    /// [`DeltaNet::reclaimable_bounds`] is the churn waste a compaction
    /// reclaims.
    pub fn allocated_atoms(&self) -> usize {
        self.atoms.allocated_atoms()
    }

    /// Number of compaction passes run so far (explicit and automatic).
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Heap bytes actually addressed by live state: like
    /// [`DeltaNet::memory_estimate`] but counting entries rather than
    /// allocated capacity, so churn-induced over-allocation is visible as
    /// the gap between the two. A function of the logical state alone,
    /// which makes it one of the fields the persistence round-trip tests
    /// compare exactly between a live engine and its snapshot restore —
    /// derived state (the violation monitor, the memoized class list, the
    /// per-class ledger) is therefore excluded here and counted in
    /// [`DeltaNet::memory_estimate`] instead.
    pub fn live_bytes(&self) -> usize {
        self.atoms.live_bytes()
            + self.owner.live_bytes()
            + self.labels.live_bytes()
            + self.rules.len() * (std::mem::size_of::<RuleId>() + std::mem::size_of::<Rule>() + 8)
            + self.bound_refs.len() * (std::mem::size_of::<Bound>() + 4 + 8)
            + self
                .sec_atoms
                .iter()
                .map(AtomMap::live_bytes)
                .sum::<usize>()
            + self
                .sec_bound_refs
                .iter()
                .map(|refs| refs.len() * (std::mem::size_of::<Bound>() + 4 + 8))
                .sum::<usize>()
    }

    /// Checks the entire data plane for forwarding loops (not just the last
    /// delta-graph). Used by offline audits and the differential tests. On
    /// a multi-field engine this dispatches to the cross-field scan of
    /// [`crate::multifield`]; violations still report primary-field packet
    /// intervals (the union over all secondary classes that loop).
    pub fn check_all_loops(&self) -> Vec<netmodel::checker::InvariantViolation> {
        if self.is_multifield() {
            let classes = self.sec_class_list();
            let cycles = multifield::mf_cycles(&self.mf_view(), &classes);
            loops::into_violations(cycles, &self.atoms)
        } else {
            loops::find_all_loops(&self.topology, &self.labels, &self.atoms)
        }
    }

    /// Checks the entire data plane for blackholes: traffic arriving at a
    /// switch that has no rule (forward or drop) for it. The engine-level
    /// entry point for [`crate::blackholes::find_blackholes`], surfaced
    /// end-to-end through `deltanet replay --check blackholes`. Dispatches
    /// like [`DeltaNet::check_all_loops`] on a multi-field engine.
    pub fn check_all_blackholes(&self) -> Vec<netmodel::checker::InvariantViolation> {
        if self.is_multifield() {
            let classes = self.sec_class_list();
            let holes = multifield::mf_holes(&self.mf_view(), &classes);
            crate::blackholes::render_blackholes(holes.iter().map(|(n, s)| (*n, s)), &self.atoms)
        } else {
            crate::blackholes::find_blackholes(&self.topology, &self.labels, &self.atoms)
        }
    }

    /// The successor of `node` for an `atom`-packet, resolved through the
    /// owner structure (`O(log M)` per hop, independent of out-degree).
    /// Drop links are reported as-is; callers decide how to treat them.
    pub fn successor_via_owner(
        &self,
        node: netmodel::topology::NodeId,
        atom: AtomId,
    ) -> Option<LinkId> {
        self.owner
            .get(atom, node)
            .and_then(|bst| bst.highest())
            .map(|r| r.link)
    }

    /// The what-if link-failure query (§4.3.2): which packets (atoms) are
    /// using `link`, and which other links carry any of those packets.
    pub fn link_failure_impact(&self, link: LinkId, check_loops: bool) -> WhatIfReport {
        let affected = self.labels.get(link).clone();
        let affected_packets = normalize(
            affected
                .iter()
                .map(|a| self.atoms.atom_interval(a))
                .collect::<Vec<_>>(),
        );
        let mut affected_links: Vec<LinkId> = Vec::new();
        for (other, label) in self.labels.iter() {
            if other != link && label.intersects(&affected) {
                affected_links.push(other);
            }
        }
        let violations = if check_loops {
            // On dense topologies (high out-degree) resolving the next hop
            // through the owner BSTs beats scanning a node's out-links per
            // hop; on sparse ones the label scan is cheaper.
            let avg_out_degree = self.topology.link_count() / self.topology.node_count().max(1);
            if avg_out_degree > 16 {
                loops::find_loops_for_atoms_via(
                    &self.topology,
                    &self.labels,
                    &self.atoms,
                    &affected,
                    |node, atom| self.successor_via_owner(node, atom),
                )
            } else {
                loops::find_loops_for_atoms(&self.topology, &self.labels, &self.atoms, &affected)
            }
        } else {
            Vec::new()
        };
        WhatIfReport {
            link: Some(link),
            affected_classes: affected.len(),
            affected_packets,
            affected_links,
            violations,
        }
    }

    /// Estimated heap memory used by the engine's internal state.
    pub fn memory_estimate(&self) -> usize {
        self.atoms.memory_bytes()
            + self.owner.memory_bytes()
            + self.labels.memory_bytes()
            + self.rules.capacity()
                * (std::mem::size_of::<RuleId>() + std::mem::size_of::<Rule>() + 8)
            + self.bound_refs.capacity() * (std::mem::size_of::<Bound>() + 4 + 8)
            + self
                .sec_atoms
                .iter()
                .map(AtomMap::memory_bytes)
                .sum::<usize>()
            + self
                .sec_bound_refs
                .iter()
                .map(|refs| refs.capacity() * (std::mem::size_of::<Bound>() + 4 + 8))
                .sum::<usize>()
            + self.sec_class_cache.as_ref().map_or(0, |classes| {
                classes.capacity() * std::mem::size_of::<SecClass>()
            })
            + self.mf_state.as_ref().map_or(0, MfClassState::memory_bytes)
    }

    /// This engine's configuration.
    pub fn config(&self) -> DeltaNetConfig {
        self.config
    }

    /// The bound reference counts of the §3.2.2 garbage-collection
    /// bookkeeping (snapshot export).
    pub(crate) fn bound_refs(&self) -> &HashMap<Bound, u32> {
        &self.bound_refs
    }

    /// Per-secondary-field bound reference counts (snapshot export).
    pub(crate) fn sec_bound_refs(&self) -> &[HashMap<Bound, u32>] {
        &self.sec_bound_refs
    }

    /// Per-secondary-field reclaimable-bound counters (snapshot export).
    pub(crate) fn sec_reclaimable(&self) -> &[usize] {
        &self.sec_reclaimable
    }

    /// Rebuilds an engine from snapshot parts. The parts must come from a
    /// consistent export of one engine: `bound_refs` already contains the
    /// clip pins of a shard (so this constructor must *not* re-seed them the
    /// way [`DeltaNet::clipped`] does), and `reclaimable`/`compactions`
    /// carry the exported counters verbatim.
    pub(crate) fn from_restored(parts: RestoredParts) -> DeltaNet {
        DeltaNet {
            topology: parts.topology,
            config: parts.config,
            atoms: parts.atoms,
            owner: parts.owner,
            labels: parts.labels,
            rules: parts.rules,
            bound_refs: parts.bound_refs,
            reclaimable: parts.reclaimable,
            sec_atoms: parts.sec_atoms,
            sec_bound_refs: parts.sec_bound_refs,
            sec_reclaimable: parts.sec_reclaimable,
            compactions: parts.compactions,
            last_delta: DeltaGraph::new(),
            aggregate: None,
            pair_scratch: Vec::with_capacity(2),
            clip: parts.clip,
            monitor: parts.monitor,
            sec_class_cache: None,
            // The per-class ledger is derived state a snapshot does not
            // carry; the first monitored multi-field update rebuilds it.
            mf_state: None,
        }
    }
}

/// The deserialized pieces of one engine, handed to
/// [`DeltaNet::from_restored`] by the snapshot restore path
/// ([`crate::persist`]). Transient per-update state (last delta-graph, open
/// aggregation window, scratch buffers) is intentionally absent: a snapshot
/// is only taken between updates, where that state is empty.
pub(crate) struct RestoredParts {
    pub topology: Topology,
    pub config: DeltaNetConfig,
    pub clip: Option<Interval>,
    pub atoms: AtomMap,
    pub owner: Owner,
    pub labels: Labels,
    pub rules: HashMap<RuleId, Rule>,
    pub bound_refs: HashMap<Bound, u32>,
    pub reclaimable: usize,
    pub sec_atoms: Vec<AtomMap>,
    pub sec_bound_refs: Vec<HashMap<Bound, u32>>,
    pub sec_reclaimable: Vec<usize>,
    pub compactions: usize,
    pub monitor: Option<ViolationMonitor>,
}

impl Checker for DeltaNet {
    fn name(&self) -> &'static str {
        "delta-net"
    }

    fn apply(&mut self, op: &Op) -> UpdateReport {
        match op {
            Op::Insert(rule) => self.insert_rule(*rule),
            Op::Remove(id) => self.remove_rule(*id),
        }
    }

    fn try_apply(&mut self, op: &Op) -> Result<UpdateReport, UpdateError> {
        match op {
            Op::Insert(rule) => self.try_insert_rule(*rule),
            Op::Remove(id) => self.try_remove_rule(*id),
        }
    }

    fn what_if_link_failure(&self, link: LinkId, check_loops: bool) -> WhatIfReport {
        self.link_failure_impact(link, check_loops)
    }

    fn rule_count(&self) -> usize {
        self.rules.len()
    }

    fn class_count(&self) -> usize {
        self.atom_count()
    }

    fn memory_bytes(&self) -> usize {
        self.memory_estimate()
    }

    fn active_violations(&self) -> Option<Vec<netmodel::checker::InvariantViolation>> {
        DeltaNet::active_violations(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::interval::Interval;
    use netmodel::ip::IpPrefix;
    use netmodel::rule::Action;
    use netmodel::topology::NodeId;

    fn prefix(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    /// The four-switch network of §2.1 (Figures 1, 2 and 4).
    struct PaperExample {
        net: DeltaNet,
        s: Vec<NodeId>,
        l12: LinkId,
        l23: LinkId,
        l34: LinkId,
        l14: LinkId,
    }

    fn paper_example() -> PaperExample {
        let mut topo = Topology::new();
        let s = topo.add_nodes("s", 5); // s[0] unused so names line up with s1..s4
        let l12 = topo.add_link(s[1], s[2]);
        let l23 = topo.add_link(s[2], s[3]);
        let l34 = topo.add_link(s[3], s[4]);
        let l14 = topo.add_link(s[1], s[4]);
        let net = DeltaNet::with_topology(topo);
        PaperExample {
            net,
            s,
            l12,
            l23,
            l34,
            l14,
        }
    }

    /// Rules in the spirit of Figure 2: overlapping prefixes on s1, s2, s3,
    /// plus the higher-priority r4 inserted on s1 towards s4.
    fn figure2_rules(ex: &PaperExample) -> (Rule, Rule, Rule, Rule) {
        // r1 on s1 via l12, matches [0:16)
        // r2 on s2 via l23, matches [8:12)
        // r3 on s3 via l34, matches [8:16)
        // r4 on s1 via l14, matches [8:16), higher priority than r1.
        let r1 = Rule::forward(RuleId(1), IpPrefix::new(0, 28, 32), 10, ex.s[1], ex.l12);
        let r2 = Rule::forward(RuleId(2), IpPrefix::new(8, 30, 32), 10, ex.s[2], ex.l23);
        let r3 = Rule::forward(RuleId(3), IpPrefix::new(8, 29, 32), 10, ex.s[3], ex.l34);
        let r4 = Rule::forward(RuleId(4), IpPrefix::new(8, 29, 32), 20, ex.s[1], ex.l14);
        (r1, r2, r3, r4)
    }

    #[test]
    fn insert_single_rule_labels_its_link() {
        let mut ex = paper_example();
        let (r1, _, _, _) = figure2_rules(&ex);
        let report = ex.net.insert_rule(r1);
        assert!(report.was_insert);
        assert_eq!(report.rule_id, Some(RuleId(1)));
        assert!(report.violations.is_empty());
        assert!(report.affected_classes >= 1);
        // Every atom of r1's interval is on l12.
        let atoms = ex.net.atoms().atoms_of(r1.interval());
        for a in atoms {
            assert!(ex.net.label(ex.l12).contains(a));
        }
        assert_eq!(ex.net.rule_count(), 1);
    }

    #[test]
    fn paper_example_higher_priority_rule_steals_atoms() {
        // §2.1: when r4 (higher priority, s1 -> s4) is inserted, the atoms it
        // covers move from the edge s1->s2 (r1's link) to s1->s4.
        let mut ex = paper_example();
        let (r1, r2, r3, r4) = figure2_rules(&ex);
        ex.net.insert_rule(r1);
        ex.net.insert_rule(r2);
        ex.net.insert_rule(r3);

        let before_l12 = ex.net.label(ex.l12).len();
        let report = ex.net.insert_rule(r4);
        assert!(report.violations.is_empty());

        // r4's atoms are now on l14 ...
        for a in ex.net.atoms().atoms_of(r4.interval()) {
            assert!(
                ex.net.label(ex.l14).contains(a),
                "atom {a:?} missing on l14"
            );
            // ... and no longer on l12 (they were stolen from r1).
            assert!(!ex.net.label(ex.l12).contains(a), "atom {a:?} still on l12");
        }
        // r1 keeps only the atoms below r4's range: [0:8).
        let l12_label = ex.net.label(ex.l12);
        assert!(l12_label.len() < before_l12 + 2);
        let kept: Vec<Interval> = l12_label
            .iter()
            .map(|a| ex.net.atoms().atom_interval(a))
            .collect();
        assert_eq!(normalize(kept), vec![Interval::new(0, 8)]);
        // The changed links are exactly l14 (gains) and l12 (losses).
        assert_eq!(report.changed_links, vec![ex.l12, ex.l14]);
    }

    #[test]
    fn lower_priority_rule_does_not_steal() {
        let mut ex = paper_example();
        let (r1, _, _, _) = figure2_rules(&ex);
        ex.net.insert_rule(r1);
        // A lower-priority overlapping rule on the same switch gets nothing.
        let weak = Rule::forward(RuleId(9), IpPrefix::new(0, 30, 32), 1, ex.s[1], ex.l14);
        let report = ex.net.insert_rule(weak);
        assert_eq!(report.affected_classes, 0);
        assert!(ex.net.label(ex.l14).is_empty());
        assert!(report.changed_links.is_empty());
        // But it is recorded and will take over when r1 is removed.
        ex.net.remove_rule(RuleId(1));
        assert!(!ex.net.label(ex.l14).is_empty());
        assert!(ex.net.label(ex.l12).is_empty());
    }

    #[test]
    fn remove_rule_restores_previous_owner() {
        let mut ex = paper_example();
        let (r1, _, _, r4) = figure2_rules(&ex);
        ex.net.insert_rule(r1);
        ex.net.insert_rule(r4);
        // Removing r4 hands its atoms back to r1.
        let report = ex.net.remove_rule(RuleId(4));
        assert!(!report.was_insert);
        assert!(report.affected_classes >= 1);
        for a in ex.net.atoms().atoms_of(r4.interval()) {
            assert!(ex.net.label(ex.l12).contains(a));
            assert!(!ex.net.label(ex.l14).contains(a));
        }
        assert_eq!(ex.net.rule_count(), 1);
    }

    #[test]
    fn remove_non_owner_rule_changes_nothing() {
        let mut ex = paper_example();
        let (r1, _, _, r4) = figure2_rules(&ex);
        ex.net.insert_rule(r1);
        ex.net.insert_rule(r4);
        // r1 owns only [0:4); removing it must not disturb r4's atoms.
        let report = ex.net.remove_rule(RuleId(1));
        for a in ex.net.atoms().atoms_of(r4.interval()) {
            assert!(ex.net.label(ex.l14).contains(a));
        }
        // Only l12 lost atoms; nothing was added anywhere.
        assert_eq!(report.changed_links, vec![ex.l12]);
        assert!(ex.net.last_delta().added.is_empty());
    }

    #[test]
    fn atom_splits_propagate_to_other_switches() {
        // A rule on s2 whose interval splits an atom owned by a rule on s1
        // must leave s1's forwarding behaviour unchanged but refine its
        // label to include the new atom.
        let mut ex = paper_example();
        let (r1, _, _, _) = figure2_rules(&ex);
        ex.net.insert_rule(r1); // matches [0:16) on s1
        let narrow = Rule::forward(RuleId(7), IpPrefix::new(6, 31, 32), 5, ex.s[2], ex.l23);
        ex.net.insert_rule(narrow); // [6:8) on s2 splits s1's atoms
        let l12_intervals: Vec<Interval> = ex
            .net
            .label(ex.l12)
            .iter()
            .map(|a| ex.net.atoms().atom_interval(a))
            .collect();
        assert_eq!(normalize(l12_intervals), vec![Interval::new(0, 16)]);
    }

    #[test]
    fn loop_detection_on_insert() {
        // Create a 2-node loop: s1 -> s2 for [0:16), then s2 -> s1 for the
        // same range. The second insertion must report a loop.
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        let ba = topo.add_link(b, a);
        let mut net = DeltaNet::with_topology(topo);
        let r1 = Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, a, ab);
        let r2 = Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, b, ba);
        assert!(net.insert_rule(r1).violations.is_empty());
        let report = net.insert_rule(r2);
        assert!(report.has_loop());
        // Removing either rule clears the loop.
        net.remove_rule(RuleId(1));
        assert!(net.check_all_loops().is_empty());
    }

    #[test]
    fn loop_check_can_be_disabled() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        let ba = topo.add_link(b, a);
        let mut net = DeltaNet::new(
            topo,
            DeltaNetConfig {
                check_loops_per_update: false,
                ..DeltaNetConfig::default()
            },
        );
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, a, ab));
        let report = net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, b, ba));
        assert!(report.violations.is_empty());
        // The loop is still there, just not checked per update.
        assert_eq!(net.check_all_loops().len(), 1);
    }

    #[test]
    fn drop_rule_prevents_loop() {
        // A high-priority drop rule shields part of the space from a loop.
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        let ba = topo.add_link(b, a);
        let drop_a = topo.drop_link(a);
        let mut net = DeltaNet::with_topology(topo);
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, a, ab));
        net.insert_rule(Rule::drop(RuleId(3), prefix("10.0.0.0/8"), 9, a, drop_a));
        let report = net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, b, ba));
        // Packets reaching b loop back to a, where they are dropped: no loop.
        assert!(!report.has_loop(), "drop rule should break the loop");
        assert_eq!(net.check_all_loops().len(), 0);
        // Removing the drop rule re-creates the loop.
        let report = net.remove_rule(RuleId(3));
        assert!(report.has_loop());
    }

    #[test]
    fn whatif_link_failure_reports_affected_flows() {
        let mut ex = paper_example();
        let (r1, r2, r3, r4) = figure2_rules(&ex);
        for r in [r1, r2, r3, r4] {
            ex.net.insert_rule(r);
        }
        let report = ex.net.link_failure_impact(ex.l14, false);
        assert_eq!(report.link, Some(ex.l14));
        // r4 owns [8:16) at s1, so those packets are affected.
        assert_eq!(report.affected_packets, vec![Interval::new(8, 16)]);
        assert!(report.affected_classes >= 1);
        // The overlapping flows on s2->s3 and s3->s4 are part of the impact.
        assert!(report.affected_links.contains(&ex.l23));
        assert!(report.affected_links.contains(&ex.l34));
        assert!(!report.affected_links.contains(&ex.l14));
        // A link carrying nothing is unaffected.
        let empty = ex.net.link_failure_impact(ex.l12, true);
        let l12_atoms = ex.net.label(ex.l12).len();
        assert_eq!(empty.affected_classes, l12_atoms);
    }

    #[test]
    fn aggregate_delta_graph_collects_multiple_updates() {
        let mut ex = paper_example();
        let (r1, r2, r3, r4) = figure2_rules(&ex);
        ex.net.begin_aggregate();
        for r in [r1, r2, r3, r4] {
            ex.net.insert_rule(r);
        }
        let agg = ex.net.take_aggregate();
        assert!(!agg.is_empty());
        // The aggregate spans every link that ever gained an atom.
        let links = agg.changed_links();
        assert!(links.contains(&ex.l12));
        assert!(links.contains(&ex.l14));
        assert!(links.contains(&ex.l23));
        assert!(links.contains(&ex.l34));
        // A second take returns an empty aggregate.
        assert!(ex.net.take_aggregate().is_empty());
    }

    #[test]
    fn checker_trait_replay_roundtrip() {
        let mut ex = paper_example();
        let (r1, r2, r3, r4) = figure2_rules(&ex);
        let ops = vec![
            Op::Insert(r1),
            Op::Insert(r2),
            Op::Insert(r3),
            Op::Insert(r4),
            Op::Remove(RuleId(4)),
            Op::Remove(RuleId(3)),
            Op::Remove(RuleId(2)),
            Op::Remove(RuleId(1)),
        ];
        let reports = ex.net.replay(&ops);
        assert_eq!(reports.len(), 8);
        assert_eq!(ex.net.rule_count(), 0);
        // After removing everything no link carries any atom.
        for link in ex.net.topology().links().to_vec() {
            assert!(
                ex.net.label(link.id).is_empty(),
                "{:?} still labelled",
                link.id
            );
        }
        // Atoms are never reclaimed (matching the paper), but all their
        // bounds are now garbage.
        assert!(ex.net.atom_count() >= 1);
        assert!(ex.net.reclaimable_bounds() > 0);
        assert_eq!(ex.net.name(), "delta-net");
        assert!(ex.net.memory_bytes() > 0);
        assert_eq!(ex.net.class_count(), ex.net.atom_count());
    }

    #[test]
    fn reclaimable_bounds_zero_while_rules_live() {
        let mut ex = paper_example();
        let (r1, r2, _, _) = figure2_rules(&ex);
        ex.net.insert_rule(r1);
        ex.net.insert_rule(r2);
        assert_eq!(ex.net.reclaimable_bounds(), 0);
        ex.net.remove_rule(RuleId(2));
        assert!(ex.net.reclaimable_bounds() > 0);
    }

    #[test]
    fn insert_is_idempotent_per_atom_set_regardless_of_order() {
        // The final labels must not depend on insertion order (priorities
        // fully determine ownership).
        let mut ex1 = paper_example();
        let mut ex2 = paper_example();
        let (r1, r2, r3, r4) = figure2_rules(&ex1);
        for r in [r1, r2, r3, r4] {
            ex1.net.insert_rule(r);
        }
        for r in [r4, r3, r2, r1] {
            ex2.net.insert_rule(r);
        }
        for link in [ex1.l12, ex1.l23, ex1.l34, ex1.l14] {
            let a: Vec<Interval> = normalize(
                ex1.net
                    .label(link)
                    .iter()
                    .map(|x| ex1.net.atoms().atom_interval(x))
                    .collect(),
            );
            let b: Vec<Interval> = normalize(
                ex2.net
                    .label(link)
                    .iter()
                    .map(|x| ex2.net.atoms().atom_interval(x))
                    .collect(),
            );
            assert_eq!(a, b, "labels differ on {link:?}");
        }
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_insert_panics() {
        let mut ex = paper_example();
        let (r1, _, _, _) = figure2_rules(&ex);
        ex.net.insert_rule(r1);
        ex.net.insert_rule(r1);
    }

    #[test]
    #[should_panic(expected = "unknown rule")]
    fn unknown_removal_panics() {
        let mut ex = paper_example();
        ex.net.remove_rule(RuleId(77));
    }

    #[test]
    fn same_link_takeover_records_no_delta() {
        // Satellite regression: a higher-priority rule that forwards on the
        // *same* link as the incumbent changes no label, so the delta-graph
        // (and affected_classes) must stay empty — otherwise per-update loop
        // checks are re-seeded for nothing.
        let mut ex = paper_example();
        let (r1, _, _, _) = figure2_rules(&ex);
        ex.net.insert_rule(r1);
        let shadow = Rule::forward(RuleId(8), IpPrefix::new(0, 28, 32), 50, ex.s[1], ex.l12);
        let report = ex.net.insert_rule(shadow);
        assert_eq!(report.affected_classes, 0);
        assert!(report.changed_links.is_empty());
        assert!(ex.net.last_delta().is_empty());
        // Same on removal: ownership falls back to r1 on the same link.
        let report = ex.net.remove_rule(RuleId(8));
        assert_eq!(report.affected_classes, 0);
        assert!(report.changed_links.is_empty());
        assert!(ex.net.last_delta().is_empty());
        // The label itself never flickered.
        for a in ex.net.atoms().atoms_of(r1.interval()) {
            assert!(ex.net.label(ex.l12).contains(a));
        }
    }

    #[test]
    fn equal_priority_tie_breaks_by_rule_id_like_the_owner_store() {
        // Two equal-priority overlapping rules at one switch: the insert-time
        // `wins` predicate must pick the same winner as
        // `RuleStore::highest()` (higher rule id), or labels and owner reads
        // diverge on later splits/removals.
        let mut ex = paper_example();
        let lo_id = Rule::forward(RuleId(3), IpPrefix::new(0, 28, 32), 10, ex.s[1], ex.l12);
        let hi_id = Rule::forward(RuleId(9), IpPrefix::new(0, 28, 32), 10, ex.s[1], ex.l14);
        ex.net.insert_rule(lo_id);
        ex.net.insert_rule(hi_id);
        // The higher id owns every atom, and the labels agree with the owner
        // structure's highest() on every (atom, source).
        for a in ex.net.atoms().atoms_of(hi_id.interval()) {
            assert!(ex.net.label(ex.l14).contains(a), "labels disagree on {a:?}");
            assert!(!ex.net.label(ex.l12).contains(a));
            assert_eq!(ex.net.successor_via_owner(ex.s[1], a), Some(ex.l14));
        }
        // Removing the winner hands ownership back, consistently again.
        ex.net.remove_rule(RuleId(9));
        for a in ex.net.atoms().atoms_of(lo_id.interval()) {
            assert!(ex.net.label(ex.l12).contains(a));
            assert!(!ex.net.label(ex.l14).contains(a));
            assert_eq!(ex.net.successor_via_owner(ex.s[1], a), Some(ex.l12));
        }
        // Insertion order must not matter.
        let mut other = paper_example();
        other.net.insert_rule(hi_id);
        other.net.insert_rule(lo_id);
        for a in other.net.atoms().atoms_of(hi_id.interval()) {
            assert!(other.net.label(other.l14).contains(a));
            assert!(!other.net.label(other.l12).contains(a));
        }
    }

    #[test]
    fn try_remove_unknown_rule_is_an_error_not_a_panic() {
        let mut ex = paper_example();
        let (r1, _, _, _) = figure2_rules(&ex);
        ex.net.insert_rule(r1);
        let before_atoms = ex.net.atom_count();
        let err = ex.net.try_remove_rule(RuleId(77)).unwrap_err();
        assert_eq!(err, netmodel::checker::UpdateError::UnknownRule(RuleId(77)));
        assert!(err.to_string().contains("unknown rule"));
        // Nothing changed.
        assert_eq!(ex.net.rule_count(), 1);
        assert_eq!(ex.net.atom_count(), before_atoms);
        // And the engine keeps working afterwards.
        assert!(ex.net.try_remove_rule(RuleId(1)).is_ok());
    }

    #[test]
    fn clipped_engine_rejects_rules_outside_its_range() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let l = topo.add_link(a, b);
        let half = Interval::new(0, 1u128 << 31);
        let mut net = DeltaNet::clipped(topo, DeltaNetConfig::default(), half);
        assert_eq!(net.clip(), Some(half));
        // Entirely outside the shard range: a clean error, no state change.
        let outside = Rule::forward(RuleId(1), prefix("128.0.0.0/1"), 1, a, l);
        let err = net.try_insert_rule(outside).unwrap_err();
        assert_eq!(
            err,
            netmodel::checker::UpdateError::OutsideShard {
                rule: RuleId(1),
                range: half,
            }
        );
        assert!(err.to_string().contains("does not intersect shard range"));
        assert_eq!(net.rule_count(), 0);
        // Straddling the range: clipped to the owned half.
        let wide = Rule::forward(RuleId(2), prefix("0.0.0.0/0"), 1, a, l);
        net.insert_rule(wide);
        assert_eq!(net.owned_atom_count(), 1);
        let labelled: Vec<Interval> = net
            .label(l)
            .iter()
            .map(|x| net.atoms().atom_interval(x))
            .collect();
        assert_eq!(normalize(labelled), vec![half]);
        // Removal recomputes the same clipping.
        net.remove_rule(RuleId(2));
        assert!(net.label(l).is_empty());
    }

    #[test]
    fn try_insert_duplicate_and_bad_link_are_errors() {
        let mut ex = paper_example();
        let (r1, _, _, _) = figure2_rules(&ex);
        ex.net.insert_rule(r1);
        let err = ex.net.try_insert_rule(r1).unwrap_err();
        assert!(err.to_string().contains("inserted twice"));
        let mut bad = r1;
        bad.id = RuleId(99);
        bad.link = LinkId(10_000);
        let err = ex.net.try_insert_rule(bad).unwrap_err();
        assert!(err.to_string().contains("unknown link"));
        assert_eq!(ex.net.rule_count(), 1);
    }

    #[test]
    fn try_replay_reports_failing_op_index() {
        use netmodel::checker::Checker as _;
        let mut ex = paper_example();
        let (r1, r2, _, _) = figure2_rules(&ex);
        let ops = vec![
            Op::Insert(r1),
            Op::Insert(r2),
            Op::Remove(RuleId(42)), // bad
            Op::Remove(RuleId(1)),
        ];
        let err = ex.net.try_replay(&ops).unwrap_err();
        assert_eq!(err.index, 2);
        assert_eq!(
            err.error,
            netmodel::checker::UpdateError::UnknownRule(RuleId(42))
        );
        // The prefix before the bad op stayed applied.
        assert_eq!(ex.net.rule_count(), 2);
    }

    #[test]
    fn compact_reclaims_atoms_and_preserves_labels() {
        let mut ex = paper_example();
        let (r1, r2, r3, r4) = figure2_rules(&ex);
        for r in [r1, r2, r3, r4] {
            ex.net.insert_rule(r);
        }
        // Narrow churn rule splits atoms, then disappears.
        let churn = Rule::forward(RuleId(50), IpPrefix::new(9, 31, 32), 99, ex.s[2], ex.l23);
        ex.net.insert_rule(churn);
        ex.net.remove_rule(RuleId(50));
        assert!(ex.net.reclaimable_bounds() > 0);
        let allocated_before = ex.net.allocated_atoms();

        let labels_before: Vec<(LinkId, Vec<Interval>)> = [ex.l12, ex.l23, ex.l34, ex.l14]
            .into_iter()
            .map(|l| {
                let ivs: Vec<Interval> = ex
                    .net
                    .label(l)
                    .iter()
                    .map(|a| ex.net.atoms().atom_interval(a))
                    .collect();
                (l, normalize(ivs))
            })
            .collect();

        let report = ex.net.compact();
        assert!(report.merged_atoms > 0);
        assert_eq!(report.allocated_before, allocated_before);
        assert_eq!(report.allocated_after, ex.net.atom_count());
        assert_eq!(ex.net.reclaimable_bounds(), 0);
        assert_eq!(ex.net.allocated_atoms(), ex.net.atom_count());
        assert_eq!(ex.net.compactions(), 1);
        assert!(ex.net.last_delta().is_empty());

        // Same normalized forwarding behaviour, ids renumbered densely.
        for (l, before) in labels_before {
            let after: Vec<Interval> = ex
                .net
                .label(l)
                .iter()
                .map(|a| ex.net.atoms().atom_interval(a))
                .collect();
            assert_eq!(normalize(after), before, "labels changed on {l:?}");
            for a in ex.net.label(l).iter() {
                assert!(a.index() < ex.net.atom_count(), "stale id {a:?} on {l:?}");
            }
        }
        // Updates keep working after the pass.
        ex.net.remove_rule(RuleId(4));
        for a in ex.net.atoms().atoms_of(r1.interval()) {
            assert!(ex.net.label(ex.l12).contains(a));
        }
    }

    #[test]
    fn compact_after_removing_everything_returns_to_one_atom() {
        let mut ex = paper_example();
        let (r1, r2, r3, r4) = figure2_rules(&ex);
        for r in [r1, r2, r3, r4] {
            ex.net.insert_rule(r);
        }
        for id in [1, 2, 3, 4] {
            ex.net.remove_rule(RuleId(id));
        }
        assert!(ex.net.reclaimable_bounds() > 0);
        ex.net.compact();
        assert_eq!(ex.net.atom_count(), 1);
        assert_eq!(ex.net.allocated_atoms(), 1);
        assert_eq!(ex.net.reclaimable_bounds(), 0);
        for link in ex.net.topology().links().to_vec() {
            assert!(ex.net.label(link.id).is_empty());
        }
        // The engine is fully reusable after a to-empty compaction.
        ex.net.insert_rule(r1);
        assert!(!ex.net.label(ex.l12).is_empty());
    }

    #[test]
    fn compact_threshold_triggers_automatically_and_bounds_growth() {
        let mut topo = Topology::new();
        let s = topo.add_nodes("s", 3);
        let l12 = topo.add_link(s[1], s[2]);
        let mut net = DeltaNet::new(
            topo,
            DeltaNetConfig {
                check_loops_per_update: false,
                compact_threshold: Some(4),
                ..Default::default()
            },
        );
        // A long-lived rule plus many short-lived narrow rules with fresh
        // bounds: without compaction allocated_atoms would grow by ~2 per
        // flap.
        let base = Rule::forward(RuleId(0), IpPrefix::new(0, 8, 32), 1, s[1], l12);
        net.insert_rule(base);
        for i in 0..200u64 {
            let p = IpPrefix::new(u128::from(i) * 64, 27, 32);
            let r = Rule::forward(RuleId(1000 + i), p, 10, s[1], l12);
            net.insert_rule(r);
            net.remove_rule(r.id);
        }
        assert!(net.compactions() > 0, "threshold never triggered");
        // Bounded by the threshold, not by the 200 flaps.
        assert!(
            net.allocated_atoms() <= net.atom_count() + 2 * 4 + 2,
            "allocated_atoms {} not reclaimed (atoms {})",
            net.allocated_atoms(),
            net.atom_count()
        );
        assert!(net.reclaimable_bounds() < 4 + 2);
    }

    #[test]
    fn begin_aggregate_defers_automatic_compaction() {
        let mut ex = paper_example();
        ex.net.config.compact_threshold = Some(1);
        let (r1, _, _, r4) = figure2_rules(&ex);
        ex.net.begin_aggregate();
        ex.net.insert_rule(r1);
        ex.net.insert_rule(r4);
        ex.net.remove_rule(RuleId(4));
        ex.net.remove_rule(RuleId(1));
        // Garbage accrued but no pass ran while aggregating.
        assert!(ex.net.reclaimable_bounds() > 0);
        assert_eq!(ex.net.compactions(), 0);
        // The deferred pass runs when the aggregate is taken, after the
        // returned delta-graph (which holds pre-compaction ids) is detached.
        let agg = ex.net.take_aggregate();
        assert!(!agg.is_empty());
        assert_eq!(ex.net.compactions(), 1);
        assert_eq!(ex.net.reclaimable_bounds(), 0);
        assert_eq!(ex.net.atom_count(), 1);
    }

    #[test]
    fn explicit_compact_inside_aggregation_window_remaps_the_aggregate() {
        // Regression: an explicit `compact()` while an aggregation window is
        // open used to clear the pending aggregate along with `last_delta`,
        // silently dropping every change recorded so far in the window. The
        // pass must instead remap the aggregate's atom ids so the window
        // survives renumbering.
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        let ba = topo.add_link(b, a);
        let mut net = DeltaNet::with_topology(topo);
        let mut external = ViolationMonitor::new();

        net.begin_aggregate();
        // A loop on 10/8 recorded in the open window.
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, a, ab));
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, b, ba));
        // Churn a narrower rule so its bounds go dead and a compaction pass
        // has atoms to renumber.
        net.insert_rule(Rule::forward(RuleId(3), prefix("10.128.0.0/9"), 9, a, ab));
        net.remove_rule(RuleId(3));
        assert!(net.reclaimable_bounds() > 0);
        let report = net.compact();
        assert!(report.merged_atoms > 0);
        assert!(report.allocated_after < report.allocated_before);
        // The window continues across the pass.
        net.insert_rule(Rule::forward(RuleId(4), prefix("192.0.0.0/8"), 1, a, ab));
        let agg = net.take_aggregate();

        // The pre-compaction changes are still in the aggregate, and every
        // atom id in it is valid post-renumbering.
        assert!(!agg.is_empty());
        let allocated = net.allocated_atoms() as u32;
        for &(_, atom) in agg.added.iter().chain(agg.removed.iter()) {
            assert!(atom.0 < allocated, "stale atom id {atom:?} in aggregate");
        }
        // The remapped aggregate must repair a monitor bit-identically to a
        // from-scratch rescan — the differential that fails if the window's
        // contents were dropped or left holding stale ids.
        external.apply_update(net.topology(), net.labels(), &agg);
        let mut expect = net.check_all_loops();
        expect.extend(net.check_all_blackholes());
        assert_eq!(external.active_violations(net.atoms()), expect);
        assert_eq!(external.loop_count(), 1);
    }

    #[test]
    fn reclaimable_counter_matches_first_principles_recount() {
        // The O(1) counter must agree with a from-scratch recount (interior
        // bounds of M not used by any live rule) through arbitrary churn.
        let mut ex = paper_example();
        let (r1, r2, r3, r4) = figure2_rules(&ex);
        let recount = |net: &DeltaNet| {
            let referenced: std::collections::HashSet<u128> = net
                .rules()
                .flat_map(|r| [r.interval().lo(), r.interval().hi()])
                .filter(|&b| b != 0 && b != net.atoms().max_bound())
                .collect();
            net.atoms()
                .interior_bounds()
                .filter(|b| !referenced.contains(b))
                .count()
        };
        for r in [r1, r2, r3, r4] {
            ex.net.insert_rule(r);
            assert_eq!(ex.net.reclaimable_bounds(), recount(&ex.net));
        }
        for id in [2, 4, 1, 3] {
            ex.net.remove_rule(RuleId(id));
            assert_eq!(ex.net.reclaimable_bounds(), recount(&ex.net));
        }
        // Re-inserting a rule over dead bounds revives them.
        ex.net.insert_rule(r2);
        assert_eq!(ex.net.reclaimable_bounds(), recount(&ex.net));
    }

    #[test]
    fn multifield_memory_accounting_exceeds_single_field_projection() {
        // Both memory metrics must see the secondary lattices: a monitored
        // multi-field engine reports strictly more than its single-field
        // projection (the same rules with the secondary constraints
        // stripped). `live_bytes` grows by the secondary `AtomMap`s and
        // bound refcounts alone; `memory_estimate` additionally counts the
        // memoized class list and the per-class violation ledger, so the
        // multi-field gap there is at least as large.
        use netmodel::header::SecondaryMatch;
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        let ba = topo.add_link(b, a);
        let config = DeltaNetConfig {
            field_width: 8,
            monitor_violations: true,
            ..DeltaNetConfig::default()
        };
        let mut multi = DeltaNet::new(topo.clone(), config.with_secondary(&[6]));
        let mut single = DeltaNet::new(topo, config);
        let rules = [
            Rule::forward(RuleId(1), IpPrefix::new(0, 4, 8), 5, a, ab),
            Rule::forward(RuleId(2), IpPrefix::new(0, 4, 8), 5, b, ba),
            Rule::forward(RuleId(3), IpPrefix::new(64, 2, 8), 5, a, ab),
        ];
        let sec = [
            SecondaryMatch::new(&[Interval::new(8, 16)]),
            SecondaryMatch::new(&[Interval::new(2, 40)]),
            SecondaryMatch::default(),
        ];
        for (rule, sec) in rules.iter().zip(sec) {
            multi.insert_rule(rule.with_secondary(sec));
            single.insert_rule(*rule);
        }
        // Force the derived multi-field state (class cache + ledger) live.
        assert!(multi.active_violations().is_some());
        assert!(
            multi.live_bytes() > single.live_bytes(),
            "live_bytes: multi {} <= single {}",
            multi.live_bytes(),
            single.live_bytes()
        );
        assert!(
            multi.memory_estimate() > single.memory_estimate(),
            "memory_estimate: multi {} <= single {}",
            multi.memory_estimate(),
            single.memory_estimate()
        );
        // The derived-state gap: estimate minus live grows with the class
        // cache and ledger, which live_bytes deliberately excludes (it is
        // a function of logical state alone, persisted round-trips compare
        // it exactly).
        let multi_gap = multi.memory_estimate() - multi.live_bytes();
        let single_gap = single.memory_estimate() - single.live_bytes();
        assert!(
            multi_gap > single_gap,
            "derived-state gap: multi {multi_gap} <= single {single_gap}"
        );
    }

    #[test]
    fn scoped_slice_primitives_match_full_scans() {
        // The scoped repair primitives' contract: handed the full plane
        // (every atom × every class), their per-class union reproduces the
        // full scans bit-for-bit. The fixture loops a↔b only in the
        // secondary classes rule 1 matches and blackholes at `a` in the
        // rest, so both the loop and hole paths are exercised per class.
        use netmodel::header::SecondaryMatch;
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        let ba = topo.add_link(b, a);
        let config = DeltaNetConfig {
            field_width: 8,
            ..DeltaNetConfig::default()
        };
        let mut net = DeltaNet::new(topo, config.with_secondary(&[6]));
        net.insert_rule(
            Rule::forward(RuleId(1), IpPrefix::new(0, 4, 8), 5, a, ab)
                .with_secondary(SecondaryMatch::new(&[Interval::new(8, 16)])),
        );
        net.insert_rule(Rule::forward(RuleId(2), IpPrefix::new(0, 4, 8), 5, b, ba));
        net.insert_rule(Rule::forward(RuleId(3), IpPrefix::new(64, 2, 8), 5, a, ab));
        let classes = net.sec_class_list();
        assert!(classes.len() > 1, "secondary lattice should have split");
        let view = net.mf_view();
        let atoms: Vec<AtomId> = view.atoms.iter().map(|(atom, _)| atom).collect();
        let mut scratch = MfScratch::new(view.topology.node_count());
        let per_class_loops =
            multifield::mf_cycles_for_slices(&view, &classes, &atoms, &mut scratch);
        let per_class_holes =
            multifield::mf_holes_for_slices(&view, &classes, &atoms, &mut scratch);
        let mut union_loops: std::collections::BTreeMap<Vec<NodeId>, crate::atomset::AtomSet> =
            Default::default();
        for per_class in per_class_loops {
            for (cycle, set) in per_class {
                union_loops.entry(cycle).or_default().union_with(&set);
            }
        }
        let mut union_holes: std::collections::BTreeMap<NodeId, crate::atomset::AtomSet> =
            Default::default();
        for per_class in per_class_holes {
            for (node, set) in per_class {
                union_holes.entry(node).or_default().union_with(&set);
            }
        }
        assert!(!union_loops.is_empty(), "fixture should loop in [8,16)");
        assert!(!union_holes.is_empty(), "fixture should blackhole at a");
        assert_eq!(union_loops, multifield::mf_cycles(&view, &classes));
        assert_eq!(union_holes, multifield::mf_holes(&view, &classes));
    }

    #[test]
    fn drop_rules_have_action_recorded() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let dl = topo.drop_link(a);
        let mut net = DeltaNet::with_topology(topo);
        let r = Rule::drop(RuleId(1), prefix("10.0.0.0/8"), 5, a, dl);
        net.insert_rule(r);
        assert_eq!(net.rule(RuleId(1)).unwrap().action, Action::Drop);
        assert!(net.rule(RuleId(2)).is_none());
        assert_eq!(net.rules().count(), 1);
    }
}
