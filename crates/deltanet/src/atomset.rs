//! Dense atom sets as dynamic bitsets.
//!
//! The paper's implementation note (§4.1) reads: "We implement edge labels
//! as customized dynamic bitsets, stored as aligned, dynamically allocated,
//! contiguous memory." [`AtomSet`] is that data structure: a growable bitset
//! indexed by [`AtomId`], with the set algebra (union, intersection,
//! difference) needed by Algorithm 3 and the query layer.

use crate::atoms::AtomId;
use std::fmt;

const WORD_BITS: usize = 64;

/// A set of atoms stored as a contiguous, dynamically grown bitset.
#[derive(Clone, Default)]
pub struct AtomSet {
    words: Vec<u64>,
    /// Cached population count, maintained incrementally.
    len: usize,
}

impl PartialEq for AtomSet {
    /// Logical equality: trailing zero words are irrelevant.
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let common = self.words.len().min(other.words.len());
        if self.words[..common] != other.words[..common] {
            return false;
        }
        self.words[common..].iter().all(|&w| w == 0)
            && other.words[common..].iter().all(|&w| w == 0)
    }
}

impl Eq for AtomSet {}

impl AtomSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AtomSet::default()
    }

    /// Creates an empty set with capacity for atoms `0..capacity_atoms`.
    pub fn with_capacity(capacity_atoms: usize) -> Self {
        AtomSet {
            words: Vec::with_capacity(capacity_atoms.div_ceil(WORD_BITS)),
            len: 0,
        }
    }

    #[inline]
    fn word_and_bit(atom: AtomId) -> (usize, u64) {
        let idx = atom.index();
        (idx / WORD_BITS, 1u64 << (idx % WORD_BITS))
    }

    /// Inserts an atom; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, atom: AtomId) -> bool {
        debug_assert!(atom != AtomId::INF, "α∞ is not a real atom");
        let (w, bit) = Self::word_and_bit(atom);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let newly = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.len += usize::from(newly);
        newly
    }

    /// Removes an atom; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, atom: AtomId) -> bool {
        let (w, bit) = Self::word_and_bit(atom);
        if w >= self.words.len() {
            return false;
        }
        let was = self.words[w] & bit != 0;
        self.words[w] &= !bit;
        self.len -= usize::from(was);
        if was && w == self.words.len() - 1 {
            self.trim_trailing_zeros();
        }
        was
    }

    /// Drops trailing all-zero words so `words()` (and the live-byte
    /// accounting built on it) tracks the highest set bit, not the
    /// high-water mark. Amortized O(1): a word is popped at most once per
    /// time it was grown. Does not release capacity — see
    /// [`AtomSet::shrink_to_fit`].
    #[inline]
    fn trim_trailing_zeros(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// Whether the atom is in the set.
    #[inline]
    pub fn contains(&self, atom: AtomId) -> bool {
        let (w, bit) = Self::word_and_bit(atom);
        self.words.get(w).is_some_and(|word| word & bit != 0)
    }

    /// Number of atoms in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all atoms, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Iterates the atoms in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(AtomId((wi * WORD_BITS + bit) as u32))
                }
            })
        })
    }

    /// In-place union: `self ← self ∪ other`. Returns whether `self` changed.
    pub fn union_with(&mut self, other: &AtomSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        let mut len = 0usize;
        for (i, word) in self.words.iter_mut().enumerate() {
            let before = *word;
            if let Some(&o) = other.words.get(i) {
                *word |= o;
            }
            changed |= *word != before;
            len += word.count_ones() as usize;
        }
        self.len = len;
        changed
    }

    /// In-place intersection: `self ← self ∩ other`.
    pub fn intersect_with(&mut self, other: &AtomSet) {
        let mut len = 0usize;
        for (i, word) in self.words.iter_mut().enumerate() {
            *word &= other.words.get(i).copied().unwrap_or(0);
            len += word.count_ones() as usize;
        }
        self.len = len;
        self.trim_trailing_zeros();
    }

    /// In-place difference: `self ← self − other`.
    pub fn difference_with(&mut self, other: &AtomSet) {
        let mut len = 0usize;
        for (i, word) in self.words.iter_mut().enumerate() {
            *word &= !other.words.get(i).copied().unwrap_or(0);
            len += word.count_ones() as usize;
        }
        self.len = len;
        self.trim_trailing_zeros();
    }

    /// The union as a new set.
    pub fn union(&self, other: &AtomSet) -> AtomSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// The intersection as a new set.
    pub fn intersection(&self, other: &AtomSet) -> AtomSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// The difference `self − other` as a new set.
    pub fn difference(&self, other: &AtomSet) -> AtomSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Whether the two sets share at least one atom, without allocating.
    pub fn intersects(&self, other: &AtomSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Whether every atom of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &AtomSet) -> bool {
        self.words.iter().enumerate().all(|(i, &w)| {
            let o = other.words.get(i).copied().unwrap_or(0);
            w & !o == 0
        })
    }

    /// Rebuilds a set from raw backing words (the inverse of
    /// [`AtomSet::words`]), recomputing the cached population count and
    /// trimming trailing zero words. Used by the snapshot restore path so a
    /// deserialized label is word-identical to the one that was saved.
    pub fn from_raw_words(words: Vec<u64>) -> AtomSet {
        let mut set = AtomSet {
            len: words.iter().map(|w| w.count_ones() as usize).sum(),
            words,
        };
        set.trim_trailing_zeros();
        set
    }

    /// The backing words (64 atoms per word), trailing zero words trimmed.
    /// Used by the bench memory accounting to report *live* bytes — bits the
    /// set actually addresses — next to the allocated capacity of
    /// [`AtomSet::memory_bytes`].
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Releases excess capacity: trims trailing zero words (a bulk-removal
    /// sequence can leave many) and shrinks the backing allocation to fit,
    /// so [`AtomSet::memory_bytes`] reflects the live contents again.
    pub fn shrink_to_fit(&mut self) {
        self.trim_trailing_zeros();
        self.words.shrink_to_fit();
    }

    /// Rewrites every member through the remap table produced by a
    /// compaction pass (`remap[old id] = new id`). Members must map to live
    /// ids — the engine erases reclaimed atoms from every label *before*
    /// renumbering. Renumbered ids are dense, so the rebuilt set is usually
    /// smaller; the old allocation is released.
    ///
    /// # Panics
    ///
    /// Panics if a member is out of range of `remap` or maps to
    /// [`crate::atoms::REMAP_DEAD`].
    pub fn remap(&mut self, remap: &[u32]) {
        let mut out = AtomSet::new();
        for atom in self.iter() {
            let new = remap[atom.index()];
            assert!(
                new != crate::atoms::REMAP_DEAD,
                "label still references reclaimed atom {atom:?}"
            );
            out.insert(AtomId(new));
        }
        out.shrink_to_fit();
        *self = out;
    }

    /// Estimated heap usage in bytes (allocated capacity).
    pub fn memory_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Heap bytes actually addressed by live words (≤ `memory_bytes`).
    pub fn live_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

impl fmt::Debug for AtomSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<AtomId> for AtomSet {
    fn from_iter<I: IntoIterator<Item = AtomId>>(iter: I) -> Self {
        let mut s = AtomSet::new();
        for a in iter {
            s.insert(a);
        }
        s
    }
}

impl Extend<AtomId> for AtomSet {
    fn extend<I: IntoIterator<Item = AtomId>>(&mut self, iter: I) {
        for a in iter {
            self.insert(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> AtomSet {
        ids.iter().map(|&i| AtomId(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AtomSet::new();
        assert!(s.is_empty());
        assert!(s.insert(AtomId(5)));
        assert!(!s.insert(AtomId(5)));
        assert!(s.contains(AtomId(5)));
        assert!(!s.contains(AtomId(4)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(AtomId(5)));
        assert!(!s.remove(AtomId(5)));
        assert!(s.is_empty());
        // Removing from an index beyond the allocated words is a no-op.
        assert!(!s.remove(AtomId(1000)));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = set(&[70, 3, 64, 0, 129]);
        let got: Vec<u32> = s.iter().map(|a| a.0).collect();
        assert_eq!(got, vec![0, 3, 64, 70, 129]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn union_intersection_difference() {
        let a = set(&[1, 2, 3, 100]);
        let b = set(&[2, 3, 4]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4, 100]));
        assert_eq!(a.intersection(&b), set(&[2, 3]));
        assert_eq!(a.difference(&b), set(&[1, 100]));
        assert_eq!(b.difference(&a), set(&[4]));
    }

    #[test]
    fn in_place_ops_track_len() {
        let mut a = set(&[1, 2, 3]);
        let b = set(&[3, 4, 200]);
        assert!(a.union_with(&b));
        assert_eq!(a.len(), 5);
        assert!(!a.union_with(&b)); // already a superset: no change
        a.intersect_with(&set(&[2, 3, 4]));
        assert_eq!(a, set(&[2, 3, 4]));
        assert_eq!(a.len(), 3);
        a.difference_with(&set(&[4]));
        assert_eq!(a, set(&[2, 3]));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn intersects_and_subset() {
        let a = set(&[1, 2, 3]);
        let b = set(&[3, 4]);
        let c = set(&[4, 5]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(set(&[2, 3]).is_subset_of(&a));
        assert!(!b.is_subset_of(&a));
        assert!(AtomSet::new().is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn trailing_zero_words_are_trimmed() {
        // Removing the top atoms trims the word list back down ...
        let mut s = set(&[1, 500]);
        assert!(s.words().len() >= 8);
        s.remove(AtomId(500));
        assert_eq!(s.words().len(), 1);
        assert_eq!(s, set(&[1]));
        // ... and so do the in-place bulk removals.
        let mut d = set(&[1, 700]);
        d.difference_with(&set(&[700]));
        assert_eq!(d.words().len(), 1);
        let mut i = set(&[1, 700]);
        i.intersect_with(&set(&[1]));
        assert_eq!(i.words().len(), 1);
        // shrink_to_fit releases the capacity too.
        let mut big = set(&[2000]);
        big.remove(AtomId(2000));
        big.shrink_to_fit();
        assert_eq!(big.memory_bytes(), 0);
        assert_eq!(big.live_bytes(), 0);
        assert!(big.is_empty());
        // The trimmed set keeps working.
        big.insert(AtomId(3));
        assert!(big.contains(AtomId(3)));
    }

    #[test]
    fn live_bytes_tracks_highest_set_bit() {
        let mut s = set(&[64]);
        assert_eq!(s.live_bytes(), 16); // words 0 and 1
        s.insert(AtomId(1000));
        assert!(s.live_bytes() > 16);
        s.remove(AtomId(1000));
        assert_eq!(s.live_bytes(), 16);
        assert!(s.memory_bytes() >= s.live_bytes());
    }

    #[test]
    fn remap_rewrites_members_and_shrinks() {
        let mut s = set(&[0, 3, 900]);
        let mut remap = vec![u32::MAX; 901];
        remap[0] = 2;
        remap[3] = 0;
        remap[900] = 1;
        s.remap(&remap);
        assert_eq!(s, set(&[0, 1, 2]));
        assert_eq!(s.len(), 3);
        // Dense ids: the backing storage shrank with the highest bit.
        assert_eq!(s.words().len(), 1);
        assert_eq!(s.memory_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "reclaimed atom")]
    fn remap_rejects_dead_members() {
        let mut s = set(&[5]);
        s.remap(&[0, 0, 0, 0, 0, u32::MAX]);
    }

    #[test]
    fn clear_keeps_working() {
        let mut s = set(&[1, 2, 3]);
        s.clear();
        assert!(s.is_empty());
        s.insert(AtomId(7));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_set_operations() {
        let e = AtomSet::new();
        let a = set(&[1, 2]);
        assert_eq!(e.union(&a), a);
        assert_eq!(a.intersection(&e), e);
        assert_eq!(a.difference(&e), a);
        assert!(!e.intersects(&a));
        assert_eq!(e.iter().count(), 0);
    }

    #[test]
    fn debug_format() {
        let s = set(&[0, 2]);
        assert_eq!(format!("{s:?}"), "{α0, α2}");
    }

    #[test]
    fn extend_trait() {
        let mut s = set(&[1]);
        s.extend([AtomId(2), AtomId(3)]);
        assert_eq!(s, set(&[1, 2, 3]));
    }

    #[test]
    fn large_sparse_ids() {
        let mut s = AtomSet::new();
        s.insert(AtomId(1_000_000));
        assert!(s.contains(AtomId(1_000_000)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next(), Some(AtomId(1_000_000)));
        assert!(s.memory_bytes() >= 1_000_000 / 8);
    }
}
