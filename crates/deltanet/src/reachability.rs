//! Algorithm 3: all-pairs reachability of all atoms.
//!
//! §3.3 adapts the Floyd–Warshall algorithm to the edge-labelled graph by
//! replacing the usual (min, +) semiring with (∪, ∩) over sets of atoms:
//!
//! ```text
//! for k, i, j in V:
//!     label[i, j] ← label[i, j] ∪ (label[i, k] ∩ label[k, j])
//! ```
//!
//! After the triple loop, `label[i, j]` is the set of atoms — i.e. packets —
//! that can flow from node `i` to node `j` along *some* path, processing
//! whole packet equivalence classes per hop. The complexity is
//! `O(K · |V|³)`, which is intended for pre-deployment, Datalog-style
//! queries (design goal 3, §2.2) rather than the per-update hot path.

use crate::atomset::AtomSet;
use crate::engine::DeltaNet;
use crate::labels::Labels;
use netmodel::interval::{normalize, Interval};
use netmodel::topology::{NodeId, Topology};

/// The all-pairs reachability matrix over atoms.
#[derive(Clone, Debug)]
pub struct ReachabilityMatrix {
    nodes: usize,
    /// Row-major `nodes × nodes` matrix of atom sets.
    cells: Vec<AtomSet>,
}

impl ReachabilityMatrix {
    /// Runs Algorithm 3 over a checker's current edge-labelled graph.
    pub fn compute(net: &DeltaNet) -> Self {
        Self::compute_from(net.topology(), net.labels())
    }

    /// Runs Algorithm 3 over an explicit topology and label store.
    pub fn compute_from(topology: &Topology, labels: &Labels) -> Self {
        let n = topology.node_count();
        let mut cells: Vec<AtomSet> = vec![AtomSet::new(); n * n];

        // Initialize with the one-hop labels.
        for (link_id, label) in labels.iter() {
            let link = topology.link(link_id);
            let idx = link.src.index() * n + link.dst.index();
            cells[idx].union_with(label);
        }

        // The triple nested loop of Algorithm 3.
        for k in 0..n {
            for i in 0..n {
                if i == k {
                    continue;
                }
                // Split the borrow: take label[i,k] out, combine, put back.
                let via = cells[i * n + k].clone();
                if via.is_empty() {
                    continue;
                }
                for j in 0..n {
                    if j == k || j == i {
                        continue;
                    }
                    let mut step = via.clone();
                    step.intersect_with(&cells[k * n + j]);
                    if !step.is_empty() {
                        cells[i * n + j].union_with(&step);
                    }
                }
            }
        }
        ReachabilityMatrix { nodes: n, cells }
    }

    /// The atoms that can flow from `src` to `dst` (over one or more hops).
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> &AtomSet {
        &self.cells[src.index() * self.nodes + dst.index()]
    }

    /// Whether any packet at all can flow from `src` to `dst`.
    pub fn can_reach(&self, src: NodeId, dst: NodeId) -> bool {
        !self.reachable(src, dst).is_empty()
    }

    /// The packets that can flow from `src` to `dst`, as normalized
    /// destination-address intervals (resolved against the checker's atoms).
    pub fn reachable_packets(&self, net: &DeltaNet, src: NodeId, dst: NodeId) -> Vec<Interval> {
        normalize(
            self.reachable(src, dst)
                .iter()
                .map(|a| net.atoms().atom_interval(a))
                .collect(),
        )
    }

    /// Number of nodes covered by the matrix.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Total number of `(src, dst)` pairs with at least one reachable atom.
    pub fn reachable_pair_count(&self) -> usize {
        self.cells.iter().filter(|s| !s.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DeltaNetConfig;
    use netmodel::ip::IpPrefix;
    use netmodel::rule::{Rule, RuleId};

    fn prefix(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    /// A 3-switch chain forwarding 10.0.0.0/8 from s0 to s2, and 10.1.0.0/16
    /// dropped at s1.
    fn chain() -> (DeltaNet, Vec<NodeId>) {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 3);
        let l01 = topo.add_link(n[0], n[1]);
        let l12 = topo.add_link(n[1], n[2]);
        let d1 = topo.drop_link(n[1]);
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, n[1], l12));
        net.insert_rule(Rule::drop(RuleId(3), prefix("10.1.0.0/16"), 9, n[1], d1));
        (net, n)
    }

    #[test]
    fn one_hop_and_transitive_reachability() {
        let (net, n) = chain();
        let m = ReachabilityMatrix::compute(&net);
        assert!(m.can_reach(n[0], n[1]));
        assert!(m.can_reach(n[1], n[2]));
        assert!(m.can_reach(n[0], n[2]), "transitive closure missing");
        assert!(!m.can_reach(n[2], n[0]));
        assert!(!m.can_reach(n[1], n[0]));
    }

    #[test]
    fn drop_rule_removes_packets_from_transitive_flow() {
        let (net, n) = chain();
        let m = ReachabilityMatrix::compute(&net);
        // 10.1.0.0/16 is dropped at s1, so it reaches s1 but not s2.
        let to_s1 = m.reachable_packets(&net, n[0], n[1]);
        let to_s2 = m.reachable_packets(&net, n[0], n[2]);
        let dropped: Interval = prefix("10.1.0.0/16").interval();
        assert!(to_s1.iter().any(|iv| iv.contains_interval(&dropped)));
        assert!(to_s2.iter().all(|iv| !iv.overlaps(&dropped)));
        // The rest of 10.0.0.0/8 still reaches s2.
        let total: u128 = to_s2.iter().map(|iv| iv.len()).sum();
        assert_eq!(total, (1 << 24) - (1 << 16));
    }

    #[test]
    fn reachability_matches_paper_example_shape() {
        let (net, n) = chain();
        let m = ReachabilityMatrix::compute(&net);
        assert_eq!(m.node_count(), net.topology().node_count());
        // Pairs with flow: 0->1, 1->2, 0->2, 1->drop, 0->drop.
        assert_eq!(m.reachable_pair_count(), 5);
        let drop = net.topology().drop_node().unwrap();
        assert!(m.can_reach(n[0], drop));
        assert!(m.can_reach(n[1], drop));
        assert!(!m.can_reach(n[2], drop));
    }

    #[test]
    fn empty_network_has_empty_matrix() {
        let mut topo = Topology::new();
        topo.add_nodes("s", 4);
        let net = DeltaNet::with_topology(topo);
        let m = ReachabilityMatrix::compute(&net);
        assert_eq!(m.reachable_pair_count(), 0);
    }

    #[test]
    fn cycle_reachability_is_symmetric_on_the_ring() {
        // A 3-node ring forwarding everything clockwise: every node reaches
        // every other node (including itself transitively, which Algorithm 3
        // does not record because i == j cells are skipped by convention).
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 3);
        let l01 = topo.add_link(n[0], n[1]);
        let l12 = topo.add_link(n[1], n[2]);
        let l20 = topo.add_link(n[2], n[0]);
        let mut net = DeltaNet::new(
            topo,
            DeltaNetConfig {
                check_loops_per_update: false,
                ..Default::default()
            },
        );
        net.insert_rule(Rule::forward(RuleId(1), prefix("0.0.0.0/0"), 1, n[0], l01));
        net.insert_rule(Rule::forward(RuleId(2), prefix("0.0.0.0/0"), 1, n[1], l12));
        net.insert_rule(Rule::forward(RuleId(3), prefix("0.0.0.0/0"), 1, n[2], l20));
        let m = ReachabilityMatrix::compute(&net);
        for &i in &n {
            for &j in &n {
                if i != j {
                    assert!(m.can_reach(i, j), "{i} should reach {j}");
                }
            }
        }
    }
}
