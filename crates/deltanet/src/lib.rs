//! # deltanet — real-time network verification using atoms
//!
//! A from-scratch Rust implementation of **Delta-net** (Horn, Kheradmand,
//! Prasad — NSDI 2017): a real-time data-plane checker that incrementally
//! maintains a single edge-labelled graph representing the flows of *all*
//! packets in the entire network, instead of recomputing per-equivalence-
//! class forwarding graphs on every rule update.
//!
//! The building blocks follow the paper closely:
//!
//! * [`atoms`] — the ordered bound map `M` and atom splitting (§3.1).
//! * [`atomset`] — dynamic bitsets of atoms, used for edge labels (§4.1).
//! * [`owner`] — per-atom, per-switch priority-ordered rule stores (§3.2),
//!   flattened into an arena of inline sorted small-vecs for the update hot
//!   path (the paper's BSTs survive as [`owner::legacy`] for differential
//!   testing).
//! * [`labels`] — the edge labels of the network-wide graph (§3.2).
//! * [`engine`] — Algorithms 1 and 2 and the [`DeltaNet`] checker.
//! * [`delta_graph`] — per-update delta-graphs (§3.3).
//! * [`loops`] — forwarding-loop detection on the edge-labelled graph.
//! * [`blackholes`] — blackhole detection (traffic arriving at a switch that
//!   has no rule for it).
//! * [`monitor`] — [`ViolationMonitor`]: loops and blackholes maintained as
//!   live state, repaired incrementally from every update's delta-graph.
//! * [`multifield`] — cross-field loop/blackhole checks for engines whose
//!   header space declares secondary fields next to the primary one
//!   (`[dst, src]`-style matching; [`DeltaNetConfig::with_secondary`]).
//! * [`parallel`] — parallel bulk queries and the shared [`Parallelism`]
//!   worker-count configuration (the §6 future-work direction).
//! * [`fault`] — the [`StorageBackend`] abstraction all persistence I/O
//!   goes through: [`FsBackend`] for real files, [`FaultyBackend`] for
//!   deterministic crash / short-write / fsync-failure injection.
//! * [`persist`] — crash-consistent snapshot + delta-log persistence:
//!   checksummed binary snapshots written atomically, a per-record-framed
//!   append-only update log written through [`persist::LoggedNet`] at a
//!   configurable [`Durability`], torn-tail log repair
//!   ([`RecoveryPolicy::RepairTail`]), bounded-time recovery via the
//!   auto-snapshotting [`CheckpointManager`], crash recovery
//!   ([`persist::recover`] = nearest snapshot + log tail), and time-travel
//!   queries ([`persist::violations_at`]).
//! * [`shard`] — [`ShardedDeltaNet`]: the engine partitioned across the
//!   address space so rule updates on disjoint ranges apply concurrently
//!   (§6: the main loops over atoms are highly parallelizable).
//! * [`reachability`] — Algorithm 3: all-pairs reachability of all atoms.
//! * [`query`] — flow queries (which packets can reach B from A) and
//!   "what if" link-failure analysis (§4.3.2).
//! * [`lattice`] — the Boolean lattice induced by atoms (Appendix A).
//!
//! ## Quick start
//!
//! ```
//! use deltanet::DeltaNet;
//! use netmodel::topology::Topology;
//! use netmodel::rule::{Rule, RuleId};
//!
//! // A two-switch network with one link.
//! let mut topo = Topology::new();
//! let s1 = topo.add_node("s1");
//! let s2 = topo.add_node("s2");
//! let link = topo.add_link(s1, s2);
//!
//! let mut net = DeltaNet::with_topology(topo);
//! let report = net.insert_rule(Rule::forward(
//!     RuleId(0),
//!     "10.0.0.0/8".parse().unwrap(),
//!     100,
//!     s1,
//!     link,
//! ));
//! assert!(report.violations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atoms;
pub mod atomset;
pub mod blackholes;
pub mod delta_graph;
pub mod engine;
pub mod fault;
pub mod labels;
pub mod lattice;
pub mod loops;
pub mod monitor;
pub mod multifield;
pub mod owner;
pub mod parallel;
pub mod persist;
pub mod query;
pub mod reachability;
pub mod shard;

pub use atoms::{AtomId, AtomMap, DeltaPair};
pub use atomset::AtomSet;
pub use delta_graph::DeltaGraph;
pub use engine::{CompactReport, DeltaNet, DeltaNetConfig};
pub use fault::{FaultPlan, FaultyBackend, FsBackend, StorageBackend};
pub use labels::Labels;
pub use monitor::{
    MonitorEvent, MonitorTransitions, TransitionTracker, ViolationKey, ViolationMonitor,
};
pub use parallel::{Parallelism, WorkersEnvError};
pub use persist::{
    CheckpointConfig, CheckpointManager, DeltaLog, Durability, LoggedNet, PersistError, PersistNet,
    RecoveryPolicy, RecoveryReport, Snapshot,
};
pub use reachability::ReachabilityMatrix;
pub use shard::ShardedDeltaNet;
