//! The Boolean lattice induced by atoms (Appendix A).
//!
//! Atoms are "a form of mutually disjoint ranges that make it possible to
//! analyze all Boolean combinations of IP prefix forwarding rules in a
//! network". Formally, the family of sets of packets expressible as unions
//! of atoms forms a Boolean lattice: the bottom is the empty set, the top is
//! the whole field space, join is union, meet is intersection, and every
//! element has a complement. This module makes that structure explicit —
//! it is what justifies calling Delta-net's representation an *abstract
//! domain* whose precision is refined dynamically (§1, §3.1).

use crate::atoms::{AtomId, AtomMap};
use crate::atomset::AtomSet;
use netmodel::interval::{normalize, Interval};

/// The Boolean lattice whose atoms are the atoms of an [`AtomMap`].
///
/// Elements are [`AtomSet`]s; the lattice operations are thin wrappers that
/// also know the universe (the set of all currently allocated atoms), which
/// is what complementation needs.
#[derive(Clone, Debug)]
pub struct AtomLattice {
    universe: AtomSet,
}

impl AtomLattice {
    /// Builds the lattice over all atoms currently represented by `atoms`.
    pub fn new(atoms: &AtomMap) -> Self {
        AtomLattice {
            universe: atoms.iter().map(|(a, _)| a).collect(),
        }
    }

    /// ⊥ — the empty set of packets.
    pub fn bottom(&self) -> AtomSet {
        AtomSet::new()
    }

    /// ⊤ — all packets (the whole field space).
    pub fn top(&self) -> AtomSet {
        self.universe.clone()
    }

    /// The number of atoms; the lattice has `2^atom_count()` elements.
    pub fn atom_count(&self) -> usize {
        self.universe.len()
    }

    /// Join (least upper bound): set union.
    pub fn join(&self, a: &AtomSet, b: &AtomSet) -> AtomSet {
        a.union(b)
    }

    /// Meet (greatest lower bound): set intersection.
    pub fn meet(&self, a: &AtomSet, b: &AtomSet) -> AtomSet {
        a.intersection(b)
    }

    /// Complement with respect to the universe.
    pub fn complement(&self, a: &AtomSet) -> AtomSet {
        self.universe.difference(a)
    }

    /// The lattice order: `a ⊑ b` iff `a ⊆ b`.
    pub fn le(&self, a: &AtomSet, b: &AtomSet) -> bool {
        a.is_subset_of(b)
    }

    /// Whether `a` is an atom of the lattice (covers ⊥, i.e. has exactly
    /// one element).
    pub fn is_atom(&self, a: &AtomSet) -> bool {
        a.len() == 1
    }

    /// The atoms below an element (its unique decomposition).
    pub fn atoms_below(&self, a: &AtomSet) -> Vec<AtomId> {
        a.iter().collect()
    }

    /// Converts a lattice element back to normalized packet intervals using
    /// the atom map that induced the lattice.
    pub fn to_intervals(&self, atoms: &AtomMap, a: &AtomSet) -> Vec<Interval> {
        normalize(a.iter().map(|x| atoms.atom_interval(x)).collect())
    }

    /// Enumerates every element of the lattice grouped by level (number of
    /// atoms in the element) — the rows of a Hasse diagram such as Figure 9.
    ///
    /// Only sensible for small universes; panics above 20 atoms to prevent
    /// accidental exponential blow-ups.
    pub fn hasse_levels(&self) -> Vec<Vec<AtomSet>> {
        let atoms: Vec<AtomId> = self.universe.iter().collect();
        let k = atoms.len();
        assert!(k <= 20, "refusing to enumerate 2^{k} lattice elements");
        let mut levels: Vec<Vec<AtomSet>> = vec![Vec::new(); k + 1];
        for mask in 0u32..(1u32 << k) {
            let mut set = AtomSet::new();
            for (i, &a) in atoms.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    set.insert(a);
                }
            }
            levels[set.len()].push(set);
        }
        levels
    }

    /// Whether `b` covers `a` in the Hasse diagram (i.e. `a ⊂ b` and they
    /// differ by exactly one atom).
    pub fn covers(&self, a: &AtomSet, b: &AtomSet) -> bool {
        self.le(a, b) && b.len() == a.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Appendix A setting: 4-bit addresses, rules [10:12) and [0:16)
    /// give atoms [0:10), [10:12), [12:16).
    fn appendix_a() -> (AtomMap, AtomLattice) {
        let mut m = AtomMap::new(4);
        m.create_atoms(Interval::new(10, 12));
        m.create_atoms(Interval::new(0, 16));
        let l = AtomLattice::new(&m);
        (m, l)
    }

    #[test]
    fn lattice_has_three_atoms_and_eight_elements() {
        let (_, l) = appendix_a();
        assert_eq!(l.atom_count(), 3);
        let levels = l.hasse_levels();
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, 8); // the Boolean lattice of Figure 9
        assert_eq!(levels[0].len(), 1); // ⊥
        assert_eq!(levels[1].len(), 3); // the atoms
        assert_eq!(levels[2].len(), 3);
        assert_eq!(levels[3].len(), 1); // ⊤
    }

    #[test]
    fn top_corresponds_to_whole_space() {
        let (m, l) = appendix_a();
        assert_eq!(l.to_intervals(&m, &l.top()), vec![Interval::new(0, 16)]);
        assert!(l.to_intervals(&m, &l.bottom()).is_empty());
    }

    #[test]
    fn complement_laws() {
        let (m, l) = appendix_a();
        // The element {[10:12)}: rH's representation.
        let rh: AtomSet = [m.atom_of_value(10)].into_iter().collect();
        let comp = l.complement(&rh);
        assert_eq!(
            l.to_intervals(&m, &comp),
            vec![Interval::new(0, 10), Interval::new(12, 16)]
        );
        // a ∨ ¬a = ⊤, a ∧ ¬a = ⊥.
        assert_eq!(l.join(&rh, &comp), l.top());
        assert_eq!(l.meet(&rh, &comp), l.bottom());
        // Double complement.
        assert_eq!(l.complement(&comp), rh);
    }

    #[test]
    fn order_and_covering() {
        let (m, l) = appendix_a();
        let a0 = m.atom_of_value(0);
        let a1 = m.atom_of_value(10);
        let single: AtomSet = [a0].into_iter().collect();
        let pair: AtomSet = [a0, a1].into_iter().collect();
        assert!(l.le(&single, &pair));
        assert!(!l.le(&pair, &single));
        assert!(l.covers(&single, &pair));
        assert!(!l.covers(&l.bottom(), &pair));
        assert!(l.is_atom(&single));
        assert!(!l.is_atom(&pair));
        assert_eq!(l.atoms_below(&pair).len(), 2);
    }

    #[test]
    fn distributivity_on_small_example() {
        let (m, l) = appendix_a();
        let a: AtomSet = [m.atom_of_value(0)].into_iter().collect();
        let b: AtomSet = [m.atom_of_value(10)].into_iter().collect();
        let c: AtomSet = [m.atom_of_value(12)].into_iter().collect();
        // a ∧ (b ∨ c) = (a ∧ b) ∨ (a ∧ c)
        let lhs = l.meet(&a, &l.join(&b, &c));
        let rhs = l.join(&l.meet(&a, &b), &l.meet(&a, &c));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn rule_difference_expressible() {
        // §3.1: ⟦interval(rL)⟧ − ⟦interval(rH)⟧ formalizes "rL only matches
        // packets not matched by rH".
        let (m, l) = appendix_a();
        let rl: AtomSet = m.atoms_of(Interval::new(0, 16)).into_iter().collect();
        let rh: AtomSet = m.atoms_of(Interval::new(10, 12)).into_iter().collect();
        let only_rl = l.meet(&rl, &l.complement(&rh));
        assert_eq!(
            l.to_intervals(&m, &only_rl),
            vec![Interval::new(0, 10), Interval::new(12, 16)]
        );
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn hasse_enumeration_guard() {
        let mut m = AtomMap::new(32);
        for i in 0..30u128 {
            m.create_atoms(Interval::new(i * 10, i * 10 + 5));
        }
        let l = AtomLattice::new(&m);
        let _ = l.hasse_levels();
    }
}
