//! Parallel query evaluation and the shared worker-count configuration.
//!
//! "One advantage of Delta-net is that its main loops over atoms in
//! Algorithm 1 and 2 are highly parallelizable" (§6). The *query* side —
//! what-if analysis of many links, loop audits over many atoms — lives here:
//! it only reads the persistent edge-labelled graph, so it partitions across
//! threads with no synchronization beyond the final merge. The *update*
//! side is parallelized by [`crate::shard::ShardedDeltaNet`], which
//! partitions the address space itself so disjoint shards apply rule updates
//! concurrently; both sides size their thread pools from the same
//! [`Parallelism`] configuration, so a bench run pinned to `N` workers
//! behaves identically across query and update code.
//!
//! Everything uses `std::thread::scope` (no `unsafe`, no external
//! dependency, no global thread pool).

use crate::engine::DeltaNet;
use crate::loops;
use netmodel::checker::{InvariantViolation, WhatIfReport};
use netmodel::interval::normalize;
use netmodel::topology::LinkId;
use std::collections::BTreeMap;
use std::fmt;

/// The `DELTANET_WORKERS` environment variable held a value that is not a
/// positive integer (`0`, `abc`, `-1`, …). Surfaced by
/// [`Parallelism::try_from_env`]; [`Parallelism::from_env`] logs it as a
/// warning and falls back to [`Parallelism::auto`] so long-standing callers
/// keep working, but the operator typo is never masked silently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkersEnvError {
    /// The offending value of `DELTANET_WORKERS`.
    pub value: String,
}

impl fmt::Display for WorkersEnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid DELTANET_WORKERS value `{}`: expected a positive integer",
            self.value
        )
    }
}

impl std::error::Error for WorkersEnvError {}

/// How many worker threads the parallel entry points (bulk queries, sharded
/// batch updates) may use.
///
/// The single knob replaces the old per-call `available_parallelism`
/// heuristic, so bench runs are reproducible: construct one value — from the
/// CLI, from [`Parallelism::from_env`] (`DELTANET_WORKERS`), or explicitly —
/// and pass it everywhere. The worker count is always at least 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    workers: usize,
}

impl Parallelism {
    /// Exactly `workers` threads (clamped to at least 1).
    pub fn fixed(workers: usize) -> Self {
        Parallelism {
            workers: workers.max(1),
        }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        Parallelism::fixed(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// [`Parallelism::auto`], overridden by the `DELTANET_WORKERS`
    /// environment variable when it holds a positive integer.
    ///
    /// An invalid value (`DELTANET_WORKERS=0`, `=abc`) is an operator typo,
    /// not a configuration: it is reported on stderr and the auto worker
    /// count is used, so a bench run pinned to a mistyped count cannot
    /// silently measure the wrong machine shape. Use
    /// [`Parallelism::try_from_env`] to turn the typo into a hard error.
    pub fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("warning: {e}; using auto worker count");
                Parallelism::auto()
            }
        }
    }

    /// [`Parallelism::from_env`] that surfaces an invalid `DELTANET_WORKERS`
    /// value as an error instead of warning and falling back.
    pub fn try_from_env() -> Result<Self, WorkersEnvError> {
        Self::from_env_value(std::env::var("DELTANET_WORKERS").ok().as_deref())
    }

    /// The parsing behind [`Parallelism::from_env`], split out so it is
    /// testable without mutating the process environment. An unset or empty
    /// variable means auto; anything else must parse as a positive integer.
    fn from_env_value(value: Option<&str>) -> Result<Self, WorkersEnvError> {
        match value.map(str::trim) {
            None | Some("") => Ok(Parallelism::auto()),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => Ok(Parallelism::fixed(n)),
                _ => Err(WorkersEnvError {
                    value: v.to_string(),
                }),
            },
        }
    }

    /// The configured worker count.
    pub fn workers(self) -> usize {
        self.workers
    }

    /// Workers to actually spawn for `items` units of work: never more
    /// threads than items, never fewer than one.
    pub fn for_items(self, items: usize) -> usize {
        self.workers.min(items).max(1)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::from_env()
    }
}

/// Merges violations found by independent partitions of one analysis (atom
/// ranges, shards) into the canonical combined form: forwarding loops are
/// grouped by their node cycle and blackholes by their node, with the packet
/// intervals of each group normalized. Loops sort before blackholes; each
/// group sorts by its key.
pub fn merge_violations(
    parts: impl IntoIterator<Item = InvariantViolation>,
) -> Vec<InvariantViolation> {
    let mut loops: BTreeMap<Vec<netmodel::topology::NodeId>, Vec<netmodel::interval::Interval>> =
        BTreeMap::new();
    let mut holes: BTreeMap<netmodel::topology::NodeId, Vec<netmodel::interval::Interval>> =
        BTreeMap::new();
    for violation in parts {
        match violation {
            InvariantViolation::ForwardingLoop { nodes, packets } => {
                loops.entry(nodes).or_default().extend(packets);
            }
            InvariantViolation::Blackhole { node, packets } => {
                holes.entry(node).or_default().extend(packets);
            }
        }
    }
    loops
        .into_iter()
        .map(|(nodes, packets)| InvariantViolation::ForwardingLoop {
            nodes,
            packets: normalize(packets),
        })
        .chain(
            holes
                .into_iter()
                .map(|(node, packets)| InvariantViolation::Blackhole {
                    node,
                    packets: normalize(packets),
                }),
        )
        .collect()
}

/// Answers the link-failure "what if" query for many links concurrently,
/// returning one report per queried link in the input order. Worker count
/// from [`Parallelism::from_env`]; use [`what_if_many_with`] to pin it.
///
/// This is the bulk form of [`DeltaNet::link_failure_impact`] used by the
/// failure-scenario sweeps (e.g. "test every possible single link failure",
/// §6 concluding remarks).
pub fn what_if_many(net: &DeltaNet, links: &[LinkId], check_loops: bool) -> Vec<WhatIfReport> {
    what_if_many_with(net, links, check_loops, Parallelism::from_env())
}

/// [`what_if_many`] with an explicit worker-count configuration.
pub fn what_if_many_with(
    net: &DeltaNet,
    links: &[LinkId],
    check_loops: bool,
    parallelism: Parallelism,
) -> Vec<WhatIfReport> {
    let workers = parallelism.for_items(links.len());
    if workers <= 1 || links.len() <= 1 {
        return links
            .iter()
            .map(|&l| net.link_failure_impact(l, check_loops))
            .collect();
    }
    let mut results: Vec<Option<WhatIfReport>> = vec![None; links.len()];
    let chunk = links.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (slot, work) in results.chunks_mut(chunk).zip(links.chunks(chunk)) {
            scope.spawn(move || {
                for (out, &link) in slot.iter_mut().zip(work.iter()) {
                    *out = Some(net.link_failure_impact(link, check_loops));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

/// Audits the whole data plane for forwarding loops by partitioning the atom
/// space across threads. Produces the same set of violations as
/// [`DeltaNet::check_all_loops`], merely faster on large atom counts.
/// Worker count from [`Parallelism::from_env`]; use
/// [`check_all_loops_parallel_with`] to pin it.
pub fn check_all_loops_parallel(net: &DeltaNet) -> Vec<InvariantViolation> {
    check_all_loops_parallel_with(net, Parallelism::from_env())
}

/// [`check_all_loops_parallel`] with an explicit worker-count configuration.
pub fn check_all_loops_parallel_with(
    net: &DeltaNet,
    parallelism: Parallelism,
) -> Vec<InvariantViolation> {
    let all_atoms: Vec<crate::atoms::AtomId> = net.atoms().iter().map(|(a, _)| a).collect();
    let workers = parallelism.for_items(all_atoms.len() / 64 + 1);
    if workers <= 1 {
        return net.check_all_loops();
    }
    let chunk = all_atoms.len().div_ceil(workers);
    let mut partial: Vec<Vec<InvariantViolation>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for work in all_atoms.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let subset: crate::atomset::AtomSet = work.iter().copied().collect();
                loops::find_loops_for_atoms(net.topology(), net.labels(), net.atoms(), &subset)
            }));
        }
        for h in handles {
            partial.push(h.join().expect("loop-audit worker panicked"));
        }
    });
    // The same cycle may be found from different atom partitions; merge to
    // one violation per cycle with the packets combined.
    merge_violations(partial.into_iter().flatten())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DeltaNetConfig;
    use netmodel::interval::Interval;
    use netmodel::ip::IpPrefix;
    use netmodel::rule::{Rule, RuleId};
    use netmodel::topology::{NodeId, Topology};

    fn prefix(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn ring_net(with_loop: bool) -> DeltaNet {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 4);
        for i in 0..4 {
            topo.add_link(n[i], n[(i + 1) % 4]);
        }
        let mut net = DeltaNet::new(
            topo,
            DeltaNetConfig {
                check_loops_per_update: false,
                ..Default::default()
            },
        );
        let limit = if with_loop { 4 } else { 3 };
        for i in 0..limit {
            let src = netmodel::topology::NodeId(i as u32);
            let link = net.topology().out_links(src)[0];
            net.insert_rule(Rule::forward(
                RuleId(i as u64),
                prefix("10.0.0.0/8"),
                1,
                src,
                link,
            ));
        }
        // Sprinkle extra disjoint prefixes so there are many atoms.
        for i in 0..32u64 {
            let src = netmodel::topology::NodeId((i % 3) as u32);
            let link = net.topology().out_links(src)[0];
            net.insert_rule(Rule::forward(
                RuleId(100 + i),
                IpPrefix::ipv4(0xC000_0000 + (i as u32) * 0x1_0000, 16),
                2,
                src,
                link,
            ));
        }
        net
    }

    #[test]
    fn parallel_loop_audit_matches_sequential() {
        for with_loop in [false, true] {
            for workers in [1, 2, 5] {
                let net = ring_net(with_loop);
                let seq = net.check_all_loops();
                let par = check_all_loops_parallel_with(&net, Parallelism::fixed(workers));
                assert_eq!(
                    seq.len(),
                    par.len(),
                    "with_loop={with_loop} workers={workers}"
                );
                if with_loop {
                    assert!(!par.is_empty());
                }
            }
        }
    }

    #[test]
    fn what_if_many_matches_single_queries() {
        let net = ring_net(false);
        let links: Vec<LinkId> = net.topology().links().iter().map(|l| l.id).collect();
        for workers in [1, 3, 16] {
            let bulk = what_if_many_with(&net, &links, false, Parallelism::fixed(workers));
            assert_eq!(bulk.len(), links.len());
            for (i, &link) in links.iter().enumerate() {
                let single = net.link_failure_impact(link, false);
                assert_eq!(
                    bulk[i], single,
                    "mismatch for {link:?} at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn what_if_many_empty_input() {
        let net = ring_net(false);
        assert!(what_if_many(&net, &[], true).is_empty());
    }

    #[test]
    fn parallelism_clamps_and_parses() {
        assert_eq!(Parallelism::fixed(0).workers(), 1);
        assert_eq!(Parallelism::fixed(8).workers(), 8);
        assert_eq!(Parallelism::fixed(8).for_items(3), 3);
        assert_eq!(Parallelism::fixed(2).for_items(0), 1);
        assert!(Parallelism::auto().workers() >= 1);
        // Environment parsing: positive integers override; unset or empty
        // means auto.
        assert_eq!(Parallelism::from_env_value(Some("6")).unwrap().workers(), 6);
        assert_eq!(
            Parallelism::from_env_value(Some(" 3 ")).unwrap().workers(),
            3
        );
        assert_eq!(
            Parallelism::from_env_value(None).unwrap(),
            Parallelism::auto()
        );
        assert_eq!(
            Parallelism::from_env_value(Some("")).unwrap(),
            Parallelism::auto()
        );
        assert_eq!(
            Parallelism::from_env_value(Some("  ")).unwrap(),
            Parallelism::auto()
        );
    }

    #[test]
    fn invalid_workers_env_is_an_error_not_a_silent_auto() {
        // `DELTANET_WORKERS=0` or `=abc` used to fall back to auto silently,
        // masking operator typos; it now surfaces the offending value.
        for bad in ["0", "nope", "-1", "3.5", "0x4", "2 workers"] {
            let err = Parallelism::from_env_value(Some(bad)).unwrap_err();
            assert_eq!(err.value, bad.trim(), "value `{bad}` must be reported");
            let msg = err.to_string();
            assert!(
                msg.contains("DELTANET_WORKERS") && msg.contains(bad.trim()),
                "error must name the variable and the value: {msg}"
            );
        }
        // Leading/trailing whitespace is trimmed before the verdict.
        assert_eq!(
            Parallelism::from_env_value(Some(" 0 ")).unwrap_err().value,
            "0"
        );
    }

    #[test]
    fn merge_violations_groups_and_normalizes() {
        let merged = merge_violations([
            InvariantViolation::ForwardingLoop {
                nodes: vec![NodeId(0), NodeId(1)],
                packets: vec![Interval::new(0, 8)],
            },
            InvariantViolation::Blackhole {
                node: NodeId(2),
                packets: vec![Interval::new(16, 20)],
            },
            InvariantViolation::ForwardingLoop {
                nodes: vec![NodeId(0), NodeId(1)],
                packets: vec![Interval::new(8, 12)],
            },
            InvariantViolation::Blackhole {
                node: NodeId(2),
                packets: vec![Interval::new(20, 32)],
            },
        ]);
        assert_eq!(
            merged,
            vec![
                InvariantViolation::ForwardingLoop {
                    nodes: vec![NodeId(0), NodeId(1)],
                    packets: vec![Interval::new(0, 12)],
                },
                InvariantViolation::Blackhole {
                    node: NodeId(2),
                    packets: vec![Interval::new(16, 32)],
                },
            ]
        );
    }
}
