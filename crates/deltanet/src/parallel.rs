//! Parallel query evaluation (the future-work direction of §6).
//!
//! "One advantage of Delta-net is that its main loops over atoms in
//! Algorithm 1 and 2 are highly parallelizable." The per-update hot path in
//! this implementation is already fast enough that threading it would be
//! dominated by synchronization, but the *query* side — what-if analysis of
//! many links, loop audits over many atoms — parallelizes cleanly because it
//! only reads the persistent edge-labelled graph. This module provides those
//! parallel entry points using `std::thread::scope` (no `unsafe`, no
//! external dependency, no global thread pool).

use crate::engine::DeltaNet;
use crate::loops;
use netmodel::checker::{InvariantViolation, WhatIfReport};
use netmodel::topology::LinkId;

/// Default number of worker threads: the available parallelism, capped so
/// that small queries do not pay for thread start-up.
fn default_workers(work_items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(work_items).max(1)
}

/// Answers the link-failure "what if" query for many links concurrently,
/// returning one report per queried link in the input order.
///
/// This is the bulk form of [`DeltaNet::link_failure_impact`] used by the
/// failure-scenario sweeps (e.g. "test every possible single link failure",
/// §6 concluding remarks).
pub fn what_if_many(net: &DeltaNet, links: &[LinkId], check_loops: bool) -> Vec<WhatIfReport> {
    let workers = default_workers(links.len());
    if workers <= 1 || links.len() <= 1 {
        return links
            .iter()
            .map(|&l| net.link_failure_impact(l, check_loops))
            .collect();
    }
    let mut results: Vec<Option<WhatIfReport>> = vec![None; links.len()];
    let chunk = links.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (slot, work) in results.chunks_mut(chunk).zip(links.chunks(chunk)) {
            scope.spawn(move || {
                for (out, &link) in slot.iter_mut().zip(work.iter()) {
                    *out = Some(net.link_failure_impact(link, check_loops));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

/// Audits the whole data plane for forwarding loops by partitioning the atom
/// space across threads. Produces the same set of violations as
/// [`DeltaNet::check_all_loops`], merely faster on large atom counts.
pub fn check_all_loops_parallel(net: &DeltaNet) -> Vec<InvariantViolation> {
    let all_atoms: Vec<crate::atoms::AtomId> = net.atoms().iter().map(|(a, _)| a).collect();
    let workers = default_workers(all_atoms.len() / 64 + 1);
    if workers <= 1 {
        return net.check_all_loops();
    }
    let chunk = all_atoms.len().div_ceil(workers);
    let mut partial: Vec<Vec<InvariantViolation>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for work in all_atoms.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let subset: crate::atomset::AtomSet = work.iter().copied().collect();
                loops::find_loops_for_atoms(net.topology(), net.labels(), net.atoms(), &subset)
            }));
        }
        for h in handles {
            partial.push(h.join().expect("loop-audit worker panicked"));
        }
    });
    // Merge and deduplicate: the same cycle may be found from different
    // atom partitions; keep one violation per cycle with packets merged.
    let mut merged: std::collections::BTreeMap<
        Vec<netmodel::topology::NodeId>,
        Vec<netmodel::interval::Interval>,
    > = std::collections::BTreeMap::new();
    for violation in partial.into_iter().flatten() {
        if let InvariantViolation::ForwardingLoop { nodes, packets } = violation {
            merged.entry(nodes).or_default().extend(packets);
        }
    }
    merged
        .into_iter()
        .map(|(nodes, packets)| InvariantViolation::ForwardingLoop {
            nodes,
            packets: netmodel::interval::normalize(packets),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DeltaNetConfig;
    use netmodel::ip::IpPrefix;
    use netmodel::rule::{Rule, RuleId};
    use netmodel::topology::Topology;

    fn prefix(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn ring_net(with_loop: bool) -> DeltaNet {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 4);
        for i in 0..4 {
            topo.add_link(n[i], n[(i + 1) % 4]);
        }
        let mut net = DeltaNet::new(
            topo,
            DeltaNetConfig {
                check_loops_per_update: false,
                ..Default::default()
            },
        );
        let limit = if with_loop { 4 } else { 3 };
        for i in 0..limit {
            let src = netmodel::topology::NodeId(i as u32);
            let link = net.topology().out_links(src)[0];
            net.insert_rule(Rule::forward(
                RuleId(i as u64),
                prefix("10.0.0.0/8"),
                1,
                src,
                link,
            ));
        }
        // Sprinkle extra disjoint prefixes so there are many atoms.
        for i in 0..32u64 {
            let src = netmodel::topology::NodeId((i % 3) as u32);
            let link = net.topology().out_links(src)[0];
            net.insert_rule(Rule::forward(
                RuleId(100 + i),
                IpPrefix::ipv4(0xC000_0000 + (i as u32) * 0x1_0000, 16),
                2,
                src,
                link,
            ));
        }
        net
    }

    #[test]
    fn parallel_loop_audit_matches_sequential() {
        for with_loop in [false, true] {
            let net = ring_net(with_loop);
            let seq = net.check_all_loops();
            let par = check_all_loops_parallel(&net);
            assert_eq!(seq.len(), par.len(), "with_loop={with_loop}");
            if with_loop {
                assert!(!par.is_empty());
            }
        }
    }

    #[test]
    fn what_if_many_matches_single_queries() {
        let net = ring_net(false);
        let links: Vec<LinkId> = net.topology().links().iter().map(|l| l.id).collect();
        let bulk = what_if_many(&net, &links, false);
        assert_eq!(bulk.len(), links.len());
        for (i, &link) in links.iter().enumerate() {
            let single = net.link_failure_impact(link, false);
            assert_eq!(bulk[i], single, "mismatch for {link:?}");
        }
    }

    #[test]
    fn what_if_many_empty_input() {
        let net = ring_net(false);
        assert!(what_if_many(&net, &[], true).is_empty());
    }
}
