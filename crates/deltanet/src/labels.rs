//! Edge labels: the atom set carried by every link.
//!
//! `label[link]` (§3.2) is the set of atoms — i.e. disjoint destination
//! address ranges — that the data plane currently forwards along `link`.
//! Collectively the labels form the single edge-labelled graph that
//! represents the flows of *all* packets in the entire network, which is the
//! state Delta-net maintains instead of Veriflow's per-equivalence-class
//! forwarding graphs.

use crate::atoms::AtomId;
use crate::atomset::AtomSet;
use netmodel::topology::LinkId;

/// The edge labels of the network-wide edge-labelled graph.
#[derive(Clone, Debug, Default)]
pub struct Labels {
    per_link: Vec<AtomSet>,
}

impl Labels {
    /// Creates an empty label store.
    pub fn new() -> Self {
        Labels::default()
    }

    /// Creates a label store pre-sized for `links` links.
    pub fn with_links(links: usize) -> Self {
        Labels {
            per_link: (0..links).map(|_| AtomSet::new()).collect(),
        }
    }

    fn ensure(&mut self, link: LinkId) {
        if link.index() >= self.per_link.len() {
            self.per_link.resize_with(link.index() + 1, AtomSet::new);
        }
    }

    /// Adds `atom` to `label[link]`; returns whether the label changed.
    #[inline]
    pub fn insert(&mut self, link: LinkId, atom: AtomId) -> bool {
        self.ensure(link);
        self.per_link[link.index()].insert(atom)
    }

    /// Removes `atom` from `label[link]`; returns whether the label changed.
    #[inline]
    pub fn remove(&mut self, link: LinkId, atom: AtomId) -> bool {
        if link.index() >= self.per_link.len() {
            return false;
        }
        self.per_link[link.index()].remove(atom)
    }

    /// Whether `label[link]` contains `atom`.
    #[inline]
    pub fn contains(&self, link: LinkId, atom: AtomId) -> bool {
        self.per_link
            .get(link.index())
            .is_some_and(|s| s.contains(atom))
    }

    /// `label[link]` as a set (empty if the link has never been labelled).
    ///
    /// This is the constant-time, persistent network-wide flow API the paper
    /// highlights in §3.3.
    pub fn get(&self, link: LinkId) -> &AtomSet {
        static EMPTY: once_empty::Empty = once_empty::Empty::new();
        self.per_link
            .get(link.index())
            .unwrap_or_else(|| EMPTY.get())
    }

    /// Number of links that currently carry at least one atom.
    pub fn non_empty_links(&self) -> usize {
        self.per_link.iter().filter(|s| !s.is_empty()).count()
    }

    /// Number of link slots allocated.
    pub fn link_capacity(&self) -> usize {
        self.per_link.len()
    }

    /// Iterates `(link, label)` pairs for links with a non-empty label.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, &AtomSet)> + '_ {
        self.per_link
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| (LinkId(i as u32), s))
    }

    /// Estimated heap usage in bytes (allocated capacity).
    pub fn memory_bytes(&self) -> usize {
        self.per_link.capacity() * std::mem::size_of::<AtomSet>()
            + self
                .per_link
                .iter()
                .map(AtomSet::memory_bytes)
                .sum::<usize>()
    }

    /// Heap bytes actually addressed by live label words (≤ `memory_bytes`);
    /// the bench memory accounting reports both so over-allocation after
    /// bulk removals is visible.
    pub fn live_bytes(&self) -> usize {
        self.per_link.len() * std::mem::size_of::<AtomSet>()
            + self.per_link.iter().map(AtomSet::live_bytes).sum::<usize>()
    }

    /// Exports the label store for a snapshot: the number of allocated link
    /// slots plus, for every link with a non-empty label, the raw backing
    /// words of its atom set. Slot count matters because the len-based byte
    /// accounting counts empty slots too.
    pub fn export_parts(&self) -> (usize, Vec<(LinkId, Vec<u64>)>) {
        let parts = self
            .iter()
            .map(|(link, set)| (link, set.words().to_vec()))
            .collect();
        (self.per_link.len(), parts)
    }

    /// Rebuilds a label store from the export of [`Labels::export_parts`].
    /// Word-identical to the saved store: non-empty labels get their exact
    /// words back (via [`AtomSet::from_raw_words`]), every other slot up to
    /// `capacity` is an empty set.
    pub fn from_parts(capacity: usize, parts: Vec<(LinkId, Vec<u64>)>) -> Result<Labels, String> {
        let mut per_link: Vec<AtomSet> = (0..capacity).map(|_| AtomSet::new()).collect();
        for (link, words) in parts {
            let slot = per_link
                .get_mut(link.index())
                .ok_or_else(|| format!("label for {link} outside capacity {capacity}"))?;
            if !slot.is_empty() {
                return Err(format!("duplicate label entry for {link}"));
            }
            *slot = AtomSet::from_raw_words(words);
        }
        Ok(Labels { per_link })
    }

    /// Releases excess capacity of every label (see
    /// [`AtomSet::shrink_to_fit`]); useful after a removal-heavy phase.
    pub fn shrink_to_fit(&mut self) {
        for set in &mut self.per_link {
            set.shrink_to_fit();
        }
    }

    /// Rewrites every label through the remap table of a compaction pass
    /// (see [`AtomSet::remap`]); compacted ids are dense, so this also
    /// releases the label words beyond the new id range.
    pub fn remap(&mut self, remap: &[u32]) {
        for set in &mut self.per_link {
            if !set.is_empty() {
                set.remap(remap);
            } else {
                set.shrink_to_fit();
            }
        }
    }
}

/// A tiny helper module providing a `'static` empty [`AtomSet`] so that
/// [`Labels::get`] can hand out a reference even for never-labelled links.
mod once_empty {
    use super::AtomSet;
    use std::sync::OnceLock;

    pub struct Empty {
        cell: OnceLock<AtomSet>,
    }

    impl Empty {
        pub const fn new() -> Self {
            Empty {
                cell: OnceLock::new(),
            }
        }

        pub fn get(&self) -> &AtomSet {
            self.cell.get_or_init(AtomSet::new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut l = Labels::new();
        assert!(l.insert(LinkId(3), AtomId(7)));
        assert!(!l.insert(LinkId(3), AtomId(7)));
        assert!(l.contains(LinkId(3), AtomId(7)));
        assert!(!l.contains(LinkId(2), AtomId(7)));
        assert!(l.remove(LinkId(3), AtomId(7)));
        assert!(!l.remove(LinkId(3), AtomId(7)));
        assert!(!l.remove(LinkId(100), AtomId(7)));
    }

    #[test]
    fn get_returns_empty_for_unknown_links() {
        let l = Labels::new();
        assert!(l.get(LinkId(42)).is_empty());
    }

    #[test]
    fn iter_skips_empty_labels() {
        let mut l = Labels::with_links(4);
        l.insert(LinkId(1), AtomId(0));
        l.insert(LinkId(3), AtomId(2));
        l.insert(LinkId(3), AtomId(5));
        let got: Vec<(LinkId, usize)> = l.iter().map(|(id, s)| (id, s.len())).collect();
        assert_eq!(got, vec![(LinkId(1), 1), (LinkId(3), 2)]);
        assert_eq!(l.non_empty_links(), 2);
        assert_eq!(l.link_capacity(), 4);
    }

    #[test]
    fn with_links_preallocates() {
        let l = Labels::with_links(10);
        assert_eq!(l.link_capacity(), 10);
        assert_eq!(l.non_empty_links(), 0);
    }

    #[test]
    fn remap_rewrites_every_label() {
        let mut l = Labels::with_links(3);
        l.insert(LinkId(0), AtomId(7));
        l.insert(LinkId(2), AtomId(7));
        l.insert(LinkId(2), AtomId(300));
        let mut remap = vec![u32::MAX; 301];
        remap[7] = 0;
        remap[300] = 1;
        l.remap(&remap);
        assert!(l.contains(LinkId(0), AtomId(0)));
        assert!(l.contains(LinkId(2), AtomId(0)));
        assert!(l.contains(LinkId(2), AtomId(1)));
        assert!(!l.contains(LinkId(2), AtomId(300)));
        assert_eq!(l.get(LinkId(2)).len(), 2);
        // Dense ids released the high words.
        assert!(l.live_bytes() <= 3 * std::mem::size_of::<AtomSet>() + 2 * 8);
    }

    #[test]
    fn memory_accounting() {
        let mut l = Labels::new();
        let before = l.memory_bytes();
        for i in 0..64 {
            l.insert(LinkId(i), AtomId(i * 100));
        }
        assert!(l.memory_bytes() > before);
        assert!(l.live_bytes() <= l.memory_bytes());
        // After removing the high atoms, live bytes drop and shrink_to_fit
        // brings the allocated capacity down with them.
        let live_full = l.live_bytes();
        for i in 0..64 {
            l.remove(LinkId(i), AtomId(i * 100));
        }
        assert!(l.live_bytes() < live_full);
        l.shrink_to_fit();
        assert!(l.memory_bytes() < before + 64 * 8 * 100);
        assert_eq!(l.non_empty_links(), 0);
    }
}
