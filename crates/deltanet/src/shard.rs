//! Sharding the Delta-net engine across the address space.
//!
//! §6 of the paper observes that "its main loops over atoms in Algorithm 1
//! and 2 are highly parallelizable". Atoms are disjoint half-closed
//! intervals, so the cleanest realization is to partition the address space
//! itself: [`ShardedDeltaNet`] splits `[0 : 2^w)` into `N` fixed contiguous
//! ranges, each backed by an independent clipped [`DeltaNet`]
//! ([`DeltaNet::clipped`]). A rule whose interval crosses shard boundaries
//! is split at those boundaries and routed to every shard it touches; the
//! per-shard [`UpdateReport`]s and delta-graphs merge back into one report,
//! so callers — the [`Checker`] harness, the replay CLI, the bench
//! experiments — cannot tell the difference.
//!
//! Because shards share no mutable state (disjoint atoms, owners, and label
//! bits), a *batch* of updates groups by shard and the groups apply
//! concurrently with `std::thread::scope` ([`ShardedDeltaNet::apply_batch`])
//! — the same scale-by-replicating-the-core-logic move network functions
//! use to scale across cores.
//!
//! ## Semantics at shard boundaries
//!
//! Each interior boundary permanently splits the address space, so an atom
//! that would straddle a boundary in a single engine exists as one atom per
//! touched shard here. Every *observable* quantity is unaffected — labels
//! as normalized intervals, what-if packets, loop and blackhole verdicts are
//! identical to the single-engine answers — but raw class counts
//! ([`ShardedDeltaNet::class_count`]) can exceed the single engine's by at
//! most `N - 1`, and `affected_classes` of a boundary-straddling update
//! counts its split atoms per shard. The differential suite in
//! `crates/deltanet/tests/sharded_differential.rs` pins both the observable
//! equality and the exact boundary accounting.

use crate::engine::{CompactReport, DeltaNet, DeltaNetConfig};
use crate::monitor::{MonitorTransitions, TransitionTracker};
use crate::parallel::{merge_violations, Parallelism};
use netmodel::checker::{
    Checker, InvariantViolation, ReplayError, UpdateError, UpdateReport, WhatIfReport,
};
use netmodel::interval::{normalize, Bound, Interval};
use netmodel::rule::{Rule, RuleId};
use netmodel::topology::{LinkId, Topology};
use netmodel::trace::Op;
use std::collections::{BTreeSet, HashMap};

/// The Delta-net engine sharded across the address space: `N` clipped
/// engines over fixed contiguous ranges of `[0 : 2^w)`, behind the same
/// update/query surface as a single [`DeltaNet`].
///
/// # Examples
///
/// ```
/// use deltanet::{DeltaNetConfig, ShardedDeltaNet};
/// use netmodel::checker::Checker;
/// use netmodel::rule::{Rule, RuleId};
/// use netmodel::topology::Topology;
///
/// let mut topo = Topology::new();
/// let s1 = topo.add_node("s1");
/// let s2 = topo.add_node("s2");
/// let link = topo.add_link(s1, s2);
/// let mut net = ShardedDeltaNet::new(topo, DeltaNetConfig::default(), 4);
///
/// // 10.0.0.0/8 lies inside one quarter of the IPv4 space: one shard.
/// let narrow = Rule::forward(RuleId(0), "10.0.0.0/8".parse().unwrap(), 10, s1, link);
/// // 0.0.0.0/0 covers the whole space: split across all four shards.
/// let wide = Rule::forward(RuleId(1), "0.0.0.0/0".parse().unwrap(), 1, s1, link);
/// net.insert_rule(narrow);
/// let report = net.insert_rule(wide);
/// assert!(report.violations.is_empty());
/// assert_eq!(net.rule_count(), 2);
/// assert!(net.class_count() >= 4);
/// ```
pub struct ShardedDeltaNet {
    topology: Topology,
    /// Shard range boundaries: `boundaries[i] .. boundaries[i + 1]` is the
    /// range of shard `i`; strictly increasing, first `0`, last `2^w`.
    boundaries: Vec<Bound>,
    shards: Vec<DeltaNet>,
    /// The global rule registry: duplicate detection and removal routing
    /// need the full (unclipped) intervals of every installed rule.
    rules: HashMap<RuleId, Rule>,
    parallelism: Parallelism,
    /// The monitor-event observer, if one is attached (see
    /// [`ShardedDeltaNet::set_monitor_observer`]): the merged-key tracker
    /// plus the callback it drives. Runtime wiring, not engine state — it
    /// does not survive [`Clone`] or persistence.
    observer: Option<MonitorObserver>,
}

/// The push-side monitor seam: a [`TransitionTracker`] over the merged
/// shard keys plus the registered callback.
struct MonitorObserver {
    tracker: TransitionTracker,
    callback: Box<dyn FnMut(&MonitorTransitions) + Send>,
}

impl Clone for ShardedDeltaNet {
    /// Clones the engine state. An attached monitor observer is runtime
    /// wiring to a live consumer and is *not* cloned — the copy starts with
    /// no observer, like a snapshot-restored engine.
    fn clone(&self) -> Self {
        ShardedDeltaNet {
            topology: self.topology.clone(),
            boundaries: self.boundaries.clone(),
            shards: self.shards.clone(),
            rules: self.rules.clone(),
            parallelism: self.parallelism,
            observer: None,
        }
    }
}

impl std::fmt::Debug for ShardedDeltaNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDeltaNet")
            .field("topology", &self.topology)
            .field("boundaries", &self.boundaries)
            .field("shards", &self.shards)
            .field("rules", &self.rules)
            .field("parallelism", &self.parallelism)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl ShardedDeltaNet {
    /// Creates a sharded checker with `shards` equal contiguous address
    /// ranges and the worker count from [`Parallelism::from_env`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds the number of addresses in the
    /// configured field space.
    pub fn new(topology: Topology, config: DeltaNetConfig, shards: usize) -> Self {
        Self::with_parallelism(topology, config, shards, Parallelism::from_env())
    }

    /// [`ShardedDeltaNet::new`] with an explicit worker-count configuration
    /// for [`ShardedDeltaNet::apply_batch`].
    pub fn with_parallelism(
        topology: Topology,
        config: DeltaNetConfig,
        shards: usize,
        parallelism: Parallelism,
    ) -> Self {
        let max: Bound = 1u128 << config.field_width;
        assert!(shards >= 1, "at least one shard is required");
        assert!(
            (shards as u128) <= max,
            "cannot split {max} addresses into {shards} shards"
        );
        // floor(max * i / shards) without overflowing u128.
        let q = max / shards as u128;
        let r = max % shards as u128;
        let boundaries: Vec<Bound> = (0..=shards as u128)
            .map(|i| q * i + (r * i) / shards as u128)
            .collect();
        let shards = boundaries
            .windows(2)
            .map(|w| DeltaNet::clipped(topology.clone(), config, Interval::new(w[0], w[1])))
            .collect();
        ShardedDeltaNet {
            topology,
            boundaries,
            shards,
            rules: HashMap::new(),
            parallelism,
            observer: None,
        }
    }

    /// Rebuilds a sharded engine from snapshot parts: the boundary table,
    /// the already-restored shard engines (in address order, each clipped to
    /// its boundary range) and the shared rule registry. The worker count is
    /// taken from the environment — it is runtime configuration, not state.
    pub(crate) fn from_restored(
        topology: Topology,
        boundaries: Vec<Bound>,
        shards: Vec<DeltaNet>,
        rules: HashMap<RuleId, Rule>,
    ) -> Self {
        debug_assert_eq!(boundaries.len(), shards.len() + 1);
        ShardedDeltaNet {
            topology,
            boundaries,
            shards,
            rules,
            parallelism: Parallelism::from_env(),
            observer: None,
        }
    }

    /// Attaches a violation monitor to every shard, each seeded from its
    /// own data plane with one full scan (see [`DeltaNet::enable_monitor`]);
    /// every later update maintains them incrementally. In multi-field mode
    /// each shard repairs only the `(primary atom, secondary class)` slices
    /// an update touched — an update routed to one shard never rescans the
    /// others, and this holds through [`ShardedDeltaNet::apply_batch`]'s
    /// concurrent per-shard groups, aggregation windows, and
    /// [`ShardedDeltaNet::compact`].
    pub fn enable_monitor(&mut self) {
        for shard in &mut self.shards {
            shard.enable_monitor();
        }
    }

    /// Registers a monitor-event observer: after every update — a single
    /// [`ShardedDeltaNet::try_insert_rule`] / `try_remove_rule`, or one
    /// [`ShardedDeltaNet::apply_batch`] window, including the applied prefix
    /// of a window that fails mid-batch — the callback receives the
    /// [`MonitorTransitions`] diff of the merged violation identities, the
    /// push-side equivalent of polling [`ShardedDeltaNet::monitor_keys`].
    /// The callback only fires when at least one identity changed; it runs
    /// on the thread applying the update, after all shard groups have
    /// joined, so it must be cheap and must never block on the consumers it
    /// feeds (hand off to a queue instead).
    ///
    /// The tracker baseline is the *current* violation set, so attaching to
    /// a dirty engine does not replay the existing violations as `appeared`
    /// events. At most one observer is attached; a second call replaces the
    /// first. Returns `false` (and registers nothing) when monitoring is off
    /// (see [`ShardedDeltaNet::enable_monitor`]).
    pub fn set_monitor_observer(
        &mut self,
        callback: impl FnMut(&MonitorTransitions) + Send + 'static,
    ) -> bool {
        let Some(keys) = self.monitor_keys() else {
            return false;
        };
        self.observer = Some(MonitorObserver {
            tracker: TransitionTracker::starting_from(keys),
            callback: Box::new(callback),
        });
        true
    }

    /// Detaches the observer registered with
    /// [`ShardedDeltaNet::set_monitor_observer`], if any.
    pub fn clear_monitor_observer(&mut self) {
        self.observer = None;
    }

    /// Diffs the merged violation identities against the observer's last
    /// observation and fires the callback when anything changed. Called at
    /// the end of every update path (including the applied prefix of a
    /// failed batch); a no-op without an observer or with monitoring off.
    fn notify_observer(&mut self) {
        if self.observer.is_none() {
            return;
        }
        let Some(keys) = self.monitor_keys() else {
            return;
        };
        // Taken out so the diff cannot alias a re-entrant engine borrow.
        let mut observer = self.observer.take().expect("checked above");
        let transitions = observer.tracker.observe(keys);
        if !transitions.is_empty() {
            (observer.callback)(&transitions);
        }
        self.observer = Some(observer);
    }

    /// The topology this checker verifies.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard engines, in address order (read-only; for diagnostics and
    /// the bench memory accounting).
    pub fn shards(&self) -> &[DeltaNet] {
        &self.shards
    }

    /// The engine configuration shared by every shard.
    pub fn config(&self) -> DeltaNetConfig {
        self.shards[0].config()
    }

    /// Whether any shard has an open aggregation window (see
    /// [`DeltaNet::is_aggregating`]).
    pub fn is_aggregating(&self) -> bool {
        self.shards.iter().any(DeltaNet::is_aggregating)
    }

    /// The contiguous address range owned by each shard, in address order.
    pub fn shard_ranges(&self) -> Vec<Interval> {
        self.boundaries
            .windows(2)
            .map(|w| Interval::new(w[0], w[1]))
            .collect()
    }

    /// The worker-count configuration used by batched updates.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The rule with the given id, if currently installed.
    pub fn rule(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(&id)
    }

    /// Iterates all currently installed rules (unspecified order).
    pub fn rules(&self) -> impl Iterator<Item = &Rule> + '_ {
        self.rules.values()
    }

    /// The shard whose range contains the address `value`.
    fn shard_of(&self, value: Bound) -> usize {
        self.boundaries.partition_point(|&b| b <= value) - 1
    }

    /// The shards `interval` touches (it is split at each boundary crossed).
    fn shard_span(&self, interval: Interval) -> std::ops::RangeInclusive<usize> {
        self.shard_of(interval.lo())..=self.shard_of(interval.hi() - 1)
    }

    fn validate_insert(&self, rule: &Rule) -> Result<(), UpdateError> {
        if self.rules.contains_key(&rule.id) {
            return Err(UpdateError::DuplicateRule(rule.id));
        }
        if rule.link.index() >= self.topology.link_count() {
            return Err(UpdateError::UnknownLink {
                rule: rule.id,
                link: rule.link,
            });
        }
        // Field validation must happen here, not inside a shard: a rule
        // constraining undeclared secondary fields would otherwise reach
        // the per-shard engines and trip their "validated insert cannot
        // fail" expectation.
        self.config().validate_rule_fields(rule)?;
        Ok(())
    }

    /// Algorithm 1, sharded: splits `rule` at the shard boundaries it
    /// crosses, applies each piece to its shard, and merges the per-shard
    /// reports.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate rule id or an out-of-topology link; use
    /// [`ShardedDeltaNet::try_insert_rule`] for an error instead.
    pub fn insert_rule(&mut self, rule: Rule) -> UpdateReport {
        self.try_insert_rule(rule).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ShardedDeltaNet::insert_rule`].
    pub fn try_insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, UpdateError> {
        self.validate_insert(&rule)?;
        self.rules.insert(rule.id, rule);
        let parts: Vec<UpdateReport> = self
            .shard_span(rule.interval())
            .map(|s| {
                self.shards[s]
                    .try_insert_rule(rule)
                    .expect("validated insert cannot fail inside a shard")
            })
            .collect();
        let report = merge_update_reports(Some(rule.id), true, parts);
        self.notify_observer();
        Ok(report)
    }

    /// Algorithm 2, sharded: routes the removal to every shard the rule's
    /// interval touches and merges the per-shard reports.
    ///
    /// # Panics
    ///
    /// Panics if no rule with that id is installed; use
    /// [`ShardedDeltaNet::try_remove_rule`] for an error instead.
    pub fn remove_rule(&mut self, id: RuleId) -> UpdateReport {
        self.try_remove_rule(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ShardedDeltaNet::remove_rule`].
    ///
    /// The shared registry entry is only removed *after* every touched
    /// shard has completed its removal: popping it first would strand a
    /// half-removed rule (registry says gone, shards still own atoms for
    /// it) if a shard panics partway, and the error path — an unknown id —
    /// must leave the engine completely untouched.
    pub fn try_remove_rule(&mut self, id: RuleId) -> Result<UpdateReport, UpdateError> {
        let rule = *self.rules.get(&id).ok_or(UpdateError::UnknownRule(id))?;
        let parts: Vec<UpdateReport> = self
            .shard_span(rule.interval())
            .map(|s| {
                self.shards[s]
                    .try_remove_rule(id)
                    .expect("registered rule cannot be missing from its shard")
            })
            .collect();
        self.rules.remove(&id);
        let report = merge_update_reports(Some(id), false, parts);
        self.notify_observer();
        Ok(report)
    }

    /// Applies a window of updates with the per-shard groups running
    /// concurrently: operations are validated and routed in order (so a
    /// shard sees its sub-sequence in trace order), each shard's group is
    /// applied on its own thread — conflict-free, because shards share no
    /// state — and the per-shard reports merge back into one report per
    /// operation, in input order.
    ///
    /// A malformed operation (duplicate insert, unknown removal) stops the
    /// batch: like [`Checker::try_replay`], the operations before it stay
    /// applied and the error reports the failing index.
    pub fn apply_batch(&mut self, ops: &[Op]) -> Result<Vec<UpdateReport>, ReplayError> {
        let shard_count = self.shards.len();
        let mut routed: Vec<Vec<(usize, Op)>> = vec![Vec::new(); shard_count];
        let mut meta: Vec<(Option<RuleId>, bool)> = Vec::with_capacity(ops.len());
        let mut failure: Option<ReplayError> = None;
        for (index, op) in ops.iter().enumerate() {
            let interval = match op {
                Op::Insert(rule) => match self.validate_insert(rule) {
                    Ok(()) => {
                        self.rules.insert(rule.id, *rule);
                        meta.push((Some(rule.id), true));
                        rule.interval()
                    }
                    Err(error) => {
                        failure = Some(ReplayError { index, error });
                        break;
                    }
                },
                Op::Remove(id) => match self.rules.remove(id) {
                    Some(rule) => {
                        meta.push((Some(*id), false));
                        rule.interval()
                    }
                    None => {
                        failure = Some(ReplayError {
                            index,
                            error: UpdateError::UnknownRule(*id),
                        });
                        break;
                    }
                },
            };
            for s in self.shard_span(interval) {
                routed[s].push((index, *op));
            }
        }

        // Apply each shard's sub-sequence. `chunks_mut` hands out disjoint
        // `&mut` shard slices, so the scope needs no further synchronization.
        let busy = routed.iter().filter(|r| !r.is_empty()).count();
        let workers = self.parallelism.for_items(busy);
        let mut partials: Vec<Vec<(usize, UpdateReport)>> = Vec::with_capacity(shard_count);
        if workers <= 1 {
            for (shard, group) in self.shards.iter_mut().zip(&routed) {
                partials.push(apply_routed(shard, group));
            }
        } else {
            let chunk = shard_count.div_ceil(workers);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (shards, groups) in self.shards.chunks_mut(chunk).zip(routed.chunks(chunk)) {
                    handles.push(scope.spawn(move || {
                        shards
                            .iter_mut()
                            .zip(groups)
                            .map(|(shard, group)| apply_routed(shard, group))
                            .collect::<Vec<_>>()
                    }));
                }
                for handle in handles {
                    partials.extend(handle.join().expect("shard worker panicked"));
                }
            });
        }

        // One observation per window — transitions are at batch granularity
        // (per-op order inside a window is not observable), and a mid-batch
        // failure still reports the transitions of its applied prefix.
        self.notify_observer();
        if let Some(error) = failure {
            return Err(error);
        }
        let mut parts: Vec<Vec<UpdateReport>> = (0..meta.len()).map(|_| Vec::new()).collect();
        for shard_parts in partials {
            for (index, report) in shard_parts {
                parts[index].push(report);
            }
        }
        Ok(parts
            .into_iter()
            .zip(meta)
            .map(|(p, (rule_id, was_insert))| merge_update_reports(rule_id, was_insert, p))
            .collect())
    }

    /// Runs a compaction pass on every shard (see [`DeltaNet::compact`]) and
    /// returns the summed report. Shards with an auto-compaction threshold
    /// configured also compact independently as their own garbage accrues.
    pub fn compact(&mut self) -> CompactReport {
        let mut total = CompactReport::default();
        for shard in &mut self.shards {
            let report = shard.compact();
            total.merged_atoms += report.merged_atoms;
            total.allocated_before += report.allocated_before;
            total.allocated_after += report.allocated_after;
            total.bytes_before += report.bytes_before;
            total.bytes_after += report.bytes_after;
        }
        total
    }

    /// Checks the entire data plane for forwarding loops, shard-wise; the
    /// same verdicts as [`DeltaNet::check_all_loops`] on an unsharded
    /// engine, with cycles found in several shards merged.
    pub fn check_all_loops(&self) -> Vec<InvariantViolation> {
        merge_violations(self.shards.iter().flat_map(DeltaNet::check_all_loops))
    }

    /// Checks the entire data plane for blackholes, shard-wise (see
    /// [`DeltaNet::check_all_blackholes`]), merging per-node findings.
    pub fn check_all_blackholes(&self) -> Vec<InvariantViolation> {
        merge_violations(self.shards.iter().flat_map(DeltaNet::check_all_blackholes))
    }

    /// The violations currently active, merged shard-wise from the
    /// per-shard [`crate::monitor::ViolationMonitor`]s: each shard tracks
    /// the loops and blackholes of its own atoms, and a cycle or switch
    /// reported by several shards merges into one violation — the same
    /// merge the full-scan queries use, so the answer matches
    /// [`ShardedDeltaNet::check_all_loops`] +
    /// [`ShardedDeltaNet::check_all_blackholes`]. `None` when monitoring is
    /// off ([`DeltaNetConfig::monitor_violations`]).
    pub fn active_violations(&self) -> Option<Vec<InvariantViolation>> {
        let mut parts = Vec::new();
        for shard in &self.shards {
            parts.extend(shard.active_violations()?);
        }
        Some(merge_violations(parts))
    }

    /// The identities of the currently active violations, merged across
    /// shards (sorted, deduplicated). Cheap — no packet rendering; the
    /// `deltanet replay --monitor` stream diffs this per operation. `None`
    /// when monitoring is off.
    pub fn monitor_keys(&self) -> Option<BTreeSet<crate::monitor::ViolationKey>> {
        let mut keys = BTreeSet::new();
        for shard in &self.shards {
            keys.extend(shard.monitor()?.active_keys());
        }
        Some(keys)
    }

    /// The what-if link-failure query (§4.3.2), shard-wise: each shard
    /// reports the impact among its own atoms and the partial reports merge
    /// — packets normalized, affected links deduplicated, violations
    /// combined.
    pub fn link_failure_impact(&self, link: LinkId, check_loops: bool) -> WhatIfReport {
        let mut affected_classes = 0;
        let mut packets = Vec::new();
        let mut links: BTreeSet<LinkId> = BTreeSet::new();
        let mut violations = Vec::new();
        for shard in &self.shards {
            let report = shard.link_failure_impact(link, check_loops);
            affected_classes += report.affected_classes;
            packets.extend(report.affected_packets);
            links.extend(report.affected_links);
            violations.extend(report.violations);
        }
        WhatIfReport {
            link: Some(link),
            affected_classes,
            affected_packets: normalize(packets),
            affected_links: links.into_iter().collect(),
            violations: merge_violations(violations),
        }
    }

    /// The atoms of `link`'s labels across all shards, as normalized
    /// intervals — the shard-agnostic form of [`DeltaNet::label`].
    pub fn label_intervals(&self, link: LinkId) -> Vec<Interval> {
        normalize(
            self.shards
                .iter()
                .flat_map(|shard| {
                    shard
                        .label(link)
                        .iter()
                        .map(|a| shard.atoms().atom_interval(a))
                        .collect::<Vec<_>>()
                })
                .collect(),
        )
    }

    /// Number of packet classes: the sum of each shard's atoms within its
    /// own range. Exceeds an unsharded engine's [`DeltaNet::atom_count`] by
    /// exactly one per interior shard boundary no rule bound coincides with
    /// (see the module docs on boundary semantics).
    pub fn atom_count(&self) -> usize {
        self.shards.iter().map(DeltaNet::owned_atom_count).sum()
    }

    /// Sum of the shards' atom-id table sizes (see
    /// [`DeltaNet::allocated_atoms`]).
    pub fn allocated_atoms(&self) -> usize {
        self.shards.iter().map(DeltaNet::allocated_atoms).sum()
    }

    /// Sum of the shards' reclaimable interval bounds (see
    /// [`DeltaNet::reclaimable_bounds`]).
    pub fn reclaimable_bounds(&self) -> usize {
        self.shards.iter().map(DeltaNet::reclaimable_bounds).sum()
    }

    /// Total compaction passes run across all shards.
    pub fn compactions(&self) -> usize {
        self.shards.iter().map(DeltaNet::compactions).sum()
    }

    /// Heap bytes addressed by live state: the shards summed, plus the
    /// global rule registry. The shared [`Topology`] is cloned into each
    /// shard but — like the single engine — never counted, so the sum does
    /// not multiply it; a boundary-straddling rule's per-shard copies are
    /// counted, which is the real cost of splitting it.
    pub fn live_bytes(&self) -> usize {
        self.shards.iter().map(DeltaNet::live_bytes).sum::<usize>()
            + self.rules.len() * (std::mem::size_of::<RuleId>() + std::mem::size_of::<Rule>() + 8)
    }

    /// Estimated heap memory used by the sharded engine (allocated
    /// capacities; same accounting rules as [`ShardedDeltaNet::live_bytes`]).
    pub fn memory_estimate(&self) -> usize {
        self.shards
            .iter()
            .map(DeltaNet::memory_estimate)
            .sum::<usize>()
            + self.rules.capacity()
                * (std::mem::size_of::<RuleId>() + std::mem::size_of::<Rule>() + 8)
    }
}

/// Applies one shard's routed sub-sequence, tagging each report with the
/// batch index of its operation.
fn apply_routed(shard: &mut DeltaNet, group: &[(usize, Op)]) -> Vec<(usize, UpdateReport)> {
    group
        .iter()
        .map(|&(index, op)| {
            let report = shard
                .try_apply(&op)
                .expect("validated op cannot fail inside a shard");
            (index, report)
        })
        .collect()
}

/// Merges the per-shard reports of one operation: affected classes are
/// disjoint across shards and sum; changed links deduplicate; violations
/// found in several shards merge per cycle / per node.
fn merge_update_reports(
    rule_id: Option<RuleId>,
    was_insert: bool,
    parts: Vec<UpdateReport>,
) -> UpdateReport {
    let mut affected_classes = 0;
    let mut links: BTreeSet<LinkId> = BTreeSet::new();
    let mut violations = Vec::new();
    for part in parts {
        affected_classes += part.affected_classes;
        links.extend(part.changed_links);
        violations.extend(part.violations);
    }
    UpdateReport {
        rule_id,
        was_insert,
        affected_classes,
        changed_links: links.into_iter().collect(),
        violations: merge_violations(violations),
    }
}

impl Checker for ShardedDeltaNet {
    fn name(&self) -> &'static str {
        "delta-net-sharded"
    }

    fn apply(&mut self, op: &Op) -> UpdateReport {
        self.try_apply(op).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_apply(&mut self, op: &Op) -> Result<UpdateReport, UpdateError> {
        match op {
            Op::Insert(rule) => self.try_insert_rule(*rule),
            Op::Remove(id) => self.try_remove_rule(*id),
        }
    }

    fn what_if_link_failure(&self, link: LinkId, check_loops: bool) -> WhatIfReport {
        self.link_failure_impact(link, check_loops)
    }

    fn rule_count(&self) -> usize {
        self.rules.len()
    }

    fn class_count(&self) -> usize {
        self.atom_count()
    }

    fn memory_bytes(&self) -> usize {
        self.memory_estimate()
    }

    fn active_violations(&self) -> Option<Vec<InvariantViolation>> {
        ShardedDeltaNet::active_violations(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::ip::IpPrefix;
    use netmodel::topology::NodeId;

    fn prefix(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn two_switch() -> (Topology, NodeId, NodeId, LinkId) {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let l = topo.add_link(a, b);
        (topo, a, b, l)
    }

    #[test]
    fn boundaries_partition_the_space_evenly() {
        for shards in [1usize, 2, 3, 4, 7, 8] {
            let (topo, _, _, _) = two_switch();
            let net = ShardedDeltaNet::new(topo, DeltaNetConfig::default(), shards);
            let ranges = net.shard_ranges();
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].lo(), 0);
            assert_eq!(ranges[shards - 1].hi(), 1u128 << 32);
            for w in ranges.windows(2) {
                assert_eq!(w[0].hi(), w[1].lo());
            }
            // Even to within one address.
            let sizes: Vec<u128> = ranges.iter().map(Interval::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "uneven split {sizes:?}");
        }
    }

    #[test]
    fn shard_of_respects_boundaries() {
        let (topo, _, _, _) = two_switch();
        let net = ShardedDeltaNet::new(topo, DeltaNetConfig::default(), 4);
        let quarter = 1u128 << 30;
        assert_eq!(net.shard_of(0), 0);
        assert_eq!(net.shard_of(quarter - 1), 0);
        assert_eq!(net.shard_of(quarter), 1);
        assert_eq!(net.shard_of(4 * quarter - 1), 3);
    }

    #[test]
    fn straddling_rule_is_split_and_rejoined() {
        let (topo, a, _, l) = two_switch();
        let mut net = ShardedDeltaNet::new(topo.clone(), DeltaNetConfig::default(), 4);
        let mut plain = DeltaNet::with_topology(topo);
        // 0.0.0.0/0 crosses all three interior boundaries.
        let wide = Rule::forward(RuleId(1), prefix("0.0.0.0/0"), 1, a, l);
        let sharded_report = net.insert_rule(wide);
        let plain_report = plain.insert_rule(wide);
        assert_eq!(sharded_report.changed_links, plain_report.changed_links);
        // One atom per shard vs one atom total.
        assert_eq!(sharded_report.affected_classes, 4);
        assert_eq!(plain_report.affected_classes, 1);
        // Observable labels agree.
        assert_eq!(net.label_intervals(l), vec![Interval::new(0, 1u128 << 32)]);
        // Removal undoes it everywhere.
        net.remove_rule(RuleId(1));
        assert!(net.label_intervals(l).is_empty());
        assert_eq!(net.rule_count(), 0);
        for shard in net.shards() {
            assert_eq!(shard.rule_count(), 0);
        }
    }

    #[test]
    fn duplicate_and_unknown_ops_error_without_partial_application() {
        let (topo, a, _, l) = two_switch();
        let mut net = ShardedDeltaNet::new(topo, DeltaNetConfig::default(), 2);
        let r = Rule::forward(RuleId(1), prefix("0.0.0.0/1"), 1, a, l);
        net.insert_rule(r);
        assert_eq!(
            net.try_insert_rule(r).unwrap_err(),
            UpdateError::DuplicateRule(RuleId(1))
        );
        assert_eq!(
            net.try_remove_rule(RuleId(9)).unwrap_err(),
            UpdateError::UnknownRule(RuleId(9))
        );
        let mut bad = r;
        bad.id = RuleId(2);
        bad.link = LinkId(100);
        assert!(matches!(
            net.try_insert_rule(bad).unwrap_err(),
            UpdateError::UnknownLink { .. }
        ));
        assert_eq!(net.rule_count(), 1);
    }

    #[test]
    fn apply_batch_matches_sequential_application() {
        let (topo, a, b, l) = two_switch();
        let mut topo = topo;
        let back = topo.add_link(b, a);
        let ops: Vec<Op> = (0..32u64)
            .map(|i| {
                let p = IpPrefix::ipv4((i as u32) << 27, 6);
                let (src, link) = if i % 2 == 0 { (a, l) } else { (b, back) };
                Op::Insert(Rule::forward(RuleId(i), p, (i % 7 + 1) as u32, src, link))
            })
            .chain((0..16u64).map(|i| Op::Remove(RuleId(i * 2))))
            .collect();
        let mut batched = ShardedDeltaNet::new(topo.clone(), DeltaNetConfig::default(), 3);
        let mut sequential = ShardedDeltaNet::new(topo, DeltaNetConfig::default(), 3);
        let mut batch_reports = Vec::new();
        for window in ops.chunks(5) {
            batch_reports.extend(batched.apply_batch(window).expect("well-formed"));
        }
        let mut seq_reports = Vec::new();
        for op in &ops {
            seq_reports.push(sequential.apply(op));
        }
        assert_eq!(batch_reports, seq_reports);
        for link in [l, back] {
            assert_eq!(
                batched.label_intervals(link),
                sequential.label_intervals(link)
            );
        }
        assert_eq!(batched.atom_count(), sequential.atom_count());
    }

    #[test]
    fn apply_batch_error_keeps_prefix_applied() {
        let (topo, a, _, l) = two_switch();
        let mut net = ShardedDeltaNet::new(topo, DeltaNetConfig::default(), 2);
        let r1 = Rule::forward(RuleId(1), prefix("0.0.0.0/2"), 1, a, l);
        let r2 = Rule::forward(RuleId(2), prefix("128.0.0.0/2"), 1, a, l);
        let err = net
            .apply_batch(&[
                Op::Insert(r1),
                Op::Insert(r2),
                Op::Remove(RuleId(99)),
                Op::Remove(RuleId(1)),
            ])
            .unwrap_err();
        assert_eq!(err.index, 2);
        assert_eq!(err.error, UpdateError::UnknownRule(RuleId(99)));
        // The prefix before the failing op stayed applied, the suffix did not.
        assert_eq!(net.rule_count(), 2);
        assert!(net.rule(RuleId(1)).is_some());
    }

    #[test]
    fn apply_batch_failure_leaves_registry_and_shards_agreeing() {
        // The pinned mid-batch failure semantics: after a batch fails at op
        // k, the engine state equals "exactly ops[..k] were applied" — the
        // registry and the per-shard rule sets must agree with each other
        // AND with a fresh engine that applied just the prefix. A duplicate
        // insert is the delicate case, because inserts are registered at
        // validation time and a desync would leave the duplicate's first
        // copy half-tracked.
        let (topo, a, _, l) = two_switch();
        let mut net = ShardedDeltaNet::new(topo.clone(), DeltaNetConfig::default(), 4);
        let wide = Rule::forward(RuleId(1), prefix("0.0.0.0/0"), 1, a, l);
        let narrow = Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 9, a, l);
        let dup = Rule::forward(RuleId(1), prefix("192.0.0.0/8"), 5, a, l);
        let late = Rule::forward(RuleId(3), prefix("64.0.0.0/8"), 3, a, l);
        let err = net
            .apply_batch(&[
                Op::Insert(wide),
                Op::Insert(narrow),
                Op::Insert(dup),
                Op::Insert(late),
            ])
            .unwrap_err();
        assert_eq!(err.index, 2);
        assert_eq!(err.error, UpdateError::DuplicateRule(RuleId(1)));

        // Registry holds exactly the applied prefix…
        assert_eq!(net.rule_count(), 2);
        assert_eq!(net.rule(RuleId(1)), Some(&wide));
        assert!(net.rule(RuleId(3)).is_none());
        // …and every shard agrees with the registry's clipped view: each
        // registered rule is present in exactly the shards its interval
        // touches, and nothing else is present anywhere.
        let ranges = net.shard_ranges();
        for (shard, range) in net.shards().iter().zip(&ranges) {
            for rule in [&wide, &narrow] {
                let touches = !rule.interval().intersection(range).is_empty();
                assert_eq!(shard.rule(rule.id).is_some(), touches);
            }
            assert!(shard.rule(RuleId(3)).is_none());
        }
        // Observational check against a fresh engine applying the prefix.
        let mut fresh = ShardedDeltaNet::new(topo, DeltaNetConfig::default(), 4);
        fresh
            .apply_batch(&[Op::Insert(wide), Op::Insert(narrow)])
            .unwrap();
        assert_eq!(net.label_intervals(l), fresh.label_intervals(l));
        assert_eq!(net.atom_count(), fresh.atom_count());
        assert_eq!(net.live_bytes(), fresh.live_bytes());
    }

    #[test]
    fn try_remove_rule_error_path_leaves_state_untouched() {
        // The registry entry must only be popped after every touched shard
        // succeeded; in particular the unknown-id error path must not
        // change anything at all.
        let (topo, a, _, l) = two_switch();
        let mut net = ShardedDeltaNet::new(topo, DeltaNetConfig::default(), 4);
        let wide = Rule::forward(RuleId(1), prefix("0.0.0.0/0"), 1, a, l);
        net.insert_rule(wide);
        let rules_before = net.rule_count();
        let atoms_before = net.atom_count();
        let bytes_before = net.live_bytes();
        let labels_before = net.label_intervals(l);

        let err = net.try_remove_rule(RuleId(99)).unwrap_err();
        assert_eq!(err, UpdateError::UnknownRule(RuleId(99)));
        assert_eq!(net.rule_count(), rules_before);
        assert_eq!(net.atom_count(), atoms_before);
        assert_eq!(net.live_bytes(), bytes_before);
        assert_eq!(net.label_intervals(l), labels_before);
        assert!(net.rule(RuleId(1)).is_some());
        for shard in net.shards() {
            assert!(shard.rule(RuleId(1)).is_some());
        }

        // The real removal still works afterwards and clears every shard.
        net.try_remove_rule(RuleId(1)).unwrap();
        assert_eq!(net.rule_count(), 0);
        assert!(net.shards().iter().all(|s| s.rule(RuleId(1)).is_none()));
        assert!(net.label_intervals(l).is_empty());
    }

    #[test]
    fn one_shard_memory_close_to_plain_engine() {
        // The satellite guarantee: summing shards never double-counts the
        // shared Topology, so a 1-shard sharded engine costs what the plain
        // engine costs plus only its own small rule registry.
        let (topo, a, _, l) = two_switch();
        let mut sharded = ShardedDeltaNet::new(topo.clone(), DeltaNetConfig::default(), 1);
        let mut plain = DeltaNet::with_topology(topo);
        for i in 0..200u64 {
            let r = Rule::forward(
                RuleId(i),
                IpPrefix::ipv4((i as u32) * 0x0100_0000 / 4, 10),
                (i % 13 + 1) as u32,
                a,
                l,
            );
            sharded.insert_rule(r);
            plain.insert_rule(r);
        }
        let plain_live = plain.live_bytes();
        let sharded_live = sharded.live_bytes();
        assert!(sharded_live >= plain_live);
        let registry = sharded.rules().count()
            * (std::mem::size_of::<RuleId>() + std::mem::size_of::<Rule>() + 8);
        assert!(
            sharded_live <= plain_live + registry + plain_live / 10,
            "sharded {sharded_live} vs plain {plain_live} (+registry {registry})"
        );
        assert!(sharded.memory_estimate() >= sharded_live);
        assert_eq!(sharded.class_count(), plain.atom_count());
    }

    #[test]
    fn checker_surface_and_compaction() {
        let (topo, a, _, l) = two_switch();
        let mut net = ShardedDeltaNet::new(
            topo,
            DeltaNetConfig {
                check_loops_per_update: false,
                ..Default::default()
            },
            4,
        );
        assert_eq!(net.name(), "delta-net-sharded");
        assert_eq!(
            net.parallelism().workers(),
            Parallelism::from_env().workers()
        );
        let wide = Rule::forward(RuleId(1), prefix("0.0.0.0/0"), 1, a, l);
        let narrow = Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 9, a, l);
        net.apply(&Op::Insert(wide));
        net.apply(&Op::Insert(narrow));
        assert_eq!(net.rule_count(), 2);
        let whatif = net.what_if_link_failure(l, true);
        assert_eq!(whatif.affected_packets, vec![Interval::new(0, 1u128 << 32)]);
        assert!(net.memory_bytes() > 0);
        net.apply(&Op::Remove(RuleId(2)));
        assert!(net.reclaimable_bounds() > 0);
        let report = net.compact();
        assert!(report.merged_atoms > 0);
        assert_eq!(net.reclaimable_bounds(), 0);
        assert_eq!(net.compactions(), 4);
        // After a pass every shard's id table equals its full atom count —
        // owned atoms plus the structural out-of-range remainder pieces.
        assert_eq!(
            net.allocated_atoms(),
            net.shards().iter().map(DeltaNet::atom_count).sum::<usize>()
        );
        assert!(net.allocated_atoms() >= net.atom_count());
        // Boundary pins survive compaction: one class per shard remains.
        assert_eq!(net.class_count(), 4);
        assert_eq!(net.label_intervals(l), vec![Interval::new(0, 1u128 << 32)]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let (topo, _, _, _) = two_switch();
        ShardedDeltaNet::new(topo, DeltaNetConfig::default(), 0);
    }

    /// A loop-then-blackhole flap on two switches: `I 1` routes a→b (traffic
    /// strands at b: blackhole), `I 2` routes b→a (loop appears, blackhole
    /// resolves), `R 2` resolves the loop and re-strands the traffic.
    fn flap_ops(topo: &mut Topology, a: NodeId, b: NodeId, l: LinkId) -> Vec<Op> {
        let back = topo.add_link(b, a);
        vec![
            Op::Insert(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, a, l)),
            Op::Insert(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, b, back)),
            Op::Remove(RuleId(2)),
        ]
    }

    #[test]
    fn monitor_observer_streams_transitions_per_update() {
        use crate::monitor::ViolationKey;
        use std::sync::{Arc, Mutex};
        for shards in [1usize, 2, 4] {
            let (mut topo, a, b, l) = two_switch();
            let ops = flap_ops(&mut topo, a, b, l);
            let mut net = ShardedDeltaNet::new(topo, DeltaNetConfig::default(), shards);
            net.enable_monitor();
            let seen: Arc<Mutex<Vec<MonitorTransitions>>> = Arc::default();
            let sink = Arc::clone(&seen);
            assert!(net.set_monitor_observer(move |t| sink.lock().unwrap().push(t.clone())));
            for op in &ops {
                net.try_apply(op).unwrap();
            }
            let seen = seen.lock().unwrap();
            let cycle = ViolationKey::Loop(vec![a, b]);
            let hole = ViolationKey::Blackhole(b);
            assert_eq!(
                *seen,
                vec![
                    MonitorTransitions {
                        appeared: vec![hole.clone()],
                        resolved: vec![],
                    },
                    MonitorTransitions {
                        appeared: vec![cycle.clone()],
                        resolved: vec![hole.clone()],
                    },
                    MonitorTransitions {
                        appeared: vec![hole],
                        resolved: vec![cycle],
                    },
                ],
                "at {shards} shards"
            );
        }
    }

    #[test]
    fn monitor_observer_batch_window_and_failure_prefix() {
        use crate::monitor::ViolationKey;
        use std::sync::{Arc, Mutex};
        let (mut topo, a, b, l) = two_switch();
        let ops = flap_ops(&mut topo, a, b, l);
        let mut net = ShardedDeltaNet::new(topo, DeltaNetConfig::default(), 2);
        net.enable_monitor();
        let seen: Arc<Mutex<Vec<MonitorTransitions>>> = Arc::default();
        let sink = Arc::clone(&seen);
        net.set_monitor_observer(move |t| sink.lock().unwrap().push(t.clone()));
        // One window covering the whole flap: loop + and - cancel out, only
        // the blackhole surfaces — batch-granularity transitions.
        net.apply_batch(&ops).unwrap();
        assert_eq!(
            *seen.lock().unwrap(),
            vec![MonitorTransitions {
                appeared: vec![ViolationKey::Blackhole(b)],
                resolved: vec![],
            }]
        );
        seen.lock().unwrap().clear();
        // A window failing mid-batch still reports its applied prefix: the
        // re-insert of rule 2 resolves the blackhole and re-raises the loop
        // before the unknown removal aborts the window.
        let back = net.topology().link_between(b, a).unwrap();
        let failing = vec![
            Op::Insert(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, b, back)),
            Op::Remove(RuleId(99)),
        ];
        let err = net.apply_batch(&failing).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(
            *seen.lock().unwrap(),
            vec![MonitorTransitions {
                appeared: vec![ViolationKey::Loop(vec![a, b])],
                resolved: vec![ViolationKey::Blackhole(b)],
            }]
        );
    }

    #[test]
    fn monitor_observer_lifecycle() {
        use std::sync::{Arc, Mutex};
        let (mut topo, a, b, l) = two_switch();
        let ops = flap_ops(&mut topo, a, b, l);
        // Without monitoring, registration is refused.
        let mut unmonitored = ShardedDeltaNet::new(topo.clone(), DeltaNetConfig::default(), 2);
        assert!(!unmonitored.set_monitor_observer(|_| {}));
        // Attaching to a dirty engine does not replay existing violations,
        // and clearing stops the stream; a clone carries no observer.
        let mut net = ShardedDeltaNet::new(topo, DeltaNetConfig::default(), 2);
        net.enable_monitor();
        net.try_apply(&ops[0]).unwrap();
        net.try_apply(&ops[1]).unwrap(); // loop active
        let seen: Arc<Mutex<Vec<MonitorTransitions>>> = Arc::default();
        let sink = Arc::clone(&seen);
        net.set_monitor_observer(move |t| sink.lock().unwrap().push(t.clone()));
        assert!(seen.lock().unwrap().is_empty(), "no attach-time wave");
        let mut copy = net.clone();
        copy.try_apply(&ops[2]).unwrap();
        assert!(seen.lock().unwrap().is_empty(), "clone has no observer");
        net.clear_monitor_observer();
        net.try_apply(&ops[2]).unwrap();
        assert!(seen.lock().unwrap().is_empty(), "cleared observer is quiet");
    }
}
