//! Incremental violation monitoring: forwarding loops and blackholes
//! maintained as *live state*, updated from each update's delta-graph.
//!
//! The per-update checks of §4.3.1 answer "did this update create a loop?"
//! but forget the answer immediately: a long-lived deployment that wants to
//! know "which violations exist right now?" has to rescan the whole data
//! plane (`check_all_loops` + `check_all_blackholes`), paying O(plane) per
//! query under churn. [`ViolationMonitor`] turns the per-update increment
//! into the unit of work instead: it holds the current violation set and
//! repairs it from each [`DeltaGraph`], so reading the active set is O(1)
//! in the size of the network and maintenance is proportional to the
//! update's footprint, not the plane.
//!
//! ## How the repair works
//!
//! Both invariants are *per-atom* properties of the edge labels:
//!
//! * atom α loops on cycle C iff every link of C carries α — so α's loop
//!   membership can only change when some `(link, α)` label changed, i.e.
//!   when α appears in the delta-graph;
//! * atom α is blackholed at switch n iff some in-link of n carries α and
//!   no out-link does — so `(n, α)` can only change when a changed
//!   `(link, α)` pair has n as an endpoint.
//!
//! The monitor therefore recomputes, from the current labels, the loop set
//! of exactly the atoms in the delta — changed pairs plus atoms created by
//! *splits* — through the same walk the full scan uses, retiring entries
//! the update broke and admitting the ones it created, and re-checks the
//! blackhole predicate at the `(endpoint, atom)` pairs the delta touched
//! (split atoms at every switch, since their labels are inherited rather
//! than enumerated). Violation
//! identity is the canonical cycle for loops and the switch for blackholes;
//! an identity whose atom set drains is *retired* (a
//! [`MonitorEvent::resolved`]), a fresh identity is *raised*
//! ([`MonitorEvent::appeared`]).
//!
//! Because the repair goes through [`crate::loops::cycles_for_atoms_via`]
//! and [`crate::blackholes::is_blackholed_at`] — the same primitives as the
//! full scans — [`ViolationMonitor::active_violations`] is bit-identical to
//! `check_all_loops() ++ check_all_blackholes()` after every operation; the
//! randomized differential suite (`tests/monitor_differential.rs`) pins
//! this, including across [`crate::DeltaNet::compact`] renumbering (via
//! [`ViolationMonitor::remap`]) and under sharding.

use crate::atoms::{AtomId, AtomMap, REMAP_DEAD};
use crate::atomset::AtomSet;
use crate::blackholes;
use crate::delta_graph::DeltaGraph;
use crate::labels::Labels;
use crate::loops;
use netmodel::checker::InvariantViolation;
use netmodel::topology::{NodeId, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The identity of a tracked violation: what stays stable while the set of
/// affected packets fluctuates under churn.
#[derive(Clone, Debug, Hash, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKey {
    /// A forwarding loop, identified by its canonical node cycle.
    Loop(Vec<NodeId>),
    /// A blackhole, identified by the switch where traffic dies.
    Blackhole(NodeId),
}

impl fmt::Display for ViolationKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKey::Loop(nodes) => {
                write!(f, "forwarding loop through ")?;
                for (i, n) in nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
            ViolationKey::Blackhole(node) => write!(f, "blackhole at {node}"),
        }
    }
}

/// A violation-set transition produced by one update: a violation identity
/// that appeared (was raised) or resolved (was retired).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonitorEvent {
    /// The violation that changed state.
    pub key: ViolationKey,
    /// `true` if the violation appeared with this update, `false` if it
    /// resolved.
    pub appeared: bool,
}

impl MonitorEvent {
    fn appeared(key: ViolationKey) -> Self {
        MonitorEvent {
            key,
            appeared: true,
        }
    }

    fn resolved(key: ViolationKey) -> Self {
        MonitorEvent {
            key,
            appeared: false,
        }
    }
}

impl fmt::Display for MonitorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", if self.appeared { '+' } else { '-' }, self.key)
    }
}

/// The violation-identity transitions of one update or batch window:
/// everything that appeared and everything that resolved, each in ascending
/// [`ViolationKey`] order. This is the payload pushed to observers
/// registered with [`crate::ShardedDeltaNet::set_monitor_observer`] — the
/// same diff `deltanet replay --monitor` prints, so a subscriber stream and
/// an offline replay of the same ops are comparable event for event.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MonitorTransitions {
    /// Violations newly present after the update, sorted.
    pub appeared: Vec<ViolationKey>,
    /// Violations no longer present after the update, sorted.
    pub resolved: Vec<ViolationKey>,
}

impl MonitorTransitions {
    /// Whether the update changed no violation identity.
    pub fn is_empty(&self) -> bool {
        self.appeared.is_empty() && self.resolved.is_empty()
    }

    /// Total transitions (appeared + resolved).
    pub fn len(&self) -> usize {
        self.appeared.len() + self.resolved.len()
    }
}

/// Diffs successive active-violation identity sets into
/// [`MonitorTransitions`]. This is the push-side twin of polling
/// [`ViolationMonitor::last_events`]: feed it the merged key set after each
/// update (or batch window) and it yields exactly the identities that
/// appeared and resolved since the previous observation — deterministic
/// regardless of how many shards produced the keys or in which order the
/// shards applied their groups.
#[derive(Clone, Debug, Default)]
pub struct TransitionTracker {
    prev: BTreeSet<ViolationKey>,
}

impl TransitionTracker {
    /// A tracker whose baseline is the empty violation set.
    pub fn new() -> Self {
        TransitionTracker::default()
    }

    /// A tracker whose baseline is `current` — use when attaching to an
    /// engine that already has active violations, so the attach itself does
    /// not masquerade as a wave of `appeared` events.
    pub fn starting_from(current: BTreeSet<ViolationKey>) -> Self {
        TransitionTracker { prev: current }
    }

    /// Diffs `now` against the previous observation and advances to it.
    pub fn observe(&mut self, now: BTreeSet<ViolationKey>) -> MonitorTransitions {
        let transitions = MonitorTransitions {
            appeared: now.difference(&self.prev).cloned().collect(),
            resolved: self.prev.difference(&now).cloned().collect(),
        };
        self.prev = now;
        transitions
    }

    /// The violation identities as of the last observation.
    pub fn current(&self) -> &BTreeSet<ViolationKey> {
        &self.prev
    }
}

/// The live violation state: every forwarding loop and blackhole currently
/// present in the data plane, maintained incrementally (see the module
/// docs). Created empty alongside an empty engine
/// ([`crate::DeltaNetConfig::monitor_violations`]) or seeded from an
/// existing data plane ([`crate::DeltaNet::enable_monitor`]).
#[derive(Clone, Debug, Default)]
pub struct ViolationMonitor {
    /// Active loops: canonical cycle → atoms currently looping through it.
    loops: BTreeMap<Vec<NodeId>, AtomSet>,
    /// Active blackholes: switch → atoms currently dying there.
    holes: BTreeMap<NodeId, AtomSet>,
    /// The appeared/resolved transitions of the most recent update.
    events: Vec<MonitorEvent>,
}

impl ViolationMonitor {
    /// An empty monitor (correct for an engine with no rules installed).
    pub fn new() -> Self {
        ViolationMonitor::default()
    }

    /// Seeds a monitor from an existing data plane with one full scan —
    /// the only O(plane) step; everything afterwards is incremental.
    pub fn from_state(topology: &Topology, labels: &Labels, atoms: &AtomMap) -> Self {
        let all: AtomSet = atoms.iter().map(|(a, _)| a).collect();
        let cycles = loops::cycles_for_atoms_via(topology, labels, &all, |node, atom| {
            loops::successor(topology, labels, node, atom)
        });
        let holes = topology
            .switch_nodes()
            .map(|node| {
                (
                    node,
                    blackholes::blackholed_atoms_at(topology, labels, node),
                )
            })
            .filter(|(_, set)| !set.is_empty())
            .collect();
        ViolationMonitor {
            loops: cycles.into_iter().collect(),
            holes,
            events: Vec::new(),
        }
    }

    /// Seeds a monitor directly from precomputed violation maps — the
    /// multi-field engine's entry point, whose cross-field scans
    /// ([`crate::multifield`]) produce these maps rather than label walks.
    pub(crate) fn from_maps(
        loops: BTreeMap<Vec<NodeId>, AtomSet>,
        holes: BTreeMap<NodeId, AtomSet>,
    ) -> Self {
        let mut monitor = ViolationMonitor {
            loops,
            holes,
            events: Vec::new(),
        };
        monitor.loops.retain(|_, set| !set.is_empty());
        monitor.holes.retain(|_, set| !set.is_empty());
        monitor
    }

    /// Replaces the tracked state with freshly computed violation maps,
    /// recording appeared/resolved transitions at the identity level —
    /// exactly like [`ViolationMonitor::apply_update`] does, but with the
    /// new state handed in whole instead of repaired from a delta. The
    /// multi-field engine uses this: its violation state depends on
    /// cross-field intersections that no single-field delta-graph
    /// describes. Since PR 9 the maps handed in are *not* full rescans:
    /// the engine keeps a per-secondary-class ledger
    /// ([`crate::multifield::MfClassState`]), repairs only the
    /// `(primary atom, secondary class)` slices an update touched, and
    /// swaps in the rebuilt class union here — identity-level events stay
    /// exact because this diff is computed against the previous union.
    pub(crate) fn replace_state(
        &mut self,
        loops: BTreeMap<Vec<NodeId>, AtomSet>,
        holes: BTreeMap<NodeId, AtomSet>,
    ) {
        self.events.clear();
        let loops_before: BTreeSet<Vec<NodeId>> = self.loops.keys().cloned().collect();
        let holes_before: BTreeSet<NodeId> = self.holes.keys().copied().collect();
        self.loops = loops;
        self.loops.retain(|_, set| !set.is_empty());
        self.holes = holes;
        self.holes.retain(|_, set| !set.is_empty());
        for cycle in &loops_before {
            if !self.loops.contains_key(cycle) {
                self.events
                    .push(MonitorEvent::resolved(ViolationKey::Loop(cycle.clone())));
            }
        }
        for cycle in self.loops.keys() {
            if !loops_before.contains(cycle) {
                self.events
                    .push(MonitorEvent::appeared(ViolationKey::Loop(cycle.clone())));
            }
        }
        for &node in &holes_before {
            if !self.holes.contains_key(&node) {
                self.events
                    .push(MonitorEvent::resolved(ViolationKey::Blackhole(node)));
            }
        }
        for &node in self.holes.keys() {
            if !holes_before.contains(&node) {
                self.events
                    .push(MonitorEvent::appeared(ViolationKey::Blackhole(node)));
            }
        }
    }

    /// Repairs the violation state from one update's delta-graph, recording
    /// the appeared/resolved transitions (readable via
    /// [`ViolationMonitor::last_events`] until the next update).
    ///
    /// `labels` must be the *post-update* edge labels of the engine that
    /// produced `delta` — exactly what [`crate::DeltaNet`] passes when
    /// feeding its monitor.
    pub fn apply_update(&mut self, topology: &Topology, labels: &Labels, delta: &DeltaGraph) {
        self.events.clear();
        if delta.splits.is_empty() && delta.added.is_empty() && delta.removed.is_empty() {
            return;
        }
        let loops_before: BTreeSet<Vec<NodeId>> = self.loops.keys().cloned().collect();
        let holes_before: BTreeSet<NodeId> = self.holes.keys().copied().collect();

        // The atoms whose violation membership may differ from the tracked
        // state: atoms with changed labels, plus every atom created by a
        // split. Split atoms are *recomputed* from the current labels, never
        // inferred from their old atom's tracked membership — on an
        // aggregated delta-graph (§3.3) the split may have happened after
        // label changes earlier in the same window, so the tracked (pre-
        // window) membership of the old atom says nothing about the new one.
        let mut affected = delta.affected_atoms();
        for pair in &delta.splits {
            affected.insert(pair.new);
        }

        // 1. Loops: retire every candidate atom from every tracked cycle,
        // then re-admit whatever a fresh walk (the full scan's own
        // primitive) finds for exactly those atoms.
        for set in self.loops.values_mut() {
            set.difference_with(&affected);
        }
        let recomputed = loops::cycles_for_atoms_via(topology, labels, &affected, |node, atom| {
            loops::successor(topology, labels, node, atom)
        });
        for (cycle, set) in recomputed {
            self.loops.entry(cycle).or_default().union_with(&set);
        }
        self.loops.retain(|_, set| !set.is_empty());

        // 2. Blackholes: the predicate at (n, α) reads only the labels of
        // n's in- and out-links for α, so for changed pairs the candidates
        // are exactly their endpoints; a split atom (which has labels
        // wherever its old atom did, possibly edited later in the window)
        // is re-checked at every switch. Drop-node sinks are never switches
        // (see `blackholes` module docs) and are skipped.
        let mut candidates: BTreeSet<(NodeId, AtomId)> = BTreeSet::new();
        for &(link, atom) in delta.added.iter().chain(delta.removed.iter()) {
            let l = topology.link(link);
            if !topology.is_drop_node(l.src) {
                candidates.insert((l.src, atom));
            }
            if !topology.is_drop_node(l.dst) {
                candidates.insert((l.dst, atom));
            }
        }
        for pair in &delta.splits {
            for node in topology.switch_nodes() {
                candidates.insert((node, pair.new));
            }
        }
        for (node, atom) in candidates {
            if blackholes::is_blackholed_at(topology, labels, node, atom) {
                self.holes.entry(node).or_default().insert(atom);
            } else if let Some(set) = self.holes.get_mut(&node) {
                set.remove(atom);
            }
        }
        self.holes.retain(|_, set| !set.is_empty());

        // 4. Transitions at the violation-identity level.
        for cycle in &loops_before {
            if !self.loops.contains_key(cycle) {
                self.events
                    .push(MonitorEvent::resolved(ViolationKey::Loop(cycle.clone())));
            }
        }
        for cycle in self.loops.keys() {
            if !loops_before.contains(cycle) {
                self.events
                    .push(MonitorEvent::appeared(ViolationKey::Loop(cycle.clone())));
            }
        }
        for &node in &holes_before {
            if !self.holes.contains_key(&node) {
                self.events
                    .push(MonitorEvent::resolved(ViolationKey::Blackhole(node)));
            }
        }
        for &node in self.holes.keys() {
            if !holes_before.contains(&node) {
                self.events
                    .push(MonitorEvent::appeared(ViolationKey::Blackhole(node)));
            }
        }
    }

    /// Rewrites every tracked atom through the remap table of a compaction
    /// pass ([`crate::atoms::AtomMap::renumber`]), dropping reclaimed ids.
    /// A reclaimed atom always merged into a live, label-identical
    /// neighbour, so no violation identity can appear or resolve here — the
    /// active set is invariant across compaction (pinned by the
    /// differential suite).
    pub fn remap(&mut self, remap: &[u32]) {
        let remap_set = |set: &AtomSet| -> AtomSet {
            set.iter()
                .filter_map(|a| {
                    let new = remap[a.index()];
                    (new != REMAP_DEAD).then_some(AtomId(new))
                })
                .collect()
        };
        for set in self.loops.values_mut() {
            *set = remap_set(set);
        }
        self.loops.retain(|_, set| !set.is_empty());
        for set in self.holes.values_mut() {
            *set = remap_set(set);
        }
        self.holes.retain(|_, set| !set.is_empty());
        self.events.clear();
    }

    /// The violations currently active, rendered exactly like
    /// `check_all_loops()` followed by `check_all_blackholes()` (same
    /// grouping, normalization, and order), so differential comparison is
    /// plain `Vec` equality. The state itself is maintained — no scan runs
    /// here; cost is proportional to the active violations only.
    pub fn active_violations(&self, atoms: &AtomMap) -> Vec<InvariantViolation> {
        let mut out = loops::into_violations(
            self.loops.iter().map(|(c, s)| (c.clone(), s.clone())),
            atoms,
        );
        out.extend(blackholes::render_blackholes(
            self.holes.iter().map(|(n, s)| (*n, s)),
            atoms,
        ));
        out
    }

    /// The identities of the currently active violations, in sorted order
    /// (loops by cycle, then blackholes by node). Cheap: no packet-interval
    /// rendering.
    pub fn active_keys(&self) -> Vec<ViolationKey> {
        self.loops
            .keys()
            .map(|c| ViolationKey::Loop(c.clone()))
            .chain(self.holes.keys().map(|&n| ViolationKey::Blackhole(n)))
            .collect()
    }

    /// Number of active forwarding loops (distinct cycles). O(1).
    pub fn loop_count(&self) -> usize {
        self.loops.len()
    }

    /// Number of active blackholes (distinct switches). O(1).
    pub fn blackhole_count(&self) -> usize {
        self.holes.len()
    }

    /// Whether no violation is currently active.
    pub fn is_clean(&self) -> bool {
        self.loops.is_empty() && self.holes.is_empty()
    }

    /// The appeared/resolved transitions of the most recent update (empty
    /// after a remap, which never transitions an identity).
    pub fn last_events(&self) -> &[MonitorEvent] {
        &self.events
    }

    /// Exports the tracked violation state for a snapshot: the active loops
    /// as `(canonical cycle, raw atom-set words)` and the active blackholes
    /// as `(switch, raw atom-set words)`. Events are transient per-update
    /// state and are not exported.
    #[allow(clippy::type_complexity)]
    pub fn export_parts(&self) -> (Vec<(Vec<NodeId>, Vec<u64>)>, Vec<(NodeId, Vec<u64>)>) {
        let loops = self
            .loops
            .iter()
            .map(|(c, s)| (c.clone(), s.words().to_vec()))
            .collect();
        let holes = self
            .holes
            .iter()
            .map(|(&n, s)| (n, s.words().to_vec()))
            .collect();
        (loops, holes)
    }

    /// Rebuilds a monitor from the export of
    /// [`ViolationMonitor::export_parts`], with an empty event list.
    pub fn from_parts(
        loops: Vec<(Vec<NodeId>, Vec<u64>)>,
        holes: Vec<(NodeId, Vec<u64>)>,
    ) -> ViolationMonitor {
        ViolationMonitor {
            loops: loops
                .into_iter()
                .map(|(c, w)| (c, AtomSet::from_raw_words(w)))
                .collect(),
            holes: holes
                .into_iter()
                .map(|(n, w)| (n, AtomSet::from_raw_words(w)))
                .collect(),
            events: Vec::new(),
        }
    }

    /// Whether two monitors track the same violation state — same loop
    /// cycles, same blackhole switches, logically equal atom sets (events
    /// are ignored). The restore path uses this to verify a deserialized
    /// monitor bit-for-bit against a fresh full-scan seed of the restored
    /// data plane.
    pub fn state_eq(&self, other: &ViolationMonitor) -> bool {
        self.loops == other.loops && self.holes == other.holes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DeltaNet, DeltaNetConfig};
    use netmodel::ip::IpPrefix;
    use netmodel::rule::{Rule, RuleId};

    fn prefix(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn monitored() -> DeltaNetConfig {
        DeltaNetConfig {
            monitor_violations: true,
            ..DeltaNetConfig::default()
        }
    }

    fn two_node_net() -> (
        DeltaNet,
        netmodel::topology::NodeId,
        netmodel::topology::NodeId,
    ) {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.add_link(a, b);
        topo.add_link(b, a);
        (DeltaNet::new(topo, monitored()), a, b)
    }

    #[test]
    fn loop_appears_and_resolves_with_events() {
        let (mut net, a, b) = two_node_net();
        let ab = net.topology().link_between(a, b).unwrap();
        let ba = net.topology().link_between(b, a).unwrap();
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, a, ab));
        assert!(net.monitor().unwrap().is_clean() || net.monitor().unwrap().loop_count() == 0);
        // Closing the cycle raises the loop and resolves the blackhole the
        // first (dangling) rule had created at b.
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, b, ba));
        let monitor = net.monitor().unwrap();
        assert_eq!(monitor.loop_count(), 1);
        assert_eq!(monitor.blackhole_count(), 0);
        let events = monitor.last_events();
        assert!(events
            .iter()
            .any(|e| e.appeared && matches!(e.key, ViolationKey::Loop(_))));
        assert!(events
            .iter()
            .any(|e| !e.appeared && e.key == ViolationKey::Blackhole(b)));
        // The live state equals the full scans, in their concatenation order.
        let mut expect = net.check_all_loops();
        expect.extend(net.check_all_blackholes());
        assert_eq!(net.active_violations().unwrap(), expect);
        // Removing one side retires the loop (and strands rule 2's traffic
        // at a, which becomes the new blackhole).
        net.remove_rule(RuleId(1));
        let monitor = net.monitor().unwrap();
        assert_eq!(monitor.loop_count(), 0);
        assert!(monitor
            .last_events()
            .iter()
            .any(|e| !e.appeared && matches!(e.key, ViolationKey::Loop(_))));
        assert_eq!(monitor.active_keys(), vec![ViolationKey::Blackhole(a)]);
    }

    #[test]
    fn blackhole_appears_on_gap_and_resolves_on_drop_rule() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        let db = topo.drop_link(b);
        let mut net = DeltaNet::new(topo, monitored());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, a, ab));
        let monitor = net.monitor().unwrap();
        assert_eq!(monitor.blackhole_count(), 1);
        assert_eq!(monitor.active_keys(), vec![ViolationKey::Blackhole(b)]);
        // An explicit drop rule is intended loss: the blackhole resolves.
        net.insert_rule(Rule::drop(RuleId(2), prefix("10.0.0.0/8"), 1, b, db));
        let monitor = net.monitor().unwrap();
        assert_eq!(monitor.blackhole_count(), 0);
        assert_eq!(
            monitor.last_events(),
            &[MonitorEvent::resolved(ViolationKey::Blackhole(b))]
        );
        // Withdrawing the drop rule re-raises it.
        net.remove_rule(RuleId(2));
        assert_eq!(net.monitor().unwrap().blackhole_count(), 1);
    }

    #[test]
    fn splits_inherit_membership_and_narrow_fix_splits_the_violation() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        let db = topo.drop_link(b);
        let mut net = DeltaNet::new(topo, monitored());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, a, ab));
        assert_eq!(net.monitor().unwrap().blackhole_count(), 1);
        // Dropping only half the range splits the blackholed atom; the
        // remaining half must stay blackholed (the split clone at work).
        net.insert_rule(Rule::drop(RuleId(2), prefix("10.0.0.0/9"), 1, b, db));
        let mut expect = net.check_all_loops();
        expect.extend(net.check_all_blackholes());
        assert_eq!(net.active_violations().unwrap(), expect);
        assert_eq!(net.monitor().unwrap().blackhole_count(), 1);
    }

    #[test]
    fn remap_survives_compaction_without_transitions() {
        let (mut net, a, b) = two_node_net();
        let ab = net.topology().link_between(a, b).unwrap();
        let ba = net.topology().link_between(b, a).unwrap();
        net.insert_rule(Rule::forward(RuleId(1), prefix("0.0.0.0/0"), 1, a, ab));
        net.insert_rule(Rule::forward(RuleId(2), prefix("0.0.0.0/0"), 1, b, ba));
        // Churn a narrow rule to create reclaimable bounds.
        net.insert_rule(Rule::forward(RuleId(3), prefix("10.0.0.0/8"), 9, a, ab));
        net.remove_rule(RuleId(3));
        assert!(net.reclaimable_bounds() > 0);
        assert_eq!(net.monitor().unwrap().loop_count(), 1);
        net.compact();
        let monitor = net.monitor().unwrap();
        assert_eq!(monitor.loop_count(), 1);
        assert!(monitor.last_events().is_empty());
        let mut expect = net.check_all_loops();
        expect.extend(net.check_all_blackholes());
        assert_eq!(net.active_violations().unwrap(), expect);
    }

    #[test]
    fn enable_monitor_seeds_from_existing_state() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        let ba = topo.add_link(b, a);
        let mut net = DeltaNet::with_topology(topo);
        assert!(net.monitor().is_none());
        assert!(net.active_violations().is_none());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, a, ab));
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, b, ba));
        net.enable_monitor();
        let monitor = net.monitor().unwrap();
        assert_eq!(monitor.loop_count(), 1);
        // Incremental from here on.
        net.remove_rule(RuleId(2));
        assert_eq!(net.monitor().unwrap().loop_count(), 0);
    }

    #[test]
    fn aggregated_window_feeds_monitor_like_per_update() {
        // The §3.3 aggregation path: a monitor may consume one aggregated
        // delta-graph for a whole update window instead of per-update
        // deltas. This is only sound because `DeltaGraph::merge` cancels
        // same-window insert+remove pairs to their net effect — without
        // cancellation the flapped pair below would feed the monitor a
        // phantom addition and removal in unknown relative order.
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        let ba = topo.add_link(b, a);
        let mut net = DeltaNet::with_topology(topo);
        let mut external = ViolationMonitor::new();

        net.begin_aggregate();
        // A loop raised and fully retracted inside the window (nets out) …
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, a, ab));
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, b, ba));
        net.remove_rule(RuleId(2));
        net.remove_rule(RuleId(1));
        // … and a loop still live when the window closes.
        net.insert_rule(Rule::forward(RuleId(3), prefix("192.0.0.0/8"), 1, a, ab));
        net.insert_rule(Rule::forward(RuleId(4), prefix("192.0.0.0/8"), 1, b, ba));
        let agg = net.take_aggregate();

        external.apply_update(net.topology(), net.labels(), &agg);
        let mut expect = net.check_all_loops();
        expect.extend(net.check_all_blackholes());
        assert_eq!(external.active_violations(net.atoms()), expect);
        assert_eq!(external.loop_count(), 1);

        // Second window — the split-after-membership-change regression: a
        // loop forms on the 10/8 atom *inside* the window, then a later
        // same-link, higher-priority /9 insert splits that atom without
        // touching any label. The split atom's loop membership exists only
        // in the current labels, not in the monitor's pre-window state, so
        // the repair must recompute it (inheriting from the tracked state
        // would silently drop the upper half of the looping packets).
        net.begin_aggregate();
        net.insert_rule(Rule::forward(RuleId(5), prefix("10.0.0.0/8"), 1, a, ab));
        net.insert_rule(Rule::forward(RuleId(6), prefix("10.0.0.0/8"), 1, b, ba));
        net.insert_rule(Rule::forward(RuleId(7), prefix("10.0.0.0/9"), 5, a, ab));
        let agg = net.take_aggregate();
        assert!(!agg.splits.is_empty(), "the /9 insert must split the atom");
        external.apply_update(net.topology(), net.labels(), &agg);
        // Bit-exact equality is the regression check: with inheritance the
        // split atom would be missing and the loop's packets would cover
        // only 10.0.0.0/9 instead of all of 10.0.0.0/8.
        let mut expect = net.check_all_loops();
        expect.extend(net.check_all_blackholes());
        assert_eq!(external.active_violations(net.atoms()), expect);
        // One loop identity: every looping prefix rides the same a->b cycle.
        assert_eq!(external.loop_count(), 1);
    }

    #[test]
    fn key_and_event_display() {
        let key = ViolationKey::Loop(vec![NodeId(0), NodeId(1)]);
        assert_eq!(key.to_string(), "forwarding loop through n0 -> n1");
        let key = ViolationKey::Blackhole(NodeId(3));
        assert_eq!(key.to_string(), "blackhole at n3");
        assert_eq!(
            MonitorEvent::appeared(key.clone()).to_string(),
            "+ blackhole at n3"
        );
        assert_eq!(MonitorEvent::resolved(key).to_string(), "- blackhole at n3");
    }
}
