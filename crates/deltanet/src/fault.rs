//! Storage backends and deterministic fault injection for the persistence
//! layer.
//!
//! Everything [`crate::persist`] does to stable storage goes through the
//! small, object-safe [`StorageBackend`] trait: append-only writes, fsync,
//! atomic rename, directory fsync, truncation. Production code uses
//! [`FsBackend`] (thin wrappers over `std::fs`); the crash-consistency
//! suite uses [`FaultyBackend`], a deterministic in-memory filesystem that
//! can inject short writes, fail-at-byte-N, fsync failures, rename
//! failures, and simulated crash points — and, after a "crash", hand the
//! surviving bytes to a rebooted backend so recovery can be tested against
//! exactly the state a dead process would have left behind.
//!
//! The fault model is a *process* crash: bytes handed to a successful
//! `append` survive (the kernel eventually writes its page cache), while
//! the append that straddles the crash point is torn — its prefix up to
//! the crash byte is kept, the rest is lost, and every subsequent call on
//! the backend fails. `sync_file` still matters: it is how fsync failures
//! are surfaced, and how the durability ladder is measured (the
//! [`FaultyBackend`] counts syncs so tests can pin that `Buffered` never
//! fsyncs and `FsyncPerBatch` fsyncs once per batch).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The storage operations the persistence layer needs, kept object-safe so
/// engines, logs, and checkpoint managers can hold a `Box<dyn
/// StorageBackend>` and tests can swap in fault injection.
///
/// All paths are interpreted by the backend; [`FsBackend`] maps them to the
/// real filesystem, [`FaultyBackend`] to an in-memory map.
pub trait StorageBackend: Send {
    /// Reads the entire contents of a file.
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (or truncates to empty) a file.
    fn create(&mut self, path: &Path) -> io::Result<()>;

    /// Appends bytes to an existing file.
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Truncates a file to `len` bytes (used by torn-tail repair).
    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()>;

    /// Forces file contents to stable storage (`fsync`).
    fn sync_file(&mut self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to` (replacing `to` if it exists).
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;

    /// Fsyncs the directory containing `path`, making a preceding rename
    /// durable.
    fn sync_parent_dir(&mut self, path: &Path) -> io::Result<()>;

    /// Removes a file (used by checkpoint retention).
    fn remove_file(&mut self, path: &Path) -> io::Result<()>;

    /// Whether a file exists.
    fn exists(&mut self, path: &Path) -> io::Result<bool>;

    /// The files directly inside `dir` (no recursion), in sorted order.
    fn list_dir(&mut self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Creates `dir` and its parents if missing.
    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()>;

    /// A second handle onto the same storage (same files, same fault
    /// state): [`FsBackend`] is stateless, [`FaultyBackend`] shares its
    /// in-memory filesystem.
    fn clone_backend(&self) -> Box<dyn StorageBackend>;
}

// ---------------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------------

/// The production [`StorageBackend`]: thin wrappers over `std::fs` with the
/// durability primitives (`fsync`, directory `fsync`) spelled out.
#[derive(Clone, Copy, Debug, Default)]
pub struct FsBackend;

impl StorageBackend for FsBackend {
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create(&mut self, path: &Path) -> io::Result<()> {
        std::fs::File::create(path)?;
        Ok(())
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
        file.write_all(bytes)
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn sync_file(&mut self, path: &Path) -> io::Result<()> {
        // `sync_data` (fdatasync) is the append-only-log sync: it forces
        // the file contents and the size metadata needed to read them,
        // skipping the extra journal commit `sync_all` pays for timestamps.
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.sync_data()
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_parent_dir(&mut self, path: &Path) -> io::Result<()> {
        // Directory fsync is what makes a rename durable on POSIX
        // filesystems; on platforms where directories cannot be opened for
        // reading this degrades to a no-op error swallow.
        let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
            return Ok(());
        };
        match std::fs::File::open(parent) {
            Ok(dir) => dir.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&mut self, path: &Path) -> io::Result<bool> {
        Ok(path.exists())
    }

    fn list_dir(&mut self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                files.push(entry.path());
            }
        }
        files.sort();
        Ok(files)
    }

    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn clone_backend(&self) -> Box<dyn StorageBackend> {
        Box::new(FsBackend)
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// What to break, and when. All triggers are deterministic so a failing
/// crash point reproduces exactly.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Simulate the process dying once this many bytes (cumulative across
    /// all files) have been appended: the append that crosses the limit is
    /// torn — its prefix up to the limit is kept — and every subsequent
    /// backend call fails with a "simulated crash" error.
    pub crash_at_byte: Option<u64>,
    /// Fail the append that crosses this cumulative byte count with a short
    /// write: the prefix up to the limit lands in the file, the call
    /// returns an error, and the backend keeps working (a transient `EIO` /
    /// disk-full shape, not a crash).
    pub fail_append_at_byte: Option<u64>,
    /// Fail the next N `sync_file` calls (fsync returning `EIO`).
    pub fail_fsyncs: u64,
    /// Simulate a crash at the next `rename` call: the rename does not
    /// happen (the temp file stays, the target keeps its old bytes) and the
    /// backend is dead afterwards — the atomic-snapshot crash test.
    pub crash_on_rename: bool,
    /// Fail the next N `rename` calls without crashing.
    pub fail_renames: u64,
}

#[derive(Default)]
struct FaultState {
    files: BTreeMap<PathBuf, Vec<u8>>,
    plan: FaultPlan,
    appended: u64,
    syncs: u64,
    renames: u64,
    crashed: bool,
}

/// A deterministic in-memory [`StorageBackend`] with fault injection.
///
/// Clones share the same underlying state, so a test can keep one handle
/// for inspection (`surviving`, `sync_count`) while the code under test
/// owns another. After a simulated crash, [`FaultyBackend::reboot`] clears
/// the crashed flag and the fault plan — the surviving files are exactly
/// what a restarted process would find on disk.
#[derive(Clone, Default)]
pub struct FaultyBackend {
    state: Arc<Mutex<FaultState>>,
}

fn crash_error() -> io::Error {
    io::Error::other("simulated crash (fault injection)")
}

impl FaultyBackend {
    /// A fault-free in-memory backend (inject faults later with
    /// [`FaultyBackend::inject`]).
    pub fn new() -> FaultyBackend {
        FaultyBackend::default()
    }

    /// An in-memory backend primed with a fault plan.
    pub fn with_plan(plan: FaultPlan) -> FaultyBackend {
        let backend = FaultyBackend::default();
        backend.inject(plan);
        backend
    }

    /// Replaces the fault plan (counters keep running).
    pub fn inject(&self, plan: FaultPlan) {
        self.state.lock().unwrap().plan = plan;
    }

    /// Whether a simulated crash has happened.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// The bytes of `path` as they survived on the simulated disk (readable
    /// even after a crash — this is the post-mortem view).
    pub fn surviving(&self, path: &Path) -> Option<Vec<u8>> {
        self.state.lock().unwrap().files.get(path).cloned()
    }

    /// Overwrites a file on the simulated disk directly, bypassing fault
    /// triggers — used by tests to stage crash artifacts byte-for-byte.
    pub fn plant(&self, path: &Path, bytes: Vec<u8>) {
        self.state
            .lock()
            .unwrap()
            .files
            .insert(path.to_path_buf(), bytes);
    }

    /// Clears the crashed flag and the fault plan, modelling a process
    /// restart over the surviving files. Counters reset too.
    pub fn reboot(&self) {
        let mut s = self.state.lock().unwrap();
        s.plan = FaultPlan::default();
        s.crashed = false;
        s.appended = 0;
        s.syncs = 0;
        s.renames = 0;
    }

    /// Number of `sync_file` calls (fsyncs) attempted so far.
    pub fn sync_count(&self) -> u64 {
        self.state.lock().unwrap().syncs
    }

    /// Number of `rename` calls attempted so far.
    pub fn rename_count(&self) -> u64 {
        self.state.lock().unwrap().renames
    }

    /// Cumulative bytes successfully appended across all files.
    pub fn bytes_appended(&self) -> u64 {
        self.state.lock().unwrap().appended
    }
}

impl FaultState {
    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            Err(crash_error())
        } else {
            Ok(())
        }
    }
}

impl StorageBackend for FaultyBackend {
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        let s = self.state.lock().unwrap();
        s.check_alive()?;
        s.files
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display())))
    }

    fn create(&mut self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        s.files.insert(path.to_path_buf(), Vec::new());
        Ok(())
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        if !s.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}", path.display()),
            ));
        }
        // Torn-write triggers: keep the prefix up to the fault byte, then
        // either crash (all future calls fail) or report a short write.
        let end = s.appended + bytes.len() as u64;
        if let Some(limit) = s.plan.crash_at_byte {
            if end > limit {
                let keep = limit.saturating_sub(s.appended) as usize;
                s.appended = limit;
                let file = s.files.get_mut(path).expect("checked above");
                file.extend_from_slice(&bytes[..keep]);
                s.crashed = true;
                return Err(crash_error());
            }
        }
        if let Some(limit) = s.plan.fail_append_at_byte {
            if end > limit {
                let keep = limit.saturating_sub(s.appended) as usize;
                s.appended = limit;
                let file = s.files.get_mut(path).expect("checked above");
                file.extend_from_slice(&bytes[..keep]);
                s.plan.fail_append_at_byte = None;
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "simulated short write (fault injection)",
                ));
            }
        }
        s.appended = end;
        let file = s.files.get_mut(path).expect("checked above");
        file.extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        match s.files.get_mut(path) {
            Some(file) => {
                file.truncate(len as usize);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}", path.display()),
            )),
        }
    }

    fn sync_file(&mut self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        s.syncs += 1;
        if !s.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}", path.display()),
            ));
        }
        if s.plan.fail_fsyncs > 0 {
            s.plan.fail_fsyncs -= 1;
            return Err(io::Error::other(
                "simulated fsync failure (fault injection)",
            ));
        }
        Ok(())
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        s.renames += 1;
        if s.plan.crash_on_rename {
            s.crashed = true;
            return Err(crash_error());
        }
        if s.plan.fail_renames > 0 {
            s.plan.fail_renames -= 1;
            return Err(io::Error::other(
                "simulated rename failure (fault injection)",
            ));
        }
        match s.files.remove(from) {
            Some(bytes) => {
                s.files.insert(to.to_path_buf(), bytes);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}", from.display()),
            )),
        }
    }

    fn sync_parent_dir(&mut self, _path: &Path) -> io::Result<()> {
        let s = self.state.lock().unwrap();
        s.check_alive()
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        match s.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}", path.display()),
            )),
        }
    }

    fn exists(&mut self, path: &Path) -> io::Result<bool> {
        let s = self.state.lock().unwrap();
        s.check_alive()?;
        Ok(s.files.contains_key(path))
    }

    fn list_dir(&mut self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let s = self.state.lock().unwrap();
        s.check_alive()?;
        Ok(s.files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn create_dir_all(&mut self, _dir: &Path) -> io::Result<()> {
        // Directories are implicit in the in-memory map.
        let s = self.state.lock().unwrap();
        s.check_alive()
    }

    fn clone_backend(&self) -> Box<dyn StorageBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn in_memory_files_behave_like_files() {
        let mut b = FaultyBackend::new();
        assert!(!b.exists(&p("/d/a")).unwrap());
        b.create(&p("/d/a")).unwrap();
        b.append(&p("/d/a"), b"hello ").unwrap();
        b.append(&p("/d/a"), b"world").unwrap();
        assert_eq!(b.read(&p("/d/a")).unwrap(), b"hello world");
        b.truncate(&p("/d/a"), 5).unwrap();
        assert_eq!(b.read(&p("/d/a")).unwrap(), b"hello");
        b.rename(&p("/d/a"), &p("/d/b")).unwrap();
        assert!(!b.exists(&p("/d/a")).unwrap());
        b.create(&p("/d/c")).unwrap();
        assert_eq!(b.list_dir(&p("/d")).unwrap(), vec![p("/d/b"), p("/d/c")]);
        b.remove_file(&p("/d/c")).unwrap();
        assert!(b.append(&p("/missing"), b"x").is_err());
        assert!(b.read(&p("/missing")).is_err());
        // Clones share state.
        let mut other = b.clone_backend();
        assert_eq!(other.read(&p("/d/b")).unwrap(), b"hello");
    }

    #[test]
    fn crash_at_byte_tears_the_straddling_append_and_kills_the_backend() {
        let mut b = FaultyBackend::with_plan(FaultPlan {
            crash_at_byte: Some(10),
            ..Default::default()
        });
        b.create(&p("/log")).unwrap();
        b.append(&p("/log"), b"01234567").unwrap(); // 8 bytes, under the limit
        let err = b.append(&p("/log"), b"abcdef").unwrap_err();
        assert!(err.to_string().contains("simulated crash"), "{err}");
        assert!(b.crashed());
        // The torn prefix survived; everything else of the append is lost.
        assert_eq!(b.surviving(&p("/log")).unwrap(), b"01234567ab");
        // The backend is dead until reboot.
        assert!(b.read(&p("/log")).is_err());
        assert!(b.sync_file(&p("/log")).is_err());
        b.reboot();
        assert_eq!(b.read(&p("/log")).unwrap(), b"01234567ab");
    }

    #[test]
    fn short_write_fails_once_and_keeps_the_backend_alive() {
        let mut b = FaultyBackend::with_plan(FaultPlan {
            fail_append_at_byte: Some(4),
            ..Default::default()
        });
        b.create(&p("/log")).unwrap();
        let err = b.append(&p("/log"), b"abcdefgh").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert!(!b.crashed());
        assert_eq!(b.surviving(&p("/log")).unwrap(), b"abcd");
        // The fault is one-shot: the retry goes through (appending again).
        b.append(&p("/log"), b"efgh").unwrap();
        assert_eq!(b.read(&p("/log")).unwrap(), b"abcdefgh");
    }

    #[test]
    fn fsync_and_rename_faults_fire_then_clear() {
        let mut b = FaultyBackend::with_plan(FaultPlan {
            fail_fsyncs: 1,
            fail_renames: 1,
            ..Default::default()
        });
        b.create(&p("/f")).unwrap();
        assert!(b.sync_file(&p("/f")).is_err());
        b.sync_file(&p("/f")).unwrap();
        assert_eq!(b.sync_count(), 2);
        assert!(b.rename(&p("/f"), &p("/g")).is_err());
        assert!(b.exists(&p("/f")).unwrap(), "failed rename must not move");
        b.rename(&p("/f"), &p("/g")).unwrap();
        assert!(!b.crashed());
    }

    #[test]
    fn crash_on_rename_leaves_both_files_untouched() {
        let mut b = FaultyBackend::new();
        b.create(&p("/snap")).unwrap();
        b.append(&p("/snap"), b"old").unwrap();
        b.create(&p("/snap.tmp")).unwrap();
        b.append(&p("/snap.tmp"), b"new").unwrap();
        b.inject(FaultPlan {
            crash_on_rename: true,
            ..Default::default()
        });
        assert!(b.rename(&p("/snap.tmp"), &p("/snap")).is_err());
        assert!(b.crashed());
        assert_eq!(b.surviving(&p("/snap")).unwrap(), b"old");
        assert_eq!(b.surviving(&p("/snap.tmp")).unwrap(), b"new");
    }

    #[test]
    fn fs_backend_round_trips_real_files() {
        let dir = std::env::temp_dir().join(format!("deltanet-fault-fs-{}", std::process::id()));
        let mut b = FsBackend;
        b.create_dir_all(&dir).unwrap();
        let f = dir.join("a.bin");
        b.create(&f).unwrap();
        b.append(&f, b"abc").unwrap();
        b.append(&f, b"def").unwrap();
        b.sync_file(&f).unwrap();
        assert_eq!(b.read(&f).unwrap(), b"abcdef");
        b.truncate(&f, 4).unwrap();
        assert_eq!(b.read(&f).unwrap(), b"abcd");
        let g = dir.join("b.bin");
        b.rename(&f, &g).unwrap();
        b.sync_parent_dir(&g).unwrap();
        assert!(b.exists(&g).unwrap() && !b.exists(&f).unwrap());
        assert_eq!(b.list_dir(&dir).unwrap(), vec![g.clone()]);
        b.remove_file(&g).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
