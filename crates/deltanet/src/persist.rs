//! Snapshot + delta-log persistence with time-travel replay.
//!
//! A long-lived deployment of the engine needs to survive restarts and to
//! answer "what did the network look like after operation *n*?" without
//! re-ingesting the full update history. This module provides both on top
//! of two artifacts:
//!
//! * a **snapshot** ([`Snapshot`]): a compact, versioned, checksummed
//!   binary image of the *full* engine state — atom bounds, owner arena,
//!   edge labels, rule registry, configuration, garbage-collection
//!   bookkeeping, and the monitor's active violation set — for a single
//!   [`DeltaNet`] or a [`ShardedDeltaNet`] (per-shard sections sharing one
//!   rule registry, since a boundary-straddling rule is one rule);
//! * a **delta log** ([`DeltaLog`]): an append-only record of the update
//!   operations applied *after* some snapshot, written through the
//!   [`LoggedNet`] wrapper. The log is write-behind — an operation is
//!   appended only once the engine accepted it — so the log's contents are
//!   exactly the applied ops even when a batch fails midway.
//!
//! Recovery ([`recover`]) is then "load nearest snapshot, replay the log
//! tail"; time-travel ([`violations_at`]) replays forward from the nearest
//! snapshot with the violation monitor enabled and reads the active set at
//! the requested operation index.
//!
//! The restore path re-validates everything a decoder can get wrong — the
//! header checksum, structural invariants of every arena
//! ([`AtomMap::from_parts`], [`crate::owner::Owner::from_cells`]), and the
//! monitor's violation set, which is checked **bit-for-bit** against a
//! fresh full scan of the restored data plane
//! ([`ViolationMonitor::state_eq`]) — so a corrupted or truncated artifact
//! surfaces as a clean [`PersistError`], never as a wrong answer.
//!
//! The container is deliberately dependency-free: LEB128 varints for the
//! dense integer arenas, raw little-endian words for the label bitsets,
//! and an FNV-1a 64 trailer checksum.
//!
//! ## Crash consistency
//!
//! Every byte this module puts on stable storage goes through the
//! [`StorageBackend`] trait ([`FsBackend`] in production, the fault-
//! injecting [`crate::fault::FaultyBackend`] under test), and the write
//! path is crash-consistent:
//!
//! * snapshots are written **atomically** — temp file, fsync, rename,
//!   directory fsync — so a crash mid-snapshot never clobbers the previous
//!   good snapshot;
//! * every delta-log record is **framed** with a length prefix and its own
//!   FNV-1a checksum, so a torn tail is detectable to the byte;
//! * the log's flush behaviour is a configurable [`Durability`] ladder
//!   (`Buffered` / `FlushPerBatch` / `FsyncPerBatch`);
//! * the read path is self-healing: [`RecoveryPolicy::RepairTail`] keeps
//!   the longest valid checksummed prefix, truncates the torn tail, and
//!   reports exactly how many ops were salvaged — recovery always lands
//!   bit-identical to some applied prefix, never invents ops;
//! * [`CheckpointManager`] bounds recovery time by auto-snapshotting every
//!   N ops with log rotation and retention.

use crate::atoms::{AtomId, AtomMap};
use crate::engine::{DeltaNet, DeltaNetConfig, RestoredParts};
use crate::fault::{FsBackend, StorageBackend};
use crate::monitor::ViolationMonitor;
use crate::owner::{OwnedRule, Owner};
use crate::shard::ShardedDeltaNet;
use crate::{CompactReport, Labels};
use netmodel::checker::{
    Checker, InvariantViolation, ReplayError, UpdateError, UpdateReport, WhatIfReport,
};
use netmodel::header::{SecondaryMatch, MAX_SECONDARY_FIELDS};
use netmodel::interval::{Bound, Interval};
use netmodel::ip::IpPrefix;
use netmodel::rule::{Action, Rule, RuleId};
use netmodel::topology::{LinkId, NodeId, Topology};
use netmodel::trace::Op;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Magic bytes opening a snapshot file.
const SNAPSHOT_MAGIC: &[u8; 4] = b"DNSP";
/// Magic bytes opening a delta-log file.
const LOG_MAGIC: &[u8; 4] = b"DNLG";
/// Format version of the snapshot container. Version 3 added the header
/// space (secondary field widths), per-rule secondary matches, and the
/// per-field secondary lattice sections; version 1 snapshots still load as
/// single-field engines.
const FORMAT_VERSION: u8 = 3;
/// Oldest snapshot format this build still reads.
const MIN_FORMAT_VERSION: u8 = 1;
/// Format version of the delta-log container. Version 2 introduced
/// per-record length + checksum framing (version 1 logs carried bare op
/// records and cannot distinguish a torn tail from corruption); version 3
/// added per-rule secondary matches. Version 2 logs still replay as
/// single-field streams.
const LOG_FORMAT_VERSION: u8 = 3;
/// Oldest delta-log format this build still reads.
const MIN_LOG_FORMAT_VERSION: u8 = 2;
/// Bytes of the delta-log header (magic + version).
const LOG_HEADER_LEN: u64 = 5;

/// How eagerly [`DeltaLog::flush`] pushes buffered records toward stable
/// storage — the classic write-ahead-log durability ladder. Each level
/// bounds what a crash can lose; [`RecoveryPolicy::RepairTail`] guarantees
/// that whatever survives recovers to a clean applied prefix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// `flush()` is a no-op: records stay in the userspace buffer until an
    /// explicit [`DeltaLog::sync`] (or drop). Fastest; a crash loses every
    /// op since the last sync.
    Buffered,
    /// `flush()` writes the buffer to the file but does not fsync (the
    /// pre-durability behaviour, and the default). A process crash loses
    /// nothing; an OS crash or power failure can lose ops still in the
    /// page cache.
    #[default]
    FlushPerBatch,
    /// `flush()` writes the buffer and fsyncs. An acknowledged batch
    /// survives OS crashes and power failures.
    FsyncPerBatch,
}

impl Durability {
    /// The stable lowercase name (`buffered` / `flush` / `fsync`), used by
    /// the CLI and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Durability::Buffered => "buffered",
            Durability::FlushPerBatch => "flush",
            Durability::FsyncPerBatch => "fsync",
        }
    }
}

impl std::str::FromStr for Durability {
    type Err = String;

    fn from_str(s: &str) -> Result<Durability, String> {
        match s {
            "buffered" => Ok(Durability::Buffered),
            "flush" => Ok(Durability::FlushPerBatch),
            "fsync" => Ok(Durability::FsyncPerBatch),
            other => Err(format!(
                "unknown durability '{other}' (expected buffered, flush, or fsync)"
            )),
        }
    }
}

/// How log readers treat a torn or corrupt record tail.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Any framing, checksum, or decode failure is a fatal
    /// [`PersistError::Corrupt`] naming the byte offset of the torn record.
    #[default]
    Strict,
    /// Keep the longest valid checksummed prefix, truncate the torn tail
    /// off the file, and report what was dropped. Never panics, never
    /// invents ops — the result is always some exact applied prefix.
    RepairTail,
}

/// A torn (or corrupt) log tail detected — and under
/// [`RecoveryPolicy::RepairTail`], removed — by a log read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first torn record — the file length after repair.
    pub offset: u64,
    /// Bytes dropped from the tail.
    pub bytes_dropped: u64,
}

/// The outcome of reading a delta log with an explicit policy.
pub struct LogReadReport {
    /// The decoded operations of the valid prefix.
    pub ops: Vec<Op>,
    /// The torn tail, if one was found (always `None` under
    /// [`RecoveryPolicy::Strict`], which errors instead).
    pub torn: Option<TornTail>,
}

/// What went wrong while saving, loading, or recovering persistent state.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The artifact's bytes are not a well-formed snapshot or log:
    /// truncation, a checksum mismatch, or a structural invariant violated
    /// by the decoded state.
    Corrupt(String),
    /// The artifact is well-formed but inconsistent with its surroundings:
    /// wrong topology, a log shorter than the snapshot's operation count,
    /// or a restored monitor that disagrees with a fresh scan.
    Mismatch(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            PersistError::Mismatch(msg) => write!(f, "inconsistent artifact: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Binary primitives: LEB128 varints, raw words, FNV-1a 64.
// ---------------------------------------------------------------------------

/// FNV-1a 64 over a byte slice — the trailer checksum of both containers.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn varint_wide(&mut self, mut v: u128) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn words(&mut self, words: &[u64]) {
        self.varint(words.len() as u64);
        for &w in words {
            self.buf.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Appends the FNV-1a checksum of everything written so far.
    fn seal(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn corrupt<T>(&self, what: &str) -> Result<T, PersistError> {
        Err(PersistError::Corrupt(format!(
            "{what} at byte {}",
            self.pos
        )))
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        match self.buf.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.corrupt("unexpected end of data"),
        }
    }

    fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => self.corrupt("invalid boolean"),
        }
    }

    fn varint_wide(&mut self) -> Result<u128, PersistError> {
        let mut v: u128 = 0;
        for shift in (0..).step_by(7) {
            if shift >= 128 {
                return self.corrupt("varint overflow");
            }
            let byte = self.u8()?;
            v |= u128::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!()
    }

    fn varint(&mut self) -> Result<u64, PersistError> {
        let v = self.varint_wide()?;
        u64::try_from(v).or_else(|_| self.corrupt("varint exceeds 64 bits"))
    }

    /// A varint that must fit in `usize` and stay under a sanity cap, so a
    /// corrupted length prefix fails cleanly instead of attempting a huge
    /// allocation.
    fn len(&mut self) -> Result<usize, PersistError> {
        const MAX_LEN: u64 = 1 << 32;
        let v = self.varint()?;
        if v > MAX_LEN {
            return self.corrupt("implausible length prefix");
        }
        Ok(v as usize)
    }

    fn words(&mut self) -> Result<Vec<u64>, PersistError> {
        let n = self.len()?;
        let mut words = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let end = self.pos + 8;
            let Some(bytes) = self.buf.get(self.pos..end) else {
                return self.corrupt("truncated word array");
            };
            words.push(u64::from_le_bytes(bytes.try_into().expect("8 bytes")));
            self.pos = end;
        }
        Ok(words)
    }

    fn finish(&self) -> Result<(), PersistError> {
        if self.pos != self.buf.len() {
            return self.corrupt("trailing garbage after snapshot body");
        }
        Ok(())
    }
}

/// Strips and verifies the FNV-1a trailer, returning the body.
fn checked_body<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [u8], PersistError> {
    let Some(body_len) = bytes.len().checked_sub(8) else {
        return Err(PersistError::Corrupt(format!(
            "{what} shorter than its checksum trailer"
        )));
    };
    let (body, trailer) = bytes.split_at(body_len);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err(PersistError::Corrupt(format!("{what} checksum mismatch")));
    }
    Ok(body)
}

/// Atomically replaces `path` with `bytes`: write a temp sibling, fsync it,
/// rename it over `path`, fsync the directory. A crash at any point leaves
/// either the complete old file or the complete new one.
fn write_atomic(
    backend: &mut dyn StorageBackend,
    path: &Path,
    bytes: &[u8],
) -> Result<(), PersistError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    backend.create(&tmp)?;
    backend.append(&tmp, bytes)?;
    backend.sync_file(&tmp)?;
    backend.rename(&tmp, path)?;
    backend.sync_parent_dir(path)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// The decoded per-engine state of one snapshot section: everything a
/// single (possibly clipped) [`DeltaNet`] needs to be rebuilt exactly.
struct EngineSection {
    clip: Option<Interval>,
    rule_ids: Vec<RuleId>,
    allocated: usize,
    atom_entries: Vec<(Bound, AtomId)>,
    free: Vec<AtomId>,
    owner_cells: Vec<Vec<(NodeId, bool, Vec<OwnedRule>)>>,
    label_capacity: usize,
    labels: Vec<(LinkId, Vec<u64>)>,
    bound_refs: Vec<(Bound, u32)>,
    reclaimable: usize,
    compactions: usize,
    sec: Vec<SecSection>,
    #[allow(clippy::type_complexity)]
    monitor: Option<(Vec<(Vec<NodeId>, Vec<u64>)>, Vec<(NodeId, Vec<u64>)>)>,
}

/// One secondary field's lattice state inside an [`EngineSection`]:
/// interval lattice plus bound refcounts — secondary fields carry no owner
/// cells or labels (format v3; absent from v1 sections).
struct SecSection {
    allocated: usize,
    atom_entries: Vec<(Bound, AtomId)>,
    free: Vec<AtomId>,
    bound_refs: Vec<(Bound, u32)>,
    reclaimable: usize,
}

impl EngineSection {
    fn export(net: &DeltaNet) -> EngineSection {
        let mut rule_ids: Vec<RuleId> = net.rules().map(|r| r.id).collect();
        rule_ids.sort_unstable();
        let (label_capacity, labels) = net.labels().export_parts();
        let mut bound_refs: Vec<(Bound, u32)> =
            net.bound_refs().iter().map(|(&b, &c)| (b, c)).collect();
        bound_refs.sort_unstable_by_key(|&(b, _)| b);
        let sec = net
            .secondary_atoms()
            .iter()
            .zip(net.sec_bound_refs())
            .zip(net.sec_reclaimable())
            .map(|((atoms, refs), &reclaimable)| {
                let mut bound_refs: Vec<(Bound, u32)> =
                    refs.iter().map(|(&b, &c)| (b, c)).collect();
                bound_refs.sort_unstable_by_key(|&(b, _)| b);
                SecSection {
                    allocated: atoms.allocated_atoms(),
                    atom_entries: atoms.export_entries(),
                    free: atoms.free_list().to_vec(),
                    bound_refs,
                    reclaimable,
                }
            })
            .collect();
        EngineSection {
            clip: net.clip(),
            rule_ids,
            allocated: net.allocated_atoms(),
            atom_entries: net.atoms().export_entries(),
            free: net.atoms().free_list().to_vec(),
            owner_cells: net.owner().export_cells(),
            label_capacity,
            labels,
            bound_refs,
            reclaimable: net.primary_reclaimable(),
            compactions: net.compactions(),
            sec,
            monitor: net.monitor().map(ViolationMonitor::export_parts),
        }
    }

    fn encode(&self, w: &mut Writer) {
        match self.clip {
            Some(clip) => {
                w.bool(true);
                w.varint_wide(clip.lo());
                w.varint_wide(clip.hi());
            }
            None => w.bool(false),
        }
        w.varint(self.rule_ids.len() as u64);
        for id in &self.rule_ids {
            w.varint(id.0);
        }
        w.varint(self.allocated as u64);
        w.varint(self.atom_entries.len() as u64);
        for &(bound, atom) in &self.atom_entries {
            w.varint_wide(bound);
            w.varint(u64::from(atom.0));
        }
        w.varint(self.free.len() as u64);
        for atom in &self.free {
            w.varint(u64::from(atom.0));
        }
        w.varint(self.owner_cells.len() as u64);
        for slots in &self.owner_cells {
            w.varint(slots.len() as u64);
            for (source, spilled, entries) in slots {
                w.varint(u64::from(source.0));
                w.bool(*spilled);
                w.varint(entries.len() as u64);
                for e in entries {
                    w.varint(u64::from(e.priority));
                    w.varint(e.id.0);
                    w.varint(u64::from(e.link.0));
                }
            }
        }
        w.varint(self.label_capacity as u64);
        w.varint(self.labels.len() as u64);
        for (link, words) in &self.labels {
            w.varint(u64::from(link.0));
            w.words(words);
        }
        w.varint(self.bound_refs.len() as u64);
        for &(bound, count) in &self.bound_refs {
            w.varint_wide(bound);
            w.varint(u64::from(count));
        }
        w.varint(self.reclaimable as u64);
        w.varint(self.compactions as u64);
        w.varint(self.sec.len() as u64);
        for sec in &self.sec {
            w.varint(sec.allocated as u64);
            w.varint(sec.atom_entries.len() as u64);
            for &(bound, atom) in &sec.atom_entries {
                w.varint_wide(bound);
                w.varint(u64::from(atom.0));
            }
            w.varint(sec.free.len() as u64);
            for atom in &sec.free {
                w.varint(u64::from(atom.0));
            }
            w.varint(sec.bound_refs.len() as u64);
            for &(bound, count) in &sec.bound_refs {
                w.varint_wide(bound);
                w.varint(u64::from(count));
            }
            w.varint(sec.reclaimable as u64);
        }
        match &self.monitor {
            Some((loops, holes)) => {
                w.bool(true);
                w.varint(loops.len() as u64);
                for (cycle, words) in loops {
                    w.varint(cycle.len() as u64);
                    for node in cycle {
                        w.varint(u64::from(node.0));
                    }
                    w.words(words);
                }
                w.varint(holes.len() as u64);
                for (node, words) in holes {
                    w.varint(u64::from(node.0));
                    w.words(words);
                }
            }
            None => w.bool(false),
        }
    }

    /// `has_sec` is true for format-v3 sections, which carry the secondary
    /// lattice block; v1 sections decode with no secondary fields.
    fn decode(r: &mut Reader<'_>, has_sec: bool) -> Result<EngineSection, PersistError> {
        let clip = if r.bool()? {
            let lo = r.varint_wide()?;
            let hi = r.varint_wide()?;
            if lo >= hi {
                return r.corrupt("inverted clip range");
            }
            Some(Interval::new(lo, hi))
        } else {
            None
        };
        let rule_count = r.len()?;
        let mut rule_ids = Vec::with_capacity(rule_count.min(1024));
        for _ in 0..rule_count {
            rule_ids.push(RuleId(r.varint()?));
        }
        Ok(EngineSection {
            clip,
            rule_ids,
            allocated: r.len()?,
            atom_entries: {
                let n = r.len()?;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let bound = r.varint_wide()?;
                    let atom = u32::try_from(r.varint()?)
                        .or_else(|_| r.corrupt("atom id exceeds 32 bits"))?;
                    entries.push((bound, AtomId(atom)));
                }
                entries
            },
            free: {
                let n = r.len()?;
                let mut free = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let atom = u32::try_from(r.varint()?)
                        .or_else(|_| r.corrupt("atom id exceeds 32 bits"))?;
                    free.push(AtomId(atom));
                }
                free
            },
            owner_cells: {
                let atoms = r.len()?;
                let mut cells = Vec::with_capacity(atoms.min(1024));
                for _ in 0..atoms {
                    let slot_count = r.len()?;
                    let mut slots = Vec::with_capacity(slot_count.min(1024));
                    for _ in 0..slot_count {
                        let source = NodeId(
                            u32::try_from(r.varint()?)
                                .or_else(|_| r.corrupt("node id exceeds 32 bits"))?,
                        );
                        let spilled = r.bool()?;
                        let entry_count = r.len()?;
                        let mut entries = Vec::with_capacity(entry_count.min(1024));
                        for _ in 0..entry_count {
                            let priority = u32::try_from(r.varint()?)
                                .or_else(|_| r.corrupt("priority exceeds 32 bits"))?;
                            let id = RuleId(r.varint()?);
                            let link = LinkId(
                                u32::try_from(r.varint()?)
                                    .or_else(|_| r.corrupt("link id exceeds 32 bits"))?,
                            );
                            entries.push(OwnedRule { priority, id, link });
                        }
                        slots.push((source, spilled, entries));
                    }
                    cells.push(slots);
                }
                cells
            },
            label_capacity: r.len()?,
            labels: {
                let n = r.len()?;
                let mut labels = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let link = LinkId(
                        u32::try_from(r.varint()?)
                            .or_else(|_| r.corrupt("link id exceeds 32 bits"))?,
                    );
                    labels.push((link, r.words()?));
                }
                labels
            },
            bound_refs: {
                let n = r.len()?;
                let mut refs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let bound = r.varint_wide()?;
                    let count = u32::try_from(r.varint()?)
                        .or_else(|_| r.corrupt("bound refcount exceeds 32 bits"))?;
                    refs.push((bound, count));
                }
                refs
            },
            reclaimable: r.len()?,
            compactions: r.len()?,
            sec: if has_sec {
                let field_count = r.len()?;
                let mut sec = Vec::with_capacity(field_count.min(1024));
                for _ in 0..field_count {
                    let allocated = r.len()?;
                    let entry_count = r.len()?;
                    let mut atom_entries = Vec::with_capacity(entry_count.min(1024));
                    for _ in 0..entry_count {
                        let bound = r.varint_wide()?;
                        let atom = u32::try_from(r.varint()?)
                            .or_else(|_| r.corrupt("atom id exceeds 32 bits"))?;
                        atom_entries.push((bound, AtomId(atom)));
                    }
                    let free_count = r.len()?;
                    let mut free = Vec::with_capacity(free_count.min(1024));
                    for _ in 0..free_count {
                        let atom = u32::try_from(r.varint()?)
                            .or_else(|_| r.corrupt("atom id exceeds 32 bits"))?;
                        free.push(AtomId(atom));
                    }
                    let ref_count = r.len()?;
                    let mut bound_refs = Vec::with_capacity(ref_count.min(1024));
                    for _ in 0..ref_count {
                        let bound = r.varint_wide()?;
                        let count = u32::try_from(r.varint()?)
                            .or_else(|_| r.corrupt("bound refcount exceeds 32 bits"))?;
                        bound_refs.push((bound, count));
                    }
                    sec.push(SecSection {
                        allocated,
                        atom_entries,
                        free,
                        bound_refs,
                        reclaimable: r.len()?,
                    });
                }
                sec
            } else {
                Vec::new()
            },
            monitor: if r.bool()? {
                let loop_count = r.len()?;
                let mut loops = Vec::with_capacity(loop_count.min(1024));
                for _ in 0..loop_count {
                    let cycle_len = r.len()?;
                    let mut cycle = Vec::with_capacity(cycle_len.min(1024));
                    for _ in 0..cycle_len {
                        cycle.push(NodeId(
                            u32::try_from(r.varint()?)
                                .or_else(|_| r.corrupt("node id exceeds 32 bits"))?,
                        ));
                    }
                    loops.push((cycle, r.words()?));
                }
                let hole_count = r.len()?;
                let mut holes = Vec::with_capacity(hole_count.min(1024));
                for _ in 0..hole_count {
                    let node = NodeId(
                        u32::try_from(r.varint()?)
                            .or_else(|_| r.corrupt("node id exceeds 32 bits"))?,
                    );
                    holes.push((node, r.words()?));
                }
                Some((loops, holes))
            } else {
                None
            },
        })
    }

    /// Rebuilds one engine from this section, validating every structural
    /// invariant and — when the section carries a monitor — verifying the
    /// restored violation set bit-for-bit against a fresh full scan of the
    /// restored data plane.
    fn restore(
        self,
        topology: &Topology,
        config: DeltaNetConfig,
        registry: &HashMap<RuleId, Rule>,
    ) -> Result<DeltaNet, PersistError> {
        let atoms = AtomMap::from_parts(
            config.field_width,
            self.allocated,
            &self.atom_entries,
            self.free,
        )
        .map_err(PersistError::Corrupt)?;
        let owner = Owner::from_cells(self.owner_cells).map_err(PersistError::Corrupt)?;
        let labels =
            Labels::from_parts(self.label_capacity, self.labels).map_err(PersistError::Corrupt)?;
        let mut rules = HashMap::with_capacity(self.rule_ids.len());
        for id in self.rule_ids {
            let rule = registry.get(&id).ok_or_else(|| {
                PersistError::Corrupt(format!("engine section references unregistered {id:?}"))
            })?;
            rules.insert(id, *rule);
        }
        if self.sec.len() != config.secondary_count() {
            return Err(PersistError::Mismatch(format!(
                "engine section carries {} secondary lattice(s) but the \
                 snapshot config declares {}",
                self.sec.len(),
                config.secondary_count()
            )));
        }
        let mut sec_atoms = Vec::with_capacity(self.sec.len());
        let mut sec_bound_refs = Vec::with_capacity(self.sec.len());
        let mut sec_reclaimable = Vec::with_capacity(self.sec.len());
        for (field, sec) in self.sec.into_iter().enumerate() {
            sec_atoms.push(
                AtomMap::from_parts(
                    config.sec_widths[field],
                    sec.allocated,
                    &sec.atom_entries,
                    sec.free,
                )
                .map_err(PersistError::Corrupt)?,
            );
            sec_bound_refs.push(sec.bound_refs.into_iter().collect());
            sec_reclaimable.push(sec.reclaimable);
        }
        let monitor = self
            .monitor
            .map(|(loops, holes)| ViolationMonitor::from_parts(loops, holes));
        let net = DeltaNet::from_restored(RestoredParts {
            topology: topology.clone(),
            config,
            clip: self.clip,
            atoms,
            owner,
            labels,
            rules,
            bound_refs: self.bound_refs.into_iter().collect(),
            reclaimable: self.reclaimable,
            compactions: self.compactions,
            sec_atoms,
            sec_bound_refs,
            sec_reclaimable,
            monitor,
        });
        // A restored monitor is verified against a fresh scan of the fully
        // assembled engine, so the check dispatches on the header-space
        // shape exactly like `enable_monitor` would.
        if let Some(restored) = net.monitor() {
            if !restored.state_eq(&net.fresh_monitor()) {
                return Err(PersistError::Mismatch(
                    "restored monitor disagrees with a fresh scan of the restored plane"
                        .to_string(),
                ));
            }
        }
        Ok(net)
    }
}

/// The decoded engine layout of a snapshot.
enum SnapshotKind {
    /// One stand-alone engine.
    Single(Box<EngineSection>),
    /// A sharded engine: the boundary table plus one section per shard.
    Sharded {
        boundaries: Vec<Bound>,
        shards: Vec<EngineSection>,
    },
}

/// A decoded snapshot of the full engine state at some point in the update
/// stream, created by [`Snapshot::of_single`] / [`Snapshot::of_sharded`]
/// (or [`LoggedNet::snapshot`]) and turned back into a live engine by
/// [`Snapshot::restore`].
pub struct Snapshot {
    node_count: usize,
    link_count: usize,
    config: DeltaNetConfig,
    ops_applied: u64,
    registry: Vec<Rule>,
    kind: SnapshotKind,
}

impl Snapshot {
    /// Captures the full state of a stand-alone engine. `ops_applied` is
    /// the number of update operations applied so far — the log position
    /// this snapshot corresponds to.
    pub fn of_single(net: &DeltaNet, ops_applied: u64) -> Snapshot {
        let mut registry: Vec<Rule> = net.rules().copied().collect();
        registry.sort_unstable_by_key(|r| r.id);
        Snapshot {
            node_count: net.topology().node_count(),
            link_count: net.topology().link_count(),
            config: net.config(),
            ops_applied,
            registry,
            kind: SnapshotKind::Single(Box::new(EngineSection::export(net))),
        }
    }

    /// Captures the full state of a sharded engine: one section per shard
    /// plus the shared rule registry, serialized once (each section only
    /// stores the ids of the rules it holds a clipped piece of).
    pub fn of_sharded(net: &ShardedDeltaNet, ops_applied: u64) -> Snapshot {
        let mut registry: Vec<Rule> = net.rules().copied().collect();
        registry.sort_unstable_by_key(|r| r.id);
        let ranges = net.shard_ranges();
        let mut boundaries: Vec<Bound> = ranges.iter().map(Interval::lo).collect();
        boundaries.push(ranges.last().expect("at least one shard").hi());
        let config = net.shards()[0].config();
        Snapshot {
            node_count: net.topology().node_count(),
            link_count: net.topology().link_count(),
            config,
            ops_applied,
            registry,
            kind: SnapshotKind::Sharded {
                boundaries,
                shards: net.shards().iter().map(EngineSection::export).collect(),
            },
        }
    }

    /// Captures whichever engine a [`PersistNet`] wraps.
    pub fn of_net(net: &PersistNet, ops_applied: u64) -> Snapshot {
        match net {
            PersistNet::Single(n) => Snapshot::of_single(n, ops_applied),
            PersistNet::Sharded(n) => Snapshot::of_sharded(n, ops_applied),
        }
    }

    /// The number of update operations that had been applied when this
    /// snapshot was taken — its position in the delta log.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// The engine configuration stored in the snapshot.
    pub fn config(&self) -> DeltaNetConfig {
        self.config
    }

    /// Number of shards of the snapshotted engine (1 for a stand-alone
    /// engine).
    pub fn shard_count(&self) -> usize {
        match &self.kind {
            SnapshotKind::Single(_) => 1,
            SnapshotKind::Sharded { shards, .. } => shards.len(),
        }
    }

    /// Serializes the snapshot: versioned header, varint-encoded body,
    /// FNV-1a 64 trailer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.buf.extend_from_slice(SNAPSHOT_MAGIC);
        w.u8(FORMAT_VERSION);
        w.varint(self.node_count as u64);
        w.varint(self.link_count as u64);
        w.u8(self.config.field_width);
        w.bool(self.config.check_loops_per_update);
        w.bool(self.config.monitor_violations);
        match self.config.compact_threshold {
            Some(t) => {
                w.bool(true);
                w.varint(t as u64);
            }
            None => w.bool(false),
        }
        let secondary = self.config.secondary_count();
        w.u8(secondary as u8);
        for &width in &self.config.sec_widths[..secondary] {
            w.u8(width);
        }
        w.varint(self.ops_applied);
        w.varint(self.registry.len() as u64);
        for rule in &self.registry {
            encode_rule(&mut w, rule);
        }
        match &self.kind {
            SnapshotKind::Single(section) => {
                w.u8(0);
                section.encode(&mut w);
            }
            SnapshotKind::Sharded { boundaries, shards } => {
                w.u8(1);
                w.varint(shards.len() as u64);
                for &b in boundaries {
                    w.varint_wide(b);
                }
                for section in shards {
                    section.encode(&mut w);
                }
            }
        }
        w.seal()
    }

    /// Deserializes a snapshot, verifying the magic, version, and trailer
    /// checksum. Structural validation of the decoded state happens in
    /// [`Snapshot::restore`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, PersistError> {
        let body = checked_body(bytes, "snapshot")?;
        let mut r = Reader::new(body);
        let magic = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
        if &magic != SNAPSHOT_MAGIC {
            return r.corrupt("not a snapshot file (bad magic)");
        }
        let version = r.u8()?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) || version == 2 {
            return Err(PersistError::Corrupt(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let has_sec = version >= 3;
        let node_count = r.len()?;
        let link_count = r.len()?;
        let field_width = r.u8()?;
        let check_loops_per_update = r.bool()?;
        let monitor_violations = r.bool()?;
        let compact_threshold = if r.bool()? { Some(r.len()?) } else { None };
        let mut sec_widths = [0u8; MAX_SECONDARY_FIELDS];
        if has_sec {
            let secondary = usize::from(r.u8()?);
            if secondary > sec_widths.len() {
                return r.corrupt("snapshot declares too many secondary fields");
            }
            for slot in &mut sec_widths[..secondary] {
                let width = r.u8()?;
                if width == 0 || width > 127 {
                    return r.corrupt("secondary field width outside 1..=127");
                }
                *slot = width;
            }
        }
        let config = DeltaNetConfig {
            field_width,
            check_loops_per_update,
            compact_threshold,
            monitor_violations,
            sec_widths,
        };
        let ops_applied = r.varint()?;
        let rule_count = r.len()?;
        let mut registry = Vec::with_capacity(rule_count.min(1024));
        for _ in 0..rule_count {
            registry.push(decode_rule(&mut r, Some(field_width), has_sec)?);
        }
        let kind = match r.u8()? {
            0 => SnapshotKind::Single(Box::new(EngineSection::decode(&mut r, has_sec)?)),
            1 => {
                let shard_count = r.len()?;
                if shard_count == 0 {
                    return r.corrupt("sharded snapshot with zero shards");
                }
                let mut boundaries = Vec::with_capacity(shard_count + 1);
                for _ in 0..=shard_count {
                    boundaries.push(r.varint_wide()?);
                }
                if boundaries.windows(2).any(|w| w[0] >= w[1]) {
                    return r.corrupt("shard boundaries not strictly increasing");
                }
                let mut shards = Vec::with_capacity(shard_count);
                for _ in 0..shard_count {
                    shards.push(EngineSection::decode(&mut r, has_sec)?);
                }
                SnapshotKind::Sharded { boundaries, shards }
            }
            _ => return r.corrupt("invalid engine-kind tag"),
        };
        r.finish()?;
        Ok(Snapshot {
            node_count,
            link_count,
            config,
            ops_applied,
            registry,
            kind,
        })
    }

    /// Writes the serialized snapshot to `path` **atomically**: the bytes
    /// go to a temp sibling which is fsynced, renamed over `path`, and made
    /// durable with a directory fsync — a crash at any point leaves either
    /// the old snapshot or the new one, never a torn mix.
    pub fn write_to(&self, path: &Path) -> Result<(), PersistError> {
        self.write_to_backend(&mut FsBackend, path)
    }

    /// [`Snapshot::write_to`] through an explicit [`StorageBackend`].
    pub fn write_to_backend(
        &self,
        backend: &mut dyn StorageBackend,
        path: &Path,
    ) -> Result<(), PersistError> {
        write_atomic(backend, path, &self.to_bytes())
    }

    /// Reads and deserializes a snapshot from `path`.
    pub fn read_from(path: &Path) -> Result<Snapshot, PersistError> {
        Snapshot::read_from_backend(&mut FsBackend, path)
    }

    /// [`Snapshot::read_from`] through an explicit [`StorageBackend`].
    pub fn read_from_backend(
        backend: &mut dyn StorageBackend,
        path: &Path,
    ) -> Result<Snapshot, PersistError> {
        Snapshot::from_bytes(&backend.read(path)?)
    }

    fn check_topology(&self, topology: &Topology) -> Result<(), PersistError> {
        if topology.node_count() != self.node_count || topology.link_count() != self.link_count {
            return Err(PersistError::Mismatch(format!(
                "snapshot was taken over a {}-node / {}-link topology, \
                 restore target has {} nodes / {} links",
                self.node_count,
                self.link_count,
                topology.node_count(),
                topology.link_count()
            )));
        }
        Ok(())
    }

    /// Rebuilds a live engine from the snapshot over the given topology
    /// (snapshots store a topology fingerprint, not the topology itself).
    /// Every arena is re-validated on the way in, and a restored monitor is
    /// verified bit-for-bit against a fresh full scan.
    pub fn restore(self, topology: &Topology) -> Result<PersistNet, PersistError> {
        self.check_topology(topology)?;
        let registry: HashMap<RuleId, Rule> = self.registry.iter().map(|r| (r.id, *r)).collect();
        match self.kind {
            SnapshotKind::Single(section) => {
                if section.clip.is_some() {
                    return Err(PersistError::Corrupt(
                        "stand-alone engine section carries a shard clip".to_string(),
                    ));
                }
                let net = section.restore(topology, self.config, &registry)?;
                if net.rule_count() != registry.len() {
                    return Err(PersistError::Corrupt(
                        "registry and engine rule sets disagree".to_string(),
                    ));
                }
                Ok(PersistNet::Single(Box::new(net)))
            }
            SnapshotKind::Sharded { boundaries, shards } => {
                if boundaries.len() != shards.len() + 1 {
                    return Err(PersistError::Corrupt(
                        "shard boundary table does not match shard count".to_string(),
                    ));
                }
                let mut engines = Vec::with_capacity(shards.len());
                for (i, section) in shards.into_iter().enumerate() {
                    let expected = Interval::new(boundaries[i], boundaries[i + 1]);
                    if section.clip != Some(expected) {
                        return Err(PersistError::Corrupt(format!(
                            "shard {i} clip disagrees with the boundary table"
                        )));
                    }
                    engines.push(section.restore(topology, self.config, &registry)?);
                }
                let rules: HashMap<RuleId, Rule> = registry;
                Ok(PersistNet::Sharded(Box::new(
                    ShardedDeltaNet::from_restored(topology.clone(), boundaries, engines, rules),
                )))
            }
        }
    }

    /// An *empty* engine of the same shape as the snapshotted one — same
    /// configuration, same kind, same shard boundaries — used by
    /// [`violations_at`] when the requested point in time lies before the
    /// snapshot.
    pub fn fresh_like(&self, topology: &Topology) -> Result<PersistNet, PersistError> {
        self.check_topology(topology)?;
        match &self.kind {
            SnapshotKind::Single(_) => Ok(PersistNet::Single(Box::new(DeltaNet::new(
                topology.clone(),
                self.config,
            )))),
            SnapshotKind::Sharded { shards, .. } => Ok(PersistNet::Sharded(Box::new(
                ShardedDeltaNet::new(topology.clone(), self.config, shards.len()),
            ))),
        }
    }
}

fn encode_rule(w: &mut Writer, rule: &Rule) {
    w.varint(rule.id.0);
    w.varint_wide(rule.prefix.value());
    w.u8(rule.prefix.len());
    w.u8(rule.prefix.width());
    w.varint(u64::from(rule.priority));
    w.varint(u64::from(rule.source.0));
    w.varint(u64::from(rule.link.0));
    w.u8(match rule.action {
        Action::Forward => 0,
        Action::Drop => 1,
    });
    w.u8(rule.sec.count() as u8);
    for interval in rule.sec.intervals() {
        w.varint_wide(interval.lo());
        w.varint_wide(interval.hi());
    }
}

/// Decodes one rule record; when `field_width` is known (snapshot registry)
/// the record's width must match it, otherwise (delta-log records) any valid
/// width is accepted. `has_sec` is true for format-v3 containers, whose rule
/// records carry a trailing secondary-match block; older records decode as
/// primary-only rules.
fn decode_rule(
    r: &mut Reader<'_>,
    field_width: Option<u8>,
    has_sec: bool,
) -> Result<Rule, PersistError> {
    let id = RuleId(r.varint()?);
    let value = r.varint_wide()?;
    let len = r.u8()?;
    let width = r.u8()?;
    if width == 0 || width > 127 || len > width || field_width.is_some_and(|w| w != width) {
        return r.corrupt("rule prefix outside the configured field");
    }
    let prefix = IpPrefix::new(value, len, width);
    let priority = u32::try_from(r.varint()?).or_else(|_| r.corrupt("priority exceeds 32 bits"))?;
    let source =
        NodeId(u32::try_from(r.varint()?).or_else(|_| r.corrupt("node id exceeds 32 bits"))?);
    let link =
        LinkId(u32::try_from(r.varint()?).or_else(|_| r.corrupt("link id exceeds 32 bits"))?);
    let action = match r.u8()? {
        0 => Action::Forward,
        1 => Action::Drop,
        _ => return r.corrupt("invalid rule action"),
    };
    let sec = if has_sec {
        let count = usize::from(r.u8()?);
        if count > MAX_SECONDARY_FIELDS {
            return r.corrupt("rule constrains too many secondary fields");
        }
        let mut intervals = Vec::with_capacity(count);
        for _ in 0..count {
            let lo = r.varint_wide()?;
            let hi = r.varint_wide()?;
            if lo >= hi {
                return r.corrupt("inverted secondary interval");
            }
            if hi > 1 << netmodel::header::MAX_SECONDARY_WIDTH {
                return r.corrupt("secondary bound exceeds the field range");
            }
            intervals.push(Interval::new(lo, hi));
        }
        if intervals.is_empty() {
            SecondaryMatch::default()
        } else {
            SecondaryMatch::new(&intervals)
        }
    } else {
        SecondaryMatch::default()
    };
    Ok(Rule {
        id,
        prefix,
        priority,
        source,
        link,
        action,
        sec,
    })
}

// ---------------------------------------------------------------------------
// PersistNet: a restored engine of either kind
// ---------------------------------------------------------------------------

/// A live engine restored from (or about to be captured into) a snapshot:
/// either a stand-alone [`DeltaNet`] or a [`ShardedDeltaNet`], behind one
/// update/query surface so recovery code does not fork on the kind.
pub enum PersistNet {
    /// A stand-alone engine.
    Single(Box<DeltaNet>),
    /// A sharded engine.
    Sharded(Box<ShardedDeltaNet>),
}

impl PersistNet {
    /// Fallible single-operation apply (see [`Checker::try_apply`]).
    pub fn try_apply(&mut self, op: &Op) -> Result<UpdateReport, UpdateError> {
        match self {
            PersistNet::Single(n) => n.try_apply(op),
            PersistNet::Sharded(n) => n.try_apply(op),
        }
    }

    /// Applies a window of operations, stopping at the first malformed one
    /// (operations before it stay applied — the pinned mid-batch failure
    /// semantics of [`ShardedDeltaNet::apply_batch`]).
    pub fn apply_batch(&mut self, ops: &[Op]) -> Result<Vec<UpdateReport>, ReplayError> {
        match self {
            PersistNet::Single(n) => n.try_replay(ops),
            PersistNet::Sharded(n) => n.apply_batch(ops),
        }
    }

    /// Attaches a violation monitor (idempotent in effect: an existing
    /// monitor is re-seeded from the current plane).
    pub fn enable_monitor(&mut self) {
        match self {
            PersistNet::Single(n) => {
                n.enable_monitor();
            }
            PersistNet::Sharded(n) => n.enable_monitor(),
        }
    }

    /// Whether a violation monitor is attached.
    pub fn is_monitored(&self) -> bool {
        match self {
            PersistNet::Single(n) => n.monitor().is_some(),
            PersistNet::Sharded(n) => n.shards().iter().all(|s| s.monitor().is_some()),
        }
    }

    /// The currently active violations (see [`Checker::active_violations`]).
    pub fn active_violations(&self) -> Option<Vec<InvariantViolation>> {
        match self {
            PersistNet::Single(n) => DeltaNet::active_violations(n),
            PersistNet::Sharded(n) => ShardedDeltaNet::active_violations(n),
        }
    }

    /// Runs a compaction pass (see [`DeltaNet::compact`]).
    pub fn compact(&mut self) -> CompactReport {
        match self {
            PersistNet::Single(n) => n.compact(),
            PersistNet::Sharded(n) => n.compact(),
        }
    }

    /// Full-plane forwarding-loop scan.
    pub fn check_all_loops(&self) -> Vec<InvariantViolation> {
        match self {
            PersistNet::Single(n) => n.check_all_loops(),
            PersistNet::Sharded(n) => n.check_all_loops(),
        }
    }

    /// Full-plane blackhole scan.
    pub fn check_all_blackholes(&self) -> Vec<InvariantViolation> {
        match self {
            PersistNet::Single(n) => n.check_all_blackholes(),
            PersistNet::Sharded(n) => n.check_all_blackholes(),
        }
    }

    /// Number of atoms owned across the engine (atoms of a stand-alone
    /// engine; per-shard owned atoms summed for a sharded one).
    pub fn atom_count(&self) -> usize {
        match self {
            PersistNet::Single(n) => n.atom_count(),
            PersistNet::Sharded(n) => n.atom_count(),
        }
    }

    /// Heap bytes addressed by live state (see [`DeltaNet::live_bytes`]).
    pub fn live_bytes(&self) -> usize {
        match self {
            PersistNet::Single(n) => n.live_bytes(),
            PersistNet::Sharded(n) => n.live_bytes(),
        }
    }

    /// The stand-alone engine, if this is one.
    pub fn as_single(&self) -> Option<&DeltaNet> {
        match self {
            PersistNet::Single(n) => Some(n),
            PersistNet::Sharded(_) => None,
        }
    }

    /// The sharded engine, if this is one.
    pub fn as_sharded(&self) -> Option<&ShardedDeltaNet> {
        match self {
            PersistNet::Single(_) => None,
            PersistNet::Sharded(n) => Some(n),
        }
    }

    /// The engine configuration (shared by every shard in the sharded case).
    pub fn config(&self) -> DeltaNetConfig {
        match self {
            PersistNet::Single(n) => n.config(),
            PersistNet::Sharded(n) => n.config(),
        }
    }
}

impl Checker for PersistNet {
    fn name(&self) -> &'static str {
        match self {
            PersistNet::Single(n) => n.name(),
            PersistNet::Sharded(n) => n.name(),
        }
    }

    fn apply(&mut self, op: &Op) -> UpdateReport {
        match self {
            PersistNet::Single(n) => n.apply(op),
            PersistNet::Sharded(n) => n.apply(op),
        }
    }

    fn try_apply(&mut self, op: &Op) -> Result<UpdateReport, UpdateError> {
        PersistNet::try_apply(self, op)
    }

    fn what_if_link_failure(&self, link: LinkId, check_loops: bool) -> WhatIfReport {
        match self {
            PersistNet::Single(n) => n.what_if_link_failure(link, check_loops),
            PersistNet::Sharded(n) => n.what_if_link_failure(link, check_loops),
        }
    }

    fn rule_count(&self) -> usize {
        match self {
            PersistNet::Single(n) => n.rule_count(),
            PersistNet::Sharded(n) => n.rule_count(),
        }
    }

    fn class_count(&self) -> usize {
        match self {
            PersistNet::Single(n) => n.class_count(),
            PersistNet::Sharded(n) => n.class_count(),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            PersistNet::Single(n) => n.memory_bytes(),
            PersistNet::Sharded(n) => n.memory_bytes(),
        }
    }

    fn active_violations(&self) -> Option<Vec<InvariantViolation>> {
        PersistNet::active_violations(self)
    }
}

// ---------------------------------------------------------------------------
// Delta log
// ---------------------------------------------------------------------------

/// An append-only log of update operations, buffered in memory and flushed
/// per batch at a configurable [`Durability`]. Each record is one [`Op`],
/// framed as `varint(payload_len) ++ payload ++ u32-LE checksum` so a torn
/// write is detectable (and repairable) to the byte; the container opens
/// with a magic + version header and carries no trailer — the log grows
/// forever, so readers validate per-record framing instead.
pub struct DeltaLog {
    backend: Box<dyn StorageBackend>,
    path: PathBuf,
    buf: Vec<u8>,
    ops_logged: u64,
    durability: Durability,
    /// Bytes known to be fully and correctly in the file: the truncation
    /// target if a flush fails partway (see [`DeltaLog::flush`]).
    committed_len: u64,
    /// A previous flush failed after possibly landing a partial record in
    /// the file; the next flush first truncates back to `committed_len`
    /// before re-appending, so a transient I/O error cannot leave duplicate
    /// or interleaved partial records mid-file.
    wounded: bool,
}

impl DeltaLog {
    /// Creates (truncating) a log file at `path` and writes the header,
    /// using real files and the default [`Durability::FlushPerBatch`].
    pub fn create(path: &Path) -> Result<DeltaLog, PersistError> {
        DeltaLog::create_with(Box::new(FsBackend), path, Durability::default())
    }

    /// Creates (truncating) a log through an explicit backend at an
    /// explicit durability level.
    pub fn create_with(
        mut backend: Box<dyn StorageBackend>,
        path: &Path,
        durability: Durability,
    ) -> Result<DeltaLog, PersistError> {
        backend.create(path)?;
        let mut header = Vec::with_capacity(LOG_HEADER_LEN as usize);
        header.extend_from_slice(LOG_MAGIC);
        header.push(LOG_FORMAT_VERSION);
        backend.append(path, &header)?;
        Ok(DeltaLog {
            backend,
            path: path.to_path_buf(),
            buf: Vec::new(),
            ops_logged: 0,
            durability,
            committed_len: LOG_HEADER_LEN,
            wounded: false,
        })
    }

    /// Reopens an existing log for appending. `ops_logged` is the number of
    /// valid records already in the file (the caller has just read it); the
    /// current file length becomes the committed baseline.
    pub fn resume_with(
        mut backend: Box<dyn StorageBackend>,
        path: &Path,
        durability: Durability,
        ops_logged: u64,
    ) -> Result<DeltaLog, PersistError> {
        let committed_len = backend.read(path)?.len() as u64;
        if committed_len < LOG_HEADER_LEN {
            return Err(PersistError::Corrupt(format!(
                "cannot resume log {}: shorter than its header",
                path.display()
            )));
        }
        Ok(DeltaLog {
            backend,
            path: path.to_path_buf(),
            buf: Vec::new(),
            ops_logged,
            durability,
            committed_len,
            wounded: false,
        })
    }

    /// Appends one operation to the in-memory buffer (no I/O until
    /// [`DeltaLog::flush`] / [`DeltaLog::sync`]).
    pub fn append(&mut self, op: &Op) {
        self.buf.extend_from_slice(&encode_record(op));
        self.ops_logged += 1;
    }

    /// Writes the buffered records to the file, honouring a wounded
    /// truncate-then-retry if a previous write failed partway.
    fn write_out(&mut self) -> Result<(), PersistError> {
        if self.wounded {
            self.backend.truncate(&self.path, self.committed_len)?;
            self.wounded = false;
        }
        if self.buf.is_empty() {
            return Ok(());
        }
        if let Err(e) = self.backend.append(&self.path, &self.buf) {
            // The append may have landed a partial record; the buffer is
            // kept so a retry can truncate back and re-append all of it.
            self.wounded = true;
            return Err(PersistError::Io(e));
        }
        self.committed_len += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Pushes buffered records toward stable storage as far as the
    /// configured [`Durability`] asks: not at all (`Buffered`), into the
    /// file (`FlushPerBatch`), or through an fsync (`FsyncPerBatch`) —
    /// fsync failures surface as [`PersistError::Io`].
    pub fn flush(&mut self) -> Result<(), PersistError> {
        match self.durability {
            Durability::Buffered => Ok(()),
            Durability::FlushPerBatch => self.write_out(),
            Durability::FsyncPerBatch => self.sync(),
        }
    }

    /// Writes buffered records and fsyncs, regardless of the configured
    /// durability — the "make it stick now" call used before snapshots and
    /// on shutdown.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.write_out()?;
        self.backend.sync_file(&self.path)?;
        Ok(())
    }

    /// Number of operations appended so far (flushed or not).
    pub fn ops_logged(&self) -> u64 {
        self.ops_logged
    }

    /// The configured durability level.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Encodes one operation as a framed log record:
/// `varint(payload_len) ++ payload ++ u32-LE fnv1a(payload)`. Public within
/// the crate's test surface so crash suites can compute record boundaries.
pub fn encode_record(op: &Op) -> Vec<u8> {
    let mut payload = Writer::default();
    encode_op(&mut payload, op);
    let payload = payload.buf;
    let mut w = Writer::default();
    w.varint(payload.len() as u64);
    w.buf.extend_from_slice(&payload);
    let sum = (fnv1a(&payload) & 0xffff_ffff) as u32;
    w.buf.extend_from_slice(&sum.to_le_bytes());
    w.buf
}

fn encode_op(w: &mut Writer, op: &Op) {
    match op {
        Op::Insert(rule) => {
            w.u8(0);
            encode_rule(w, rule);
        }
        Op::Remove(id) => {
            w.u8(1);
            w.varint(id.0);
        }
    }
}

/// Decodes one framed record payload (tag + body), requiring it to consume
/// the payload exactly.
fn decode_payload(payload: &[u8], has_sec: bool) -> Result<Op, PersistError> {
    let mut r = Reader::new(payload);
    let op = match r.u8()? {
        0 => Op::Insert(decode_rule(&mut r, None, has_sec)?),
        1 => Op::Remove(RuleId(r.varint()?)),
        _ => return r.corrupt("invalid log record tag"),
    };
    if r.pos != payload.len() {
        return r.corrupt("trailing garbage inside log record");
    }
    Ok(op)
}

/// Parses the framed records of a delta-log body (after the header),
/// returning the decoded valid prefix and, if the tail is torn or corrupt,
/// the byte offset where the first bad record starts.
fn parse_records(bytes: &[u8], has_sec: bool) -> (Vec<Op>, Option<u64>) {
    // A single op record is tiny; anything claiming to be huge is a torn
    // or corrupt length prefix, not a real record.
    const MAX_PAYLOAD: u64 = 1 << 16;
    let mut ops = Vec::new();
    let mut pos = LOG_HEADER_LEN as usize;
    while pos < bytes.len() {
        let mut r = Reader { buf: bytes, pos };
        let Ok(payload_len) = r.varint() else {
            return (ops, Some(pos as u64));
        };
        if payload_len > MAX_PAYLOAD {
            return (ops, Some(pos as u64));
        }
        let payload_start = r.pos;
        let payload_end = payload_start + payload_len as usize;
        let Some(payload) = bytes.get(payload_start..payload_end) else {
            return (ops, Some(pos as u64));
        };
        let Some(trailer) = bytes.get(payload_end..payload_end + 4) else {
            return (ops, Some(pos as u64));
        };
        let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
        if (fnv1a(payload) & 0xffff_ffff) as u32 != stored {
            return (ops, Some(pos as u64));
        }
        let Ok(op) = decode_payload(payload, has_sec) else {
            // Checksum-valid but undecodable: still never invent an op —
            // drop it and everything after.
            return (ops, Some(pos as u64));
        };
        ops.push(op);
        pos = payload_end + 4;
    }
    (ops, None)
}

/// Reads every operation of a delta log under [`RecoveryPolicy::Strict`]:
/// a log truncated or corrupted mid-record — the typical crash artifact —
/// is reported as a clean [`PersistError::Corrupt`] naming the torn byte
/// offset, not a panic.
pub fn read_log(path: &Path) -> Result<Vec<Op>, PersistError> {
    read_log_with(&mut FsBackend, path, RecoveryPolicy::Strict).map(|report| report.ops)
}

/// Reads a delta log through an explicit backend and recovery policy.
/// Under [`RecoveryPolicy::RepairTail`] a torn or corrupt tail is truncated
/// off the file (the repair is written back through `backend`) and reported
/// in the returned [`LogReadReport`].
pub fn read_log_with(
    backend: &mut dyn StorageBackend,
    path: &Path,
    policy: RecoveryPolicy,
) -> Result<LogReadReport, PersistError> {
    let bytes = backend.read(path)?;
    if (bytes.len() as u64) < LOG_HEADER_LEN {
        // A crash can tear the header write of a freshly rotated segment.
        // A partial header is repairable (the segment holds zero ops);
        // anything that is not a prefix of a valid header is corruption.
        let mut header = Vec::from(&LOG_MAGIC[..]);
        header.push(LOG_FORMAT_VERSION);
        if !header.starts_with(&bytes) {
            return Err(PersistError::Corrupt(format!(
                "{}: not a delta-log file (bad magic)",
                path.display()
            )));
        }
        return match policy {
            RecoveryPolicy::Strict => Err(PersistError::Corrupt(format!(
                "torn delta-log header at byte {} of {}",
                bytes.len(),
                path.display()
            ))),
            RecoveryPolicy::RepairTail => {
                backend.truncate(path, 0)?;
                backend.append(path, &header)?;
                Ok(LogReadReport {
                    ops: Vec::new(),
                    torn: Some(TornTail {
                        offset: 0,
                        bytes_dropped: bytes.len() as u64,
                    }),
                })
            }
        };
    }
    {
        let mut r = Reader::new(&bytes);
        let magic = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
        if &magic != LOG_MAGIC {
            return r.corrupt("not a delta-log file (bad magic)");
        }
        let version = r.u8()?;
        if !(MIN_LOG_FORMAT_VERSION..=LOG_FORMAT_VERSION).contains(&version) {
            return Err(PersistError::Corrupt(format!(
                "unsupported delta-log version {version}"
            )));
        }
    }
    let version = bytes[LOG_HEADER_LEN as usize - 1];
    let (ops, torn_at) = parse_records(&bytes, version >= 3);
    match torn_at {
        None => Ok(LogReadReport { ops, torn: None }),
        Some(offset) => {
            let bytes_dropped = bytes.len() as u64 - offset;
            match policy {
                RecoveryPolicy::Strict => Err(PersistError::Corrupt(format!(
                    "torn or corrupt log record at byte {offset} of {} \
                     ({bytes_dropped} trailing bytes unusable; {} ops valid)",
                    path.display(),
                    ops.len()
                ))),
                RecoveryPolicy::RepairTail => {
                    backend.truncate(path, offset)?;
                    Ok(LogReadReport {
                        ops,
                        torn: Some(TornTail {
                            offset,
                            bytes_dropped,
                        }),
                    })
                }
            }
        }
    }
}

/// A [`PersistNet`] that records every *applied* operation to a
/// [`DeltaLog`]. The log is write-behind: an op is appended only after the
/// engine accepted it, so on a mid-batch failure the log holds exactly the
/// applied prefix — recovery replays it and lands on the same state.
pub struct LoggedNet {
    /// `Some` until [`LoggedNet::into_net`] extracts it (the `Option` only
    /// exists so the [`Drop`] guard can coexist with the by-value unwrap).
    net: Option<PersistNet>,
    log: DeltaLog,
    ops_applied: u64,
    /// A log-flush failure raised inside [`LoggedNet::apply_batch`] (whose
    /// error channel is the engine's [`ReplayError`], not I/O); surfaced by
    /// the next [`LoggedNet::flush`] / [`LoggedNet::sync`] /
    /// [`LoggedNet::snapshot`] / [`LoggedNet::into_net`] call. Dropping a
    /// `LoggedNet` while one is pending panics — the error cannot be
    /// silently discarded.
    deferred_io: Option<std::io::Error>,
}

impl LoggedNet {
    /// Wraps an engine, creating a fresh log at `log_path` (real files,
    /// default [`Durability::FlushPerBatch`]). `ops_applied` is the number
    /// of ops already incorporated into `net` (the `ops_applied` of the
    /// snapshot it was restored from; 0 for a fresh engine).
    pub fn new(
        net: PersistNet,
        log_path: &Path,
        ops_applied: u64,
    ) -> Result<LoggedNet, PersistError> {
        LoggedNet::with_durability(net, log_path, ops_applied, Durability::default())
    }

    /// [`LoggedNet::new`] at an explicit durability level.
    pub fn with_durability(
        net: PersistNet,
        log_path: &Path,
        ops_applied: u64,
        durability: Durability,
    ) -> Result<LoggedNet, PersistError> {
        LoggedNet::with_backend(net, Box::new(FsBackend), log_path, ops_applied, durability)
    }

    /// [`LoggedNet::new`] through an explicit [`StorageBackend`].
    pub fn with_backend(
        net: PersistNet,
        backend: Box<dyn StorageBackend>,
        log_path: &Path,
        ops_applied: u64,
        durability: Durability,
    ) -> Result<LoggedNet, PersistError> {
        Ok(LoggedNet {
            net: Some(net),
            log: DeltaLog::create_with(backend, log_path, durability)?,
            ops_applied,
            deferred_io: None,
        })
    }

    fn net_ref(&self) -> &PersistNet {
        self.net.as_ref().expect("engine present until into_net")
    }

    /// Applies one operation; on success it is appended to the log buffer
    /// (flushed on the next [`LoggedNet::flush`] / batch / snapshot).
    pub fn try_apply(&mut self, op: &Op) -> Result<UpdateReport, UpdateError> {
        let report = self
            .net
            .as_mut()
            .expect("engine present until into_net")
            .try_apply(op)?;
        self.log.append(op);
        self.ops_applied += 1;
        Ok(report)
    }

    /// Applies a window of operations and flushes the log once at the end
    /// (honouring the configured [`Durability`]). On a mid-batch failure
    /// exactly the applied prefix `ops[..e.index]` is logged (and flushed)
    /// before the error is returned, so log and engine state agree even on
    /// the error path. A flush failure cannot be returned here (the error
    /// channel is the engine's [`ReplayError`]) so it is deferred — and a
    /// deferred error is impossible to lose: the next
    /// [`LoggedNet::flush`] / [`LoggedNet::sync`] / [`LoggedNet::snapshot`]
    /// / [`LoggedNet::into_net`] surfaces it, and dropping the wrapper with
    /// one pending panics.
    pub fn apply_batch(&mut self, ops: &[Op]) -> Result<Vec<UpdateReport>, ReplayError> {
        let (applied, result) = match self
            .net
            .as_mut()
            .expect("engine present until into_net")
            .apply_batch(ops)
        {
            Ok(reports) => (ops.len(), Ok(reports)),
            Err(e) => (e.index, Err(e)),
        };
        for op in &ops[..applied] {
            self.log.append(op);
        }
        self.ops_applied += applied as u64;
        if let Err(PersistError::Io(e)) = self.log.flush() {
            self.deferred_io = Some(e);
        }
        result
    }

    fn take_deferred(&mut self) -> Result<(), PersistError> {
        match self.deferred_io.take() {
            Some(e) => Err(PersistError::Io(e)),
            None => Ok(()),
        }
    }

    /// Flushes buffered log records per the configured [`Durability`]
    /// (surfacing any flush failure a previous [`LoggedNet::apply_batch`]
    /// had to defer).
    pub fn flush(&mut self) -> Result<(), PersistError> {
        self.take_deferred()?;
        self.log.flush()
    }

    /// Writes and fsyncs all buffered log records regardless of the
    /// configured durability (surfacing any deferred flush failure).
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.take_deferred()?;
        self.log.sync()
    }

    /// Syncs the log and captures a snapshot of the current state at the
    /// current log position (a snapshot must never claim ops the log does
    /// not durably hold).
    pub fn snapshot(&mut self) -> Result<Snapshot, PersistError> {
        self.sync()?;
        Ok(Snapshot::of_net(self.net_ref(), self.ops_applied))
    }

    /// Number of operations applied through this wrapper plus the restore
    /// baseline — the current log position.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// The wrapped engine (read-only).
    pub fn net(&self) -> &PersistNet {
        self.net_ref()
    }

    /// The wrapped engine (mutable — bypasses logging; use for queries and
    /// maintenance like [`PersistNet::compact`], not for updates).
    pub fn net_mut(&mut self) -> &mut PersistNet {
        self.net.as_mut().expect("engine present until into_net")
    }

    /// Unwraps into the engine, syncing the log first. A sync failure —
    /// including a deferred one from an earlier batch — is returned, never
    /// dropped.
    pub fn into_net(mut self) -> Result<PersistNet, PersistError> {
        self.sync()?;
        Ok(self.net.take().expect("engine present until into_net"))
    }
}

impl Drop for LoggedNet {
    fn drop(&mut self) {
        if let Some(e) = self.deferred_io.take() {
            if !std::thread::panicking() {
                panic!("LoggedNet dropped with an unhandled deferred log-flush error: {e}");
            }
        }
        // Best-effort final sync of anything still buffered (skipped after
        // into_net, which already synced).
        if self.net.is_some() {
            if let Err(e) = self.log.sync() {
                if !std::thread::panicking() {
                    eprintln!(
                        "warning: final delta-log sync of {} failed: {e}",
                        self.log.path().display()
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery and time-travel
// ---------------------------------------------------------------------------

/// Recovery: loads the snapshot, restores the engine, and replays the log
/// tail (`ops[snapshot.ops_applied..]`) under [`RecoveryPolicy::Strict`].
/// Returns the recovered engine and the total number of operations it has
/// incorporated. A log shorter than the snapshot's position, or a logged op
/// the restored engine rejects, is a [`PersistError::Mismatch`]; a torn log
/// tail is a [`PersistError::Corrupt`] (use [`recover_with`] and
/// [`RecoveryPolicy::RepairTail`] to salvage it instead).
pub fn recover(
    topology: &Topology,
    snapshot_path: &Path,
    log_path: &Path,
) -> Result<(PersistNet, u64), PersistError> {
    recover_with(
        topology,
        &mut FsBackend,
        snapshot_path,
        log_path,
        RecoveryPolicy::Strict,
    )
    .map(|(net, ops, _)| (net, ops))
}

/// [`recover`] through an explicit backend and recovery policy. Under
/// [`RecoveryPolicy::RepairTail`] a torn log tail is truncated to the
/// longest valid checksummed prefix and reported in the third tuple slot;
/// if the salvaged log ends *before* the snapshot's position (the tear ate
/// into ops the snapshot already incorporates), the snapshot state wins and
/// zero ops are replayed.
pub fn recover_with(
    topology: &Topology,
    backend: &mut dyn StorageBackend,
    snapshot_path: &Path,
    log_path: &Path,
    policy: RecoveryPolicy,
) -> Result<(PersistNet, u64, Option<TornTail>), PersistError> {
    let snapshot = Snapshot::read_from_backend(backend, snapshot_path)?;
    let baseline = snapshot.ops_applied();
    let mut net = snapshot.restore(topology)?;
    let report = read_log_with(backend, log_path, policy)?;
    let ops = report.ops;
    let start = usize::try_from(baseline)
        .map_err(|_| PersistError::Corrupt("snapshot op count exceeds usize".to_string()))?;
    if ops.len() < start {
        if report.torn.is_some() {
            // The torn tail cut below the snapshot position: the snapshot
            // is the most advanced consistent state that survived.
            return Ok((net, baseline, report.torn));
        }
        return Err(PersistError::Mismatch(format!(
            "snapshot is at op {start} but the log holds only {} ops",
            ops.len()
        )));
    }
    for (i, op) in ops[start..].iter().enumerate() {
        net.try_apply(op).map_err(|e| {
            PersistError::Mismatch(format!("logged op {} rejected on replay: {e}", start + i))
        })?;
    }
    Ok((net, ops.len() as u64, report.torn))
}

/// A stable digest of the *full* serialized engine state — bit-identical
/// states (atoms, owner arenas, labels, registry, monitor set) produce the
/// same digest. Used by the crash suites and bench to assert that recovery
/// landed exactly on an applied prefix.
pub fn state_digest(net: &PersistNet) -> u64 {
    fnv1a(&Snapshot::of_net(net, 0).to_bytes())
}

/// Time-travel: the violations active after exactly `op_n` operations of
/// `log`, answered by replaying forward from the nearest usable snapshot
/// with the monitor enabled. When the snapshot lies *after* `op_n` (or none
/// is given) the replay starts from an empty engine of the same shape.
/// `config` shapes the fresh engine when no snapshot is available at all.
pub fn violations_at(
    topology: &Topology,
    snapshot: Option<Snapshot>,
    log: &[Op],
    op_n: usize,
    config: DeltaNetConfig,
) -> Result<Vec<InvariantViolation>, PersistError> {
    if log.len() < op_n {
        return Err(PersistError::Mismatch(format!(
            "asked for op {op_n} but the log holds only {} ops",
            log.len()
        )));
    }
    let (mut net, start) = match snapshot {
        Some(snap) if usize::try_from(snap.ops_applied()).unwrap_or(usize::MAX) <= op_n => {
            let start = snap.ops_applied() as usize;
            (snap.restore(topology)?, start)
        }
        Some(snap) => (snap.fresh_like(topology)?, 0),
        None => (
            PersistNet::Single(Box::new(DeltaNet::new(topology.clone(), config))),
            0,
        ),
    };
    if !net.is_monitored() {
        net.enable_monitor();
    }
    for (i, op) in log[start..op_n].iter().enumerate() {
        net.try_apply(op).map_err(|e| {
            PersistError::Mismatch(format!("logged op {} rejected on replay: {e}", start + i))
        })?;
    }
    net.active_violations()
        .ok_or_else(|| PersistError::Mismatch("monitor unavailable after replay".to_string()))
}

// ---------------------------------------------------------------------------
// CheckpointManager: bounded-time recovery
// ---------------------------------------------------------------------------

/// Cadence and retention of a [`CheckpointManager`].
#[derive(Clone, Copy, Debug)]
pub struct CheckpointConfig {
    /// Rotate the log and take a snapshot every this many applied ops (the
    /// rotation happens at the exact multiple, so a batch's records can
    /// straddle two segments; the snapshot is taken once the batch that
    /// crossed the boundary commits).
    pub every_ops: u64,
    /// Number of snapshots to keep (the newest; log segments older than
    /// the oldest retained snapshot are deleted too). Clamped to ≥ 1.
    pub retain: usize,
    /// Durability of the per-batch log flush (checkpoints always fsync).
    pub durability: Durability,
}

impl Default for CheckpointConfig {
    fn default() -> CheckpointConfig {
        CheckpointConfig {
            every_ops: 1024,
            retain: 2,
            durability: Durability::FsyncPerBatch,
        }
    }
}

/// What a [`CheckpointManager::recover`] found and did.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Op position of the snapshot recovery restored from.
    pub baseline_ops: u64,
    /// Ops replayed from log segments on top of the snapshot.
    pub replayed_ops: u64,
    /// Total ops incorporated in the recovered engine
    /// (`baseline_ops + replayed_ops`, except when a torn tail cut below
    /// the snapshot — then the snapshot alone wins).
    pub ops_incorporated: u64,
    /// Valid ops salvaged from the final (possibly torn) segment.
    pub salvaged_tail_ops: u64,
    /// The torn tail repaired off the final segment, if any.
    pub torn: Option<TornTail>,
    /// Snapshots that had to be skipped as corrupt before one restored.
    pub snapshots_skipped: u64,
    /// Log segments read during replay.
    pub segments_replayed: u64,
}

fn snap_path(dir: &Path, op: u64) -> PathBuf {
    dir.join(format!("snap-{op:012}.dnsnap"))
}

fn segment_path(dir: &Path, op: u64) -> PathBuf {
    dir.join(format!("log-{op:012}.dnlog"))
}

/// Parses `snap-<op>.dnsnap` / `log-<op>.dnlog` names; anything else is
/// `None` (temp files from interrupted atomic writes are ignored).
fn parse_artifact(path: &Path) -> Option<(bool, u64)> {
    let name = path.file_name()?.to_str()?;
    let (is_snap, rest) = if let Some(rest) = name.strip_prefix("snap-") {
        (true, rest.strip_suffix(".dnsnap")?)
    } else if let Some(rest) = name.strip_prefix("log-") {
        (false, rest.strip_suffix(".dnlog")?)
    } else {
        return None;
    };
    rest.parse().ok().map(|op| (is_snap, op))
}

/// Sorted `(snapshot ops, segment start ops)` present in a checkpoint dir.
fn list_artifacts(
    backend: &mut dyn StorageBackend,
    dir: &Path,
) -> Result<(Vec<u64>, Vec<u64>), PersistError> {
    let mut snaps = Vec::new();
    let mut segments = Vec::new();
    for path in backend.list_dir(dir)? {
        match parse_artifact(&path) {
            Some((true, op)) => snaps.push(op),
            Some((false, op)) => segments.push(op),
            None => {}
        }
    }
    snaps.sort_unstable();
    segments.sort_unstable();
    Ok((snaps, segments))
}

/// A [`PersistNet`] whose durability artifacts are managed automatically:
/// every applied op is logged (framed, at the configured [`Durability`]),
/// the log rotates and the engine is snapshotted atomically every
/// `every_ops` operations, and old artifacts are deleted past the retention
/// horizon — so [`CheckpointManager::recover`] always replays at most one
/// cadence worth of ops, bounding recovery time regardless of history
/// length.
///
/// Directory layout: `snap-<op>.dnsnap` (state after `<op>` ops) and
/// `log-<op>.dnlog` (the segment whose first record is op `<op>`). Only the
/// final segment can be torn by a crash; recovery treats a torn *earlier*
/// segment as corruption even under [`RecoveryPolicy::RepairTail`].
pub struct CheckpointManager {
    backend: Box<dyn StorageBackend>,
    dir: PathBuf,
    config: CheckpointConfig,
    /// `Some` until [`CheckpointManager::close`] extracts it (see
    /// [`LoggedNet::net`] for why).
    net: Option<PersistNet>,
    log: DeltaLog,
    segment_start: u64,
    ops_applied: u64,
    last_checkpoint: u64,
    checkpoints_written: u64,
    deferred_io: Option<std::io::Error>,
}

impl CheckpointManager {
    /// Starts managing a fresh checkpoint directory for `net` (which has
    /// `ops_applied` ops incorporated already — 0 for a fresh engine). An
    /// initial snapshot is written immediately so recovery always has one.
    pub fn create(
        mut backend: Box<dyn StorageBackend>,
        dir: &Path,
        net: PersistNet,
        ops_applied: u64,
        config: CheckpointConfig,
    ) -> Result<CheckpointManager, PersistError> {
        backend.create_dir_all(dir)?;
        Snapshot::of_net(&net, ops_applied)
            .write_to_backend(backend.as_mut(), &snap_path(dir, ops_applied))?;
        let log = DeltaLog::create_with(
            backend.clone_backend(),
            &segment_path(dir, ops_applied),
            config.durability,
        )?;
        Ok(CheckpointManager {
            backend,
            dir: dir.to_path_buf(),
            config,
            net: Some(net),
            log,
            segment_start: ops_applied,
            ops_applied,
            last_checkpoint: ops_applied,
            checkpoints_written: 1,
            deferred_io: None,
        })
    }

    fn net_mut_ref(&mut self) -> &mut PersistNet {
        self.net.as_mut().expect("engine present until close")
    }

    /// Applies a window of operations with write-behind logging, rotating
    /// the log at every exact `every_ops` multiple crossed (so one batch's
    /// records can straddle two segments) and checkpointing once the batch
    /// commits. Engine errors return immediately with exactly the applied
    /// prefix logged; I/O errors are deferred like [`LoggedNet`]'s and
    /// surfaced by the next [`CheckpointManager::sync`] /
    /// [`CheckpointManager::checkpoint_now`] / [`CheckpointManager::close`]
    /// — dropping the manager with one pending panics.
    pub fn apply_batch(&mut self, ops: &[Op]) -> Result<Vec<UpdateReport>, ReplayError> {
        let (applied, result) = match self.net_mut_ref().apply_batch(ops) {
            Ok(reports) => (ops.len(), Ok(reports)),
            Err(e) => (e.index, Err(e)),
        };
        let mut crossed_cadence = false;
        for op in &ops[..applied] {
            self.log.append(op);
            self.ops_applied += 1;
            if self.ops_applied % self.config.every_ops.max(1) == 0 {
                crossed_cadence = true;
                if let Err(e) = self.rotate_segment() {
                    self.defer(e);
                }
            }
        }
        if let Err(e) = self.log.flush() {
            self.defer(e);
        }
        if crossed_cadence {
            if let Err(e) = self.do_checkpoint() {
                self.defer(e);
            }
        }
        result
    }

    fn defer(&mut self, e: PersistError) {
        if self.deferred_io.is_some() {
            return; // keep the first error; later ones are usually cascade
        }
        self.deferred_io = Some(match e {
            PersistError::Io(io) => io,
            other => std::io::Error::other(other.to_string()),
        });
    }

    /// Closes the current segment (written + fsynced) and opens the next
    /// one starting at the current op position.
    fn rotate_segment(&mut self) -> Result<(), PersistError> {
        self.log.sync()?;
        self.log = DeltaLog::create_with(
            self.backend.clone_backend(),
            &segment_path(&self.dir, self.ops_applied),
            self.config.durability,
        )?;
        self.segment_start = self.ops_applied;
        Ok(())
    }

    /// Syncs the log, writes a snapshot of the current state atomically,
    /// and applies retention.
    fn do_checkpoint(&mut self) -> Result<(), PersistError> {
        self.log.sync()?;
        let snap = Snapshot::of_net(
            self.net.as_ref().expect("engine present until close"),
            self.ops_applied,
        );
        snap.write_to_backend(
            self.backend.as_mut(),
            &snap_path(&self.dir, self.ops_applied),
        )?;
        self.last_checkpoint = self.ops_applied;
        self.checkpoints_written += 1;
        self.apply_retention()
    }

    /// Deletes snapshots past the retention count and log segments entirely
    /// older than the oldest retained snapshot.
    fn apply_retention(&mut self) -> Result<(), PersistError> {
        let (snaps, segments) = list_artifacts(self.backend.as_mut(), &self.dir)?;
        let retain = self.config.retain.max(1);
        if snaps.len() <= retain {
            return Ok(());
        }
        let oldest_kept = snaps[snaps.len() - retain];
        for &op in &snaps[..snaps.len() - retain] {
            self.backend.remove_file(&snap_path(&self.dir, op))?;
        }
        for (i, &start) in segments.iter().enumerate() {
            let end = segments.get(i + 1).copied();
            // A segment is disposable only when some later segment starts
            // at or before the oldest retained snapshot (never the live
            // tail segment).
            if end.is_some_and(|end| end <= oldest_kept) && start < self.segment_start {
                self.backend.remove_file(&segment_path(&self.dir, start))?;
            }
        }
        Ok(())
    }

    /// Surfaces any deferred I/O error, then writes + fsyncs the log.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        if let Some(e) = self.deferred_io.take() {
            return Err(PersistError::Io(e));
        }
        self.log.sync()
    }

    /// Forces a checkpoint now (sync, atomic snapshot, retention),
    /// surfacing any deferred I/O error first.
    pub fn checkpoint_now(&mut self) -> Result<(), PersistError> {
        if let Some(e) = self.deferred_io.take() {
            return Err(PersistError::Io(e));
        }
        self.do_checkpoint()
    }

    /// Unwraps into the engine, syncing the log first; a pending deferred
    /// error is returned, never dropped.
    pub fn close(mut self) -> Result<PersistNet, PersistError> {
        self.sync()?;
        Ok(self.net.take().expect("engine present until close"))
    }

    /// The managed engine (read-only).
    pub fn net(&self) -> &PersistNet {
        self.net.as_ref().expect("engine present until close")
    }

    /// The managed engine (mutable — bypasses logging; queries and
    /// maintenance only).
    pub fn net_mut(&mut self) -> &mut PersistNet {
        self.net_mut_ref()
    }

    /// Total ops incorporated (baseline + applied through this manager).
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Op position of the newest snapshot on disk.
    pub fn last_checkpoint(&self) -> u64 {
        self.last_checkpoint
    }

    /// Snapshots written over this manager's lifetime (including the
    /// initial one).
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// First op index of the segment currently being appended to.
    pub fn segment_start(&self) -> u64 {
        self.segment_start
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Recovers from a checkpoint directory: restores the newest usable
    /// snapshot (falling back to older ones past corrupt artifacts — the
    /// payoff of retention), replays the log segments from there, repairing
    /// the final segment's torn tail per `policy`, and resumes managing the
    /// directory. Recovery never invents ops: the recovered state is
    /// bit-identical to the engine state after some applied prefix.
    pub fn recover(
        mut backend: Box<dyn StorageBackend>,
        dir: &Path,
        topology: &Topology,
        policy: RecoveryPolicy,
        config: CheckpointConfig,
    ) -> Result<(CheckpointManager, RecoveryReport), PersistError> {
        let (snaps, segments) = list_artifacts(backend.as_mut(), dir)?;
        if snaps.is_empty() {
            return Err(PersistError::Mismatch(format!(
                "no snapshot found in checkpoint dir {}",
                dir.display()
            )));
        }
        // Sweep leftovers of interrupted atomic writes.
        for path in backend.list_dir(dir)? {
            if path.extension().is_some_and(|e| e == "tmp") {
                backend.remove_file(&path).ok();
            }
        }
        // Newest snapshot that reads and restores cleanly wins.
        let mut snapshots_skipped = 0;
        let mut chosen: Option<(u64, PersistNet)> = None;
        let mut last_err = None;
        for &snap_op in snaps.iter().rev() {
            match Snapshot::read_from_backend(backend.as_mut(), &snap_path(dir, snap_op))
                .and_then(|s| s.restore(topology))
            {
                Ok(net) => {
                    chosen = Some((snap_op, net));
                    break;
                }
                Err(e @ (PersistError::Corrupt(_) | PersistError::Mismatch(_))) => {
                    snapshots_skipped += 1;
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        let Some((baseline, mut net)) = chosen else {
            return Err(last_err.expect("at least one snapshot was tried"));
        };
        // The segment containing the snapshot position, then everything
        // after it. Only the final segment may be torn.
        let first_idx = segments.partition_point(|&s| s <= baseline).checked_sub(1);
        let Some(first_idx) = first_idx else {
            return Err(PersistError::Mismatch(format!(
                "no log segment covers snapshot position {baseline} in {}",
                dir.display()
            )));
        };
        let tail = &segments[first_idx..];
        let mut replayed = 0u64;
        let mut position = baseline;
        let mut torn = None;
        let mut salvaged_tail_ops = 0;
        for (i, &start) in tail.iter().enumerate() {
            let is_last = i == tail.len() - 1;
            let seg_policy = if is_last {
                policy
            } else {
                RecoveryPolicy::Strict
            };
            let report = read_log_with(backend.as_mut(), &segment_path(dir, start), seg_policy)?;
            if is_last {
                torn = report.torn;
                salvaged_tail_ops = report.ops.len() as u64;
            } else {
                let expected = tail[i + 1] - start;
                if report.ops.len() as u64 != expected {
                    return Err(PersistError::Mismatch(format!(
                        "non-final segment log-{start} holds {} ops, expected {expected}",
                        report.ops.len()
                    )));
                }
            }
            let seg_end = start + report.ops.len() as u64;
            if seg_end > position {
                let skip = (position - start) as usize;
                for (j, op) in report.ops[skip..].iter().enumerate() {
                    net.try_apply(op).map_err(|e| {
                        PersistError::Mismatch(format!(
                            "logged op {} rejected on replay: {e}",
                            position + j as u64
                        ))
                    })?;
                }
                replayed += (report.ops.len() - skip) as u64;
                position = seg_end;
            }
        }
        // Resume appending. Normally that means reopening the final
        // segment; if the tear cut below the snapshot position the old
        // tail is unusable for appends (its record count would disagree
        // with the op index), so a fresh segment starts at the snapshot.
        let last_start = *tail.last().expect("containing segment exists");
        let log = if position >= last_start && position - last_start == salvaged_tail_ops {
            DeltaLog::resume_with(
                backend.clone_backend(),
                &segment_path(dir, last_start),
                config.durability,
                salvaged_tail_ops,
            )?
        } else {
            DeltaLog::create_with(
                backend.clone_backend(),
                &segment_path(dir, position),
                config.durability,
            )?
        };
        let segment_start = log
            .path()
            .file_name()
            .and_then(|_| parse_artifact(log.path()))
            .map(|(_, op)| op)
            .unwrap_or(position);
        let report = RecoveryReport {
            baseline_ops: baseline,
            replayed_ops: replayed,
            ops_incorporated: position,
            salvaged_tail_ops,
            torn,
            snapshots_skipped,
            segments_replayed: tail.len() as u64,
        };
        let manager = CheckpointManager {
            backend,
            dir: dir.to_path_buf(),
            config,
            net: Some(net),
            log,
            segment_start,
            ops_applied: position,
            last_checkpoint: baseline,
            checkpoints_written: 0,
            deferred_io: None,
        };
        Ok((manager, report))
    }

    /// Time-travel over a checkpoint directory: the violations active after
    /// exactly `op_n` ops, answered from the newest usable snapshot at or
    /// before `op_n` plus the log segments in between. History before the
    /// oldest retained checkpoint is no longer replayable.
    pub fn violations_at(
        backend: &mut dyn StorageBackend,
        dir: &Path,
        topology: &Topology,
        op_n: u64,
        policy: RecoveryPolicy,
    ) -> Result<Vec<InvariantViolation>, PersistError> {
        let (snaps, segments) = list_artifacts(backend, dir)?;
        let mut chosen: Option<(u64, PersistNet)> = None;
        for &snap_op in snaps.iter().rev().filter(|&&s| s <= op_n) {
            match Snapshot::read_from_backend(backend, &snap_path(dir, snap_op))
                .and_then(|s| s.restore(topology))
            {
                Ok(net) => {
                    chosen = Some((snap_op, net));
                    break;
                }
                Err(PersistError::Corrupt(_) | PersistError::Mismatch(_)) => {}
                Err(e) => return Err(e),
            }
        }
        let Some((baseline, mut net)) = chosen else {
            return Err(PersistError::Mismatch(format!(
                "no usable snapshot at or before op {op_n} in {} \
                 (history before the oldest retained checkpoint is gone)",
                dir.display()
            )));
        };
        if !net.is_monitored() {
            net.enable_monitor();
        }
        if op_n > baseline {
            let first_idx = segments
                .partition_point(|&s| s <= baseline)
                .checked_sub(1)
                .ok_or_else(|| {
                    PersistError::Mismatch(format!(
                        "no log segment covers snapshot position {baseline} in {}",
                        dir.display()
                    ))
                })?;
            let tail = &segments[first_idx..];
            let mut position = baseline;
            for (i, &start) in tail.iter().enumerate() {
                if position >= op_n {
                    break;
                }
                let is_last = i == tail.len() - 1;
                let seg_policy = if is_last {
                    policy
                } else {
                    RecoveryPolicy::Strict
                };
                let report = read_log_with(backend, &segment_path(dir, start), seg_policy)?;
                let seg_end = start + report.ops.len() as u64;
                if seg_end <= position {
                    continue;
                }
                let skip = (position - start) as usize;
                let take = usize::try_from(op_n - position).unwrap_or(usize::MAX);
                for (j, op) in report.ops[skip..].iter().take(take).enumerate() {
                    net.try_apply(op).map_err(|e| {
                        PersistError::Mismatch(format!(
                            "logged op {} rejected on replay: {e}",
                            position + j as u64
                        ))
                    })?;
                }
                position = seg_end.min(op_n);
            }
            if position < op_n {
                return Err(PersistError::Mismatch(format!(
                    "asked for op {op_n} but only {position} ops are replayable"
                )));
            }
        }
        net.active_violations()
            .ok_or_else(|| PersistError::Mismatch("monitor unavailable after replay".to_string()))
    }
}

impl Drop for CheckpointManager {
    fn drop(&mut self) {
        if let Some(e) = self.deferred_io.take() {
            if !std::thread::panicking() {
                panic!("CheckpointManager dropped with an unhandled deferred I/O error: {e}");
            }
        }
        if self.net.is_some() {
            if let Err(e) = self.log.sync() {
                if !std::thread::panicking() {
                    eprintln!(
                        "warning: final checkpoint-log sync of {} failed: {e}",
                        self.log.path().display()
                    );
                }
            }
        }
    }
}
