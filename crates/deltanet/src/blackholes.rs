//! Blackhole detection on the edge-labelled graph.
//!
//! A *blackhole* is a switch that receives packets it has no rule for: the
//! traffic dies silently instead of being forwarded or explicitly dropped.
//! The paper's evaluation checks forwarding loops, but its design goals
//! (§2.2) call for supporting the usual family of reachability invariants;
//! blackholes are the most common one after loops, and the edge-labelled
//! graph answers them directly: an atom arriving at a switch over some
//! in-link but not present on any of its out-links (including the drop link)
//! is blackholed there.
//!
//! Surfaced end-to-end through [`DeltaNet::check_all_blackholes`] (and its
//! shard-wise counterpart on [`crate::shard::ShardedDeltaNet`]) and the
//! `deltanet replay --check blackholes` CLI flag.

use crate::atoms::AtomMap;
use crate::atomset::AtomSet;
use crate::engine::DeltaNet;
use crate::labels::Labels;
use netmodel::checker::InvariantViolation;
use netmodel::interval::normalize;
use netmodel::topology::Topology;

/// Finds all blackholes in the current data plane: for every switch, the set
/// of atoms that can arrive there but match no rule.
///
/// Packets originating *at* a switch (rather than arriving over a link) are
/// not considered, mirroring the usual formulation where traffic enters the
/// network at edge ports that are themselves modelled as links.
pub fn find_blackholes(
    topology: &Topology,
    labels: &Labels,
    atoms: &AtomMap,
) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for node in topology.switch_nodes() {
        // Atoms arriving at `node` over any in-link.
        let mut incoming = AtomSet::new();
        for &l in topology.in_links(node) {
            incoming.union_with(labels.get(l));
        }
        if incoming.is_empty() {
            continue;
        }
        // Atoms the switch handles: forwarded on some out-link or dropped.
        let mut handled = AtomSet::new();
        for &l in topology.out_links(node) {
            handled.union_with(labels.get(l));
        }
        incoming.difference_with(&handled);
        if !incoming.is_empty() {
            let packets = normalize(
                incoming
                    .iter()
                    .map(|a| atoms.atom_interval(a))
                    .collect::<Vec<_>>(),
            );
            out.push(InvariantViolation::Blackhole { node, packets });
        }
    }
    out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out
}

/// Convenience wrapper running [`find_blackholes`] on a checker's state.
pub fn check_blackholes(net: &DeltaNet) -> Vec<InvariantViolation> {
    find_blackholes(net.topology(), net.labels(), net.atoms())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DeltaNetConfig;
    use netmodel::interval::Interval;
    use netmodel::ip::IpPrefix;
    use netmodel::rule::{Rule, RuleId};
    use netmodel::topology::Topology;

    fn prefix(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn chain() -> (Topology, Vec<netmodel::topology::NodeId>) {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 3);
        topo.add_link(n[0], n[1]);
        topo.add_link(n[1], n[2]);
        (topo, n)
    }

    #[test]
    fn terminal_switch_without_rules_is_a_blackhole() {
        let (topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, n[1], l12));
        let holes = check_blackholes(&net);
        assert_eq!(holes.len(), 1);
        match &holes[0] {
            InvariantViolation::Blackhole { node, packets } => {
                assert_eq!(*node, n[2]);
                assert_eq!(packets, &vec![prefix("10.0.0.0/8").interval()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drop_rule_is_not_a_blackhole() {
        let (mut topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let d1 = topo.drop_link(n[1]);
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::drop(RuleId(2), prefix("10.0.0.0/8"), 1, n[1], d1));
        assert!(check_blackholes(&net).is_empty());
    }

    #[test]
    fn partial_coverage_blackholes_only_the_uncovered_part() {
        let (topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        // s0 forwards all of 10/8, but s1 only forwards the lower half.
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/9"), 1, n[1], l12));
        let holes = check_blackholes(&net);
        // s1 blackholes the upper half; s2 blackholes the lower half.
        assert_eq!(holes.len(), 2);
        let at_s1 = holes
            .iter()
            .find_map(|h| match h {
                InvariantViolation::Blackhole { node, packets } if *node == n[1] => {
                    Some(packets.clone())
                }
                _ => None,
            })
            .expect("blackhole at s1");
        assert_eq!(at_s1, vec![prefix("10.128.0.0/9").interval()]);
    }

    #[test]
    fn fixing_the_gap_clears_the_blackhole() {
        let (mut topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let d2 = topo.drop_link(n[2]);
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/9"), 1, n[1], l12));
        assert_eq!(check_blackholes(&net).len(), 2);
        // Cover the gap at s1 and terminate traffic at s2 explicitly.
        net.insert_rule(Rule::forward(
            RuleId(3),
            prefix("10.128.0.0/9"),
            1,
            n[1],
            l12,
        ));
        net.insert_rule(Rule::drop(RuleId(4), prefix("10.0.0.0/8"), 1, n[2], d2));
        assert!(check_blackholes(&net).is_empty());
        // Removing the covering rule re-introduces exactly one blackhole.
        net.remove_rule(RuleId(3));
        assert_eq!(check_blackholes(&net).len(), 1);
    }

    #[test]
    fn empty_network_has_no_blackholes() {
        let (topo, _) = chain();
        let net = DeltaNet::new(topo, DeltaNetConfig::default());
        assert!(check_blackholes(&net).is_empty());
    }

    #[test]
    fn violation_packets_are_normalized_intervals() {
        let (topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        // Two adjacent prefixes forwarded by s0, nothing at s1: the blackhole
        // report merges them into a single interval.
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/9"), 1, n[0], l01));
        net.insert_rule(Rule::forward(
            RuleId(2),
            prefix("10.128.0.0/9"),
            2,
            n[0],
            l01,
        ));
        let holes = check_blackholes(&net);
        assert_eq!(holes.len(), 1);
        match &holes[0] {
            InvariantViolation::Blackhole { packets, .. } => {
                assert_eq!(packets, &vec![Interval::new(0x0a00_0000, 0x0b00_0000)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
