//! Blackhole detection on the edge-labelled graph.
//!
//! A *blackhole* is a switch that receives packets it has no rule for: the
//! traffic dies silently instead of being forwarded or explicitly dropped.
//! The paper's evaluation checks forwarding loops, but its design goals
//! (§2.2) call for supporting the usual family of reachability invariants;
//! blackholes are the most common one after loops, and the edge-labelled
//! graph answers them directly: an atom arriving at a switch over some
//! in-link but not present on any of its out-links (including the drop link)
//! is blackholed there.
//!
//! Surfaced end-to-end through [`DeltaNet::check_all_blackholes`] (and its
//! shard-wise counterpart on [`crate::shard::ShardedDeltaNet`]), the
//! incrementally maintained [`crate::monitor::ViolationMonitor`], and the
//! `deltanet replay --check blackholes` / `--monitor` CLI flags.
//!
//! ## Edge-case semantics (pinned by the regression tests below)
//!
//! The distinction that matters operationally is *silent* loss versus
//! *intended* loss:
//!
//! * **No rule at the switch** — an atom arrives over some in-link and no
//!   rule (of any kind) matches it there: a blackhole. The traffic vanishes
//!   without anyone having asked for it.
//! * **Explicit drop rule** — the atom's owner at the switch resolves to the
//!   switch's drop link. The drop link is an out-link like any other, so the
//!   atom counts as *handled* and is **not** a blackhole: dropping was a
//!   policy decision, and reporting it would bury real faults in noise.
//! * **[`Topology::is_drop_node`] sinks** — the synthetic node at the far
//!   end of every drop link. It is not a switch (`switch_nodes` excludes
//!   it), it is never evaluated for blackholes, and walks terminate there;
//!   atoms "arriving" at it are exactly the explicitly dropped ones.
//!
//! Packets originating *at* a switch (rather than arriving over a link) are
//! not considered, mirroring the usual formulation where traffic enters the
//! network at edge ports that are themselves modelled as links.

use crate::atoms::AtomMap;
use crate::atomset::AtomSet;
use crate::engine::DeltaNet;
use crate::labels::Labels;
use netmodel::checker::InvariantViolation;
use netmodel::interval::normalize;
use netmodel::topology::{NodeId, Topology};

/// The atoms blackholed at `node`: arriving over some in-link but neither
/// forwarded nor explicitly dropped by any out-link (see the module docs for
/// the drop-rule / no-rule distinction).
pub(crate) fn blackholed_atoms_at(topology: &Topology, labels: &Labels, node: NodeId) -> AtomSet {
    // Atoms arriving at `node` over any in-link.
    let mut incoming = AtomSet::new();
    for &l in topology.in_links(node) {
        incoming.union_with(labels.get(l));
    }
    if incoming.is_empty() {
        return incoming;
    }
    // Atoms the switch handles: forwarded on some out-link or dropped.
    let mut handled = AtomSet::new();
    for &l in topology.out_links(node) {
        handled.union_with(labels.get(l));
    }
    incoming.difference_with(&handled);
    incoming
}

/// Whether the single atom `atom` is blackholed at `node` — the point form
/// of [`blackholed_atoms_at`] used by the monitor's per-delta re-checks.
pub(crate) fn is_blackholed_at(
    topology: &Topology,
    labels: &Labels,
    node: NodeId,
    atom: crate::atoms::AtomId,
) -> bool {
    topology
        .in_links(node)
        .iter()
        .any(|&l| labels.contains(l, atom))
        && !topology
            .out_links(node)
            .iter()
            .any(|&l| labels.contains(l, atom))
}

/// Renders per-node blackholed atom sets as sorted [`InvariantViolation`]s —
/// shared by the full scan and the monitor so their reports are
/// bit-identical. Empty sets are skipped.
pub(crate) fn render_blackholes<'a>(
    holes: impl IntoIterator<Item = (NodeId, &'a AtomSet)>,
    atoms: &AtomMap,
) -> Vec<InvariantViolation> {
    let mut out: Vec<InvariantViolation> = holes
        .into_iter()
        .filter(|(_, set)| !set.is_empty())
        .map(|(node, set)| {
            let packets = normalize(
                set.iter()
                    .map(|a| atoms.atom_interval(a))
                    .collect::<Vec<_>>(),
            );
            InvariantViolation::Blackhole { node, packets }
        })
        .collect();
    out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out
}

/// Finds all blackholes in the current data plane: for every switch, the set
/// of atoms that can arrive there but match no rule.
pub fn find_blackholes(
    topology: &Topology,
    labels: &Labels,
    atoms: &AtomMap,
) -> Vec<InvariantViolation> {
    let holes: Vec<(NodeId, AtomSet)> = topology
        .switch_nodes()
        .map(|node| (node, blackholed_atoms_at(topology, labels, node)))
        .collect();
    render_blackholes(holes.iter().map(|(n, s)| (*n, s)), atoms)
}

/// Convenience wrapper running [`find_blackholes`] on a checker's state.
pub fn check_blackholes(net: &DeltaNet) -> Vec<InvariantViolation> {
    find_blackholes(net.topology(), net.labels(), net.atoms())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DeltaNetConfig;
    use netmodel::interval::Interval;
    use netmodel::ip::IpPrefix;
    use netmodel::rule::{Rule, RuleId};
    use netmodel::topology::Topology;

    fn prefix(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn chain() -> (Topology, Vec<netmodel::topology::NodeId>) {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 3);
        topo.add_link(n[0], n[1]);
        topo.add_link(n[1], n[2]);
        (topo, n)
    }

    #[test]
    fn terminal_switch_without_rules_is_a_blackhole() {
        let (topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, n[1], l12));
        let holes = check_blackholes(&net);
        assert_eq!(holes.len(), 1);
        match &holes[0] {
            InvariantViolation::Blackhole { node, packets } => {
                assert_eq!(*node, n[2]);
                assert_eq!(packets, &vec![prefix("10.0.0.0/8").interval()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drop_rule_is_not_a_blackhole() {
        let (mut topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let d1 = topo.drop_link(n[1]);
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::drop(RuleId(2), prefix("10.0.0.0/8"), 1, n[1], d1));
        assert!(check_blackholes(&net).is_empty());
    }

    #[test]
    fn partial_coverage_blackholes_only_the_uncovered_part() {
        let (topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        // s0 forwards all of 10/8, but s1 only forwards the lower half.
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/9"), 1, n[1], l12));
        let holes = check_blackholes(&net);
        // s1 blackholes the upper half; s2 blackholes the lower half.
        assert_eq!(holes.len(), 2);
        let at_s1 = holes
            .iter()
            .find_map(|h| match h {
                InvariantViolation::Blackhole { node, packets } if *node == n[1] => {
                    Some(packets.clone())
                }
                _ => None,
            })
            .expect("blackhole at s1");
        assert_eq!(at_s1, vec![prefix("10.128.0.0/9").interval()]);
    }

    #[test]
    fn fixing_the_gap_clears_the_blackhole() {
        let (mut topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let d2 = topo.drop_link(n[2]);
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/9"), 1, n[1], l12));
        assert_eq!(check_blackholes(&net).len(), 2);
        // Cover the gap at s1 and terminate traffic at s2 explicitly.
        net.insert_rule(Rule::forward(
            RuleId(3),
            prefix("10.128.0.0/9"),
            1,
            n[1],
            l12,
        ));
        net.insert_rule(Rule::drop(RuleId(4), prefix("10.0.0.0/8"), 1, n[2], d2));
        assert!(check_blackholes(&net).is_empty());
        // Removing the covering rule re-introduces exactly one blackhole.
        net.remove_rule(RuleId(3));
        assert_eq!(check_blackholes(&net).len(), 1);
    }

    #[test]
    fn empty_network_has_no_blackholes() {
        let (topo, _) = chain();
        let net = DeltaNet::new(topo, DeltaNetConfig::default());
        assert!(check_blackholes(&net).is_empty());
    }

    #[test]
    fn drop_rule_vs_no_rule_distinction_is_per_atom() {
        // The module-docs distinction, pinned: at the *same* switch, the
        // half of the traffic covered by an explicit drop rule is intended
        // loss (not reported), while the half matching no rule at all is a
        // blackhole — the boundary between them is exact.
        let (mut topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let d1 = topo.drop_link(n[1]);
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::drop(RuleId(2), prefix("10.0.0.0/9"), 1, n[1], d1));
        let holes = check_blackholes(&net);
        assert_eq!(holes.len(), 1);
        match &holes[0] {
            InvariantViolation::Blackhole { node, packets } => {
                assert_eq!(*node, n[1]);
                // Only the undropped upper half is silently lost.
                assert_eq!(packets, &vec![prefix("10.128.0.0/9").interval()]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Covering the gap with a second drop rule silences the report —
        // everything that arrives is now explicitly handled.
        net.insert_rule(Rule::drop(
            RuleId(3),
            prefix("10.128.0.0/9"),
            1,
            n[1],
            topo_drop(&net, n[1]),
        ));
        assert!(check_blackholes(&net).is_empty());
    }

    /// The (pre-created) drop link of `node` — read-only lookup for tests.
    fn topo_drop(net: &DeltaNet, node: netmodel::topology::NodeId) -> netmodel::topology::LinkId {
        net.topology()
            .out_links(node)
            .iter()
            .copied()
            .find(|&l| net.topology().is_drop_link(l))
            .expect("drop link pre-created")
    }

    #[test]
    fn drop_node_sinks_are_never_reported_as_blackholes() {
        // The virtual sink behind every drop link receives all explicitly
        // dropped traffic and, by design, has no rules of its own. It must
        // never be evaluated as a blackhole — only real switches are.
        let (mut topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let d1 = topo.drop_link(n[1]);
        let sink = topo.drop_node().unwrap();
        assert!(topo.is_drop_node(sink));
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::drop(RuleId(2), prefix("10.0.0.0/8"), 1, n[1], d1));
        // Traffic flows a -> b -> sink; nothing is a blackhole, and the
        // sink never appears in any report.
        let holes = check_blackholes(&net);
        assert!(holes.is_empty());
        // Same verdict from the incrementally maintained monitor.
        let mut monitored = DeltaNet::new(
            net.topology().clone(),
            DeltaNetConfig {
                monitor_violations: true,
                ..DeltaNetConfig::default()
            },
        );
        monitored.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        monitored.insert_rule(Rule::drop(RuleId(2), prefix("10.0.0.0/8"), 1, n[1], d1));
        assert!(monitored.monitor().unwrap().is_clean());
    }

    #[test]
    fn node_with_no_rule_at_all_is_the_blackhole_case() {
        // The third leg of the distinction: a switch that receives traffic
        // and has *no* rule of any kind (the terminal s2 in the chain) is
        // exactly what the invariant exists to catch.
        let (topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let mut net = DeltaNet::new(
            topo,
            DeltaNetConfig {
                monitor_violations: true,
                ..DeltaNetConfig::default()
            },
        );
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], l01));
        net.insert_rule(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, n[1], l12));
        let holes = check_blackholes(&net);
        assert_eq!(holes.len(), 1);
        assert!(matches!(
            &holes[0],
            InvariantViolation::Blackhole { node, .. } if *node == n[2]
        ));
        // The monitor tracked it live, and full scan == live state.
        let mut expect = net.check_all_loops();
        expect.extend(net.check_all_blackholes());
        assert_eq!(net.active_violations().unwrap(), expect);
    }

    #[test]
    fn violation_packets_are_normalized_intervals() {
        let (topo, n) = chain();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        // Two adjacent prefixes forwarded by s0, nothing at s1: the blackhole
        // report merges them into a single interval.
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/9"), 1, n[0], l01));
        net.insert_rule(Rule::forward(
            RuleId(2),
            prefix("10.128.0.0/9"),
            2,
            n[0],
            l01,
        ));
        let holes = check_blackholes(&net);
        assert_eq!(holes.len(), 1);
        match &holes[0] {
            InvariantViolation::Blackhole { packets, .. } => {
                assert_eq!(packets, &vec![Interval::new(0x0a00_0000, 0x0b00_0000)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
