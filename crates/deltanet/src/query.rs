//! Flow queries over the persistent edge-labelled graph.
//!
//! Design goal 1 of the paper (§2.2): "efficiently find all packets that can
//! reach a node B from A", without repeated SAT/SMT solver calls and
//! irrespective of which rule was most recently updated. Because Delta-net
//! maintains `label[link]` persistently, these queries read the existing
//! state; they never recompute equivalence classes.
//!
//! Per atom the forwarding relation is a functional graph (each switch has
//! at most one owning rule per atom), so single-pair queries walk successor
//! chains; the all-pairs variant lives in [`crate::reachability`].
//!
//! In a multi-field configuration, atoms — and therefore query answers —
//! are the *primary-field projection*: the returned intervals cover every
//! packet whose primary field can flow, assuming its secondary fields
//! satisfy the owning rules along the path. Cross-field refinement (which
//! secondary value classes actually traverse a path) is the job of
//! [`crate::multifield`], which intersects secondary matches at check time.

use crate::atoms::AtomId;
use crate::atomset::AtomSet;
use crate::engine::DeltaNet;
use crate::loops::successor;
use netmodel::interval::{normalize, Interval};
use netmodel::topology::{LinkId, NodeId};

/// The answer to a single-pair flow query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowAnswer {
    /// The atoms that can flow from the query's source to its destination.
    pub atoms: Vec<AtomId>,
    /// The same packets as normalized destination-address intervals.
    pub packets: Vec<Interval>,
    /// For each reachable atom, the links of its path from source to
    /// destination (in hop order).
    pub paths: Vec<(AtomId, Vec<LinkId>)>,
}

impl FlowAnswer {
    /// Whether no packet can flow from the source to the destination.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

/// Query interface over a [`DeltaNet`] checker.
pub struct FlowQuery<'a> {
    net: &'a DeltaNet,
}

impl<'a> FlowQuery<'a> {
    /// Creates a query handle borrowing the checker's state.
    pub fn new(net: &'a DeltaNet) -> Self {
        FlowQuery { net }
    }

    /// The atoms leaving `node` on any link (the packets `node` forwards).
    pub fn atoms_leaving(&self, node: NodeId) -> AtomSet {
        let mut out = AtomSet::new();
        for &link in self.net.topology().out_links(node) {
            out.union_with(self.net.label(link));
        }
        out
    }

    /// All packets that can reach `dst` when injected at `src`, together
    /// with the per-atom paths (design goal 1 of §2.2).
    pub fn packets_from_to(&self, src: NodeId, dst: NodeId) -> FlowAnswer {
        let mut answer = FlowAnswer::default();
        let candidates = self.atoms_leaving(src);
        let topo = self.net.topology();
        let labels = self.net.labels();
        for atom in candidates.iter() {
            let mut cur = src;
            let mut path: Vec<LinkId> = Vec::new();
            let mut reached = false;
            for _ in 0..=topo.node_count() {
                if cur == dst && !path.is_empty() {
                    reached = true;
                    break;
                }
                match successor(topo, labels, cur, atom) {
                    Some(link) => {
                        path.push(link);
                        cur = topo.link(link).dst;
                        if topo.is_drop_node(cur) {
                            break;
                        }
                    }
                    None => break,
                }
            }
            if cur == dst && !path.is_empty() {
                reached = true;
            }
            if reached {
                answer.atoms.push(atom);
                answer.paths.push((atom, path));
            }
        }
        answer.packets = normalize(
            answer
                .atoms
                .iter()
                .map(|&a| self.net.atoms().atom_interval(a))
                .collect(),
        );
        answer
    }

    /// The switches reachable from `src` by at least one packet.
    pub fn reachable_nodes(&self, src: NodeId) -> Vec<NodeId> {
        let topo = self.net.topology();
        let labels = self.net.labels();
        let mut reachable = vec![false; topo.node_count()];
        for atom in self.atoms_leaving(src).iter() {
            let mut cur = src;
            for _ in 0..=topo.node_count() {
                match successor(topo, labels, cur, atom) {
                    Some(link) => {
                        let next = topo.link(link).dst;
                        if topo.is_drop_node(next) || reachable[next.index()] && next != src {
                            // Already explored beyond here for some atom; we
                            // still continue because this atom's path may
                            // diverge later, so only stop on drop.
                            if topo.is_drop_node(next) {
                                break;
                            }
                        }
                        reachable[next.index()] = true;
                        if next == src {
                            break; // looped back
                        }
                        cur = next;
                    }
                    None => break,
                }
            }
        }
        (0..topo.node_count() as u32)
            .map(NodeId)
            .filter(|n| reachable[n.index()] && !topo.is_drop_node(*n))
            .collect()
    }

    /// The packets (as intervals) currently forwarded along `link` — the
    /// constant-time edge-centric API of §3.3.
    pub fn packets_on_link(&self, link: LinkId) -> Vec<Interval> {
        normalize(
            self.net
                .label(link)
                .iter()
                .map(|a| self.net.atoms().atom_interval(a))
                .collect(),
        )
    }

    /// Whether traffic from `src` to `dst` always traverses `waypoint`
    /// (a simple waypointing / service-chaining invariant built from the
    /// per-atom paths).
    pub fn always_traverses(&self, src: NodeId, dst: NodeId, waypoint: NodeId) -> bool {
        let answer = self.packets_from_to(src, dst);
        if answer.is_empty() {
            return true; // vacuously
        }
        let topo = self.net.topology();
        answer.paths.iter().all(|(_, path)| {
            path.iter()
                .any(|&l| topo.link(l).src == waypoint || topo.link(l).dst == waypoint)
        })
    }

    /// Whether no packet injected at `src` can ever reach `dst`
    /// (a traffic-isolation invariant).
    pub fn isolated(&self, src: NodeId, dst: NodeId) -> bool {
        self.packets_from_to(src, dst).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DeltaNetConfig;
    use netmodel::ip::IpPrefix;
    use netmodel::rule::{Rule, RuleId};
    use netmodel::topology::Topology;

    fn prefix(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    /// Diamond: s0 -> s1 -> s3 for 10.0.0.0/9, s0 -> s2 -> s3 for the other
    /// half 10.128.0.0/9, plus a drop rule at s1 for a /16 slice.
    fn diamond() -> (DeltaNet, Vec<NodeId>) {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 4);
        let l01 = topo.add_link(n[0], n[1]);
        let l02 = topo.add_link(n[0], n[2]);
        let l13 = topo.add_link(n[1], n[3]);
        let l23 = topo.add_link(n[2], n[3]);
        let d1 = topo.drop_link(n[1]);
        let mut net = DeltaNet::new(topo, DeltaNetConfig::default());
        net.insert_rule(Rule::forward(RuleId(1), prefix("10.0.0.0/9"), 1, n[0], l01));
        net.insert_rule(Rule::forward(
            RuleId(2),
            prefix("10.128.0.0/9"),
            1,
            n[0],
            l02,
        ));
        net.insert_rule(Rule::forward(RuleId(3), prefix("10.0.0.0/8"), 1, n[1], l13));
        net.insert_rule(Rule::forward(RuleId(4), prefix("10.0.0.0/8"), 1, n[2], l23));
        net.insert_rule(Rule::drop(RuleId(5), prefix("10.5.0.0/16"), 9, n[1], d1));
        (net, n)
    }

    #[test]
    fn packets_from_to_covers_both_branches() {
        let (net, n) = diamond();
        let q = FlowQuery::new(&net);
        let answer = q.packets_from_to(n[0], n[3]);
        assert!(!answer.is_empty());
        // Everything in 10.0.0.0/8 except the dropped /16 reaches s3.
        let total: u128 = answer.packets.iter().map(|iv| iv.len()).sum();
        assert_eq!(total, (1u128 << 24) - (1u128 << 16));
        // Paths have two hops each.
        for (_, path) in &answer.paths {
            assert_eq!(path.len(), 2);
        }
    }

    #[test]
    fn dropped_slice_does_not_reach() {
        let (net, n) = diamond();
        let q = FlowQuery::new(&net);
        let answer = q.packets_from_to(n[0], n[3]);
        let dropped = prefix("10.5.0.0/16").interval();
        assert!(answer.packets.iter().all(|iv| !iv.overlaps(&dropped)));
    }

    #[test]
    fn reachable_nodes_from_source() {
        let (net, n) = diamond();
        let q = FlowQuery::new(&net);
        let mut reach = q.reachable_nodes(n[0]);
        reach.sort();
        assert_eq!(reach, vec![n[1], n[2], n[3]]);
        // s3 forwards nothing, so nothing is reachable from it.
        assert!(q.reachable_nodes(n[3]).is_empty());
    }

    #[test]
    fn isolation_and_waypointing() {
        let (net, n) = diamond();
        let q = FlowQuery::new(&net);
        assert!(!q.isolated(n[0], n[3]));
        assert!(q.isolated(n[3], n[0]));
        // Traffic from s1 to s3 goes direct, so it trivially traverses s1
        // (the source endpoint of each path's first link).
        assert!(q.always_traverses(n[1], n[3], n[1]));
        // Not all traffic from s0 to s3 goes through s1 (half goes via s2).
        assert!(!q.always_traverses(n[0], n[3], n[1]));
        // Vacuous truth when no flow exists.
        assert!(q.always_traverses(n[3], n[0], n[2]));
    }

    #[test]
    fn packets_on_link_matches_labels() {
        let (net, n) = diamond();
        let q = FlowQuery::new(&net);
        let l01 = net.topology().link_between(n[0], n[1]).unwrap();
        let on_l01 = q.packets_on_link(l01);
        assert_eq!(on_l01, vec![prefix("10.0.0.0/9").interval()]);
        let l02 = net.topology().link_between(n[0], n[2]).unwrap();
        assert_eq!(
            q.packets_on_link(l02),
            vec![prefix("10.128.0.0/9").interval()]
        );
    }

    #[test]
    fn atoms_leaving_union_of_out_links() {
        let (net, n) = diamond();
        let q = FlowQuery::new(&net);
        let leaving = q.atoms_leaving(n[0]);
        let expected: u128 = normalize(
            leaving
                .iter()
                .map(|a| net.atoms().atom_interval(a))
                .collect(),
        )
        .iter()
        .map(|iv| iv.len())
        .sum();
        assert_eq!(expected, 1u128 << 24); // all of 10.0.0.0/8
    }
}
