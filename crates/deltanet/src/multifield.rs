//! Cross-field checks for multi-field header spaces.
//!
//! A multi-field engine keeps one atom lattice per declared header field:
//! the primary (destination) lattice carries the full Delta-net machinery —
//! owner cells, edge labels, delta-graphs — exactly as in the single-field
//! engine, while each *secondary* field (source address, destination port,
//! …) keeps only its interval lattice. A packet class is then the cross
//! product of one atom per field, and the per-class forwarding function at a
//! node is "highest-priority covering rule whose secondary intervals all
//! contain the class" — resolved here, at check time, from the primary
//! owner cells plus the rules' secondary matches.
//!
//! This mirrors the layering argument in the Delta-net paper (§5): the
//! one-dimensional atom machinery is the workhorse, and additional header
//! fields multiply the classes that machinery is consulted for, rather than
//! multiplying the machinery itself. The single-field hot path never enters
//! this module.
//!
//! ## The incremental slice-repair contract
//!
//! The unit of cross-field work is a *slice*: one `(primary atom α,
//! secondary class c)` pair, whose forwarding function `F_{α,c}` maps each
//! node to [`mf_successor`]'s decision. The full scans ([`mf_cycles`],
//! [`mf_holes`]) evaluate every slice; the scoped repair
//! ([`mf_repair_slices`], with [`mf_cycles_for_slices`] /
//! [`mf_holes_for_slices`] as its two projections) evaluates exactly the
//! `atoms × classes` rectangle it is given. Both compute the same
//! predicates — pure functions of `F_{α,c}` — but through independent
//! implementations: the full scans re-resolve owner cells as they walk,
//! while the repair memoizes each emitter's decision once per slice and
//! chases stamped scratch arrays. A slice's scoped result is therefore
//! bit-identical to its share of the full scan, and the differential
//! suite cross-checks two genuinely distinct code paths.
//!
//! One rule update changes `F_{α,c}` only at the rule's source node, only
//! for atoms of its (clip-adjusted) interval, and only in classes its
//! [`netmodel::rule::SecondaryMatch`] covers — and among those, only
//! where the owner-cell winner at the source actually changed, which
//! [`decision_changed`] detects with one cell probe per slice; atoms and
//! classes created by lattice splits start with no tracked state and are
//! recomputed from scratch, never inherited (the PR 5 split rule, applied
//! cross-field).
//! The engine therefore repairs its per-class ledger ([`MfClassState`]) by
//! re-walking a few small rectangles per update instead of the whole
//! plane, and feeds the ledger's class-union to the
//! [`crate::monitor::ViolationMonitor`] — preserving exact identity-level
//! appeared/resolved events. `tests/multifield_differential.rs` pins the
//! bit-identity of the repaired state against these full scans after every
//! operation.
//!
//! Two things are deliberately *not* multi-field aware:
//!
//! * **Edge labels.** A label answers "which atoms does the
//!   highest-priority owner at this source forward over this link",
//!   ignoring secondary fields — a primary-field projection. Label-based
//!   scans over-approximate one class and under-approximate another when a
//!   secondary-constrained rule outranks a wildcard one, so the multi-field
//!   checks below never consult labels; they re-resolve winners from the
//!   owner cells per secondary class.
//! * **Secondary owner structures.** Secondary lattices are typically tiny
//!   (a handful of ACL source blocks); enumerating their cross product —
//!   memoized by the engine, invalidated only when an update actually adds
//!   or retires secondary bounds — is cheaper and simpler than maintaining
//!   N-dimensional owner state.

use crate::atoms::{AtomId, AtomMap, REMAP_DEAD};
use crate::atomset::AtomSet;
use crate::loops::canonicalize;
use crate::owner::Owner;
use netmodel::header::MAX_SECONDARY_FIELDS;
use netmodel::interval::{Bound, Interval};
use netmodel::rule::{Rule, RuleId};
use netmodel::topology::{LinkId, NodeId, Topology};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A borrowed view of exactly the engine state the cross-field checks
/// need. Bundling the borrows lets the engine hand out one immutable view
/// while keeping mutable access to the rest of itself (the monitor, the
/// per-class ledger).
pub(crate) struct MfView<'a> {
    pub topology: &'a Topology,
    pub owner: &'a Owner,
    pub atoms: &'a AtomMap,
    pub sec_atoms: &'a [AtomMap],
    pub rules: &'a HashMap<RuleId, Rule>,
}

/// One secondary equivalence class, given by a representative value per
/// declared secondary field (positions past the declared count stay 0).
///
/// Within one atom of each secondary lattice every value is covered by the
/// same set of rule intervals, so any witness — we use each atom's interval
/// low bound — decides `SecondaryMatch::matches` for the whole class.
pub(crate) type SecClass = [Bound; MAX_SECONDARY_FIELDS];

/// Enumerates the cross product of the secondary lattices' atoms as
/// representative classes. With no declared secondary fields this is the
/// single all-wildcard class. The engine memoizes the result
/// (`DeltaNet::sec_class_cache`) and re-enumerates only when an update
/// records secondary splits or a compaction merges secondary atoms.
pub(crate) fn sec_classes(sec_atoms: &[AtomMap]) -> Vec<SecClass> {
    let mut classes: Vec<SecClass> = vec![[0; MAX_SECONDARY_FIELDS]];
    for (field, map) in sec_atoms.iter().enumerate() {
        let mut next = Vec::with_capacity(classes.len() * map.atom_count());
        for (_, interval) in map.iter() {
            for base in &classes {
                let mut class = *base;
                class[field] = interval.lo();
                next.push(class);
            }
        }
        classes = next;
    }
    classes
}

/// Reusable scratch for slice walks: the per-atom emitter list and the
/// visited marks, hoisted so neither the full scans nor the scoped repair
/// allocate (or clear) per slice. Visited marks are generation-stamped —
/// starting a new slice is a counter bump, not an O(nodes) clear.
pub(crate) struct MfScratch {
    /// Nodes owning at least one rule for the current primary atom,
    /// collected once per atom and reused across every class.
    emitters: Vec<NodeId>,
    /// `visited[n] == generation` marks node `n` as explored in the
    /// current slice.
    visited: Vec<u32>,
    generation: u32,
    /// Memoized forwarding decisions of the current slice, valid where
    /// `succ_gen[n] == generation`: the fused repair resolves each
    /// emitter's owner cell exactly once per slice, and both the cycle
    /// walks and the blackhole predicate read from here.
    succ: Vec<Option<LinkId>>,
    succ_gen: Vec<u32>,
    /// Walk-local state for the cycle search: `on_path_gen[n] == walk_gen`
    /// marks node `n` as lying on the walk's current path, at position
    /// `path_pos[n]` of `path`. Stamped like `visited`, so starting a new
    /// walk is a counter bump, not a hash-map allocation.
    on_path_gen: Vec<u32>,
    path_pos: Vec<u32>,
    walk_gen: u32,
    path: Vec<NodeId>,
    /// Nodes some winner forwards into (blackhole candidates); may hold
    /// duplicates, the sink is idempotent.
    arrived: Vec<NodeId>,
}

impl MfScratch {
    /// Scratch sized for a topology with `node_count` nodes.
    pub(crate) fn new(node_count: usize) -> Self {
        MfScratch {
            emitters: Vec::new(),
            visited: vec![0; node_count],
            generation: 0,
            succ: vec![None; node_count],
            succ_gen: vec![0; node_count],
            on_path_gen: vec![0; node_count],
            path_pos: vec![0; node_count],
            walk_gen: 0,
            path: Vec::new(),
            arrived: Vec::new(),
        }
    }

    /// Collects the emitter nodes of `atom`; returns `false` when the atom
    /// has no owners anywhere (the whole atom row can be skipped).
    fn collect_emitters(&mut self, view: &MfView<'_>, atom: AtomId) -> bool {
        self.emitters.clear();
        self.emitters
            .extend(view.owner.sources(atom).map(|(node, _)| node));
        !self.emitters.is_empty()
    }

    /// Begins one `(atom, class)` slice: bumps the visited generation and
    /// hands out the emitter list plus the stamped visited marks.
    fn slice(&mut self) -> (&[NodeId], &mut [u32], u32) {
        if self.generation == u32::MAX {
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.succ_gen.iter_mut().for_each(|v| *v = 0);
            self.generation = 0;
        }
        self.generation += 1;
        (&self.emitters, &mut self.visited, self.generation)
    }

    /// The memoized decision at `node` for the current slice.
    #[inline]
    fn succ_of(&self, node: NodeId) -> Option<LinkId> {
        if self.succ_gen[node.index()] == self.generation {
            self.succ[node.index()]
        } else {
            None
        }
    }
}

/// The forwarding decision at `node` for primary atom `atom` and secondary
/// class `class`: the link of the highest-priority rule that covers the
/// atom *and* whose secondary intervals contain the class representative.
///
/// Owner cells keep their entries sorted in increasing `(priority, id)`
/// order, so the first match of a reverse scan is the winner. Rules that
/// constrain no secondary fields match every class.
pub(crate) fn mf_successor(
    view: &MfView<'_>,
    node: NodeId,
    atom: AtomId,
    class: &SecClass,
) -> Option<LinkId> {
    let cell = view.owner.get(atom, node)?;
    cell.as_slice()
        .iter()
        .rev()
        .find(|owned| {
            view.rules
                .get(&owned.id)
                .is_some_and(|rule| rule.sec.matches(class))
        })
        .map(|owned| owned.link)
}

/// Whether inserting or removing `rule` changed the forwarding decision of
/// slice `(atom, class)`. A rule participates only in the owner cells at
/// its own source, so this single cell decides the whole slice: the
/// decision changed iff the winning link there differs with the rule
/// present versus absent. Called on the *post-update* cell, the same test
/// covers both directions — `rule`'s own entry (present after an insert,
/// gone after a removal) is skipped, leaving the without-rule winner, and
/// the with-rule winner is `rule` itself unless a higher-ordered match
/// shadows it.
///
/// Slices this rejects kept their forwarding function bit-for-bit, so
/// their ledger entries are already exact and need no re-walk.
pub(crate) fn decision_changed(
    view: &MfView<'_>,
    rule: &Rule,
    atom: AtomId,
    class: &SecClass,
) -> bool {
    if !rule.sec.matches(class) {
        return false;
    }
    let key = (rule.priority, rule.id);
    let without = view.owner.get(atom, rule.source).and_then(|cell| {
        cell.as_slice()
            .iter()
            .rev()
            .filter(|owned| owned.id != rule.id)
            .find(|owned| {
                view.rules
                    .get(&owned.id)
                    .is_some_and(|r| r.sec.matches(class))
            })
            .map(|owned| ((owned.priority, owned.id), owned.link))
    });
    match without {
        // A higher-ordered match wins with or without the rule: shadowed
        // both before and after the update, decision untouched.
        Some((k, _)) if k > key => false,
        // The rule wins when present; changed iff the runner-up (or the
        // absence of one) forwards differently.
        Some((_, link)) => link != rule.link,
        None => true,
    }
}

/// Follows the per-class forwarding function from `start`, recording any
/// cycle it runs into. A node whose visited mark equals `generation` was
/// already explored within the current `(atom, class)` slice, so walks
/// that share a tail deduplicate; the caller bumps the generation between
/// slices ([`MfScratch::slice`]).
fn walk_for_cycle(
    view: &MfView<'_>,
    start: NodeId,
    atom: AtomId,
    class: &SecClass,
    visited: &mut [u32],
    generation: u32,
    cycles: &mut BTreeMap<Vec<NodeId>, AtomSet>,
) {
    let mut path: Vec<NodeId> = Vec::new();
    let mut on_path: HashMap<NodeId, usize> = HashMap::new();
    let mut current = start;
    loop {
        if let Some(&pos) = on_path.get(&current) {
            let cycle = canonicalize(path[pos..].to_vec());
            cycles.entry(cycle).or_default().insert(atom);
            return;
        }
        if visited[current.index()] == generation {
            // Joined a path already explored this slice; any cycle it
            // leads to was recorded by the walk that got there first.
            return;
        }
        visited[current.index()] = generation;
        on_path.insert(current, path.len());
        path.push(current);
        let Some(link) = mf_successor(view, current, atom, class) else {
            return;
        };
        let next = view.topology.link(link).dst;
        if view.topology.is_drop_node(next) {
            return;
        }
        current = next;
    }
}

/// Evaluates the blackhole predicate for one `(atom, class)` slice,
/// invoking `sink` for every switch where the class arrives unhandled. A
/// class blackholes at a switch when some in-link delivers it there (the
/// upstream node's winner for the class is that link) but the switch
/// itself has no winner — no covering rule whose secondary intervals
/// match. A drop-rule winner counts as handled; traffic forwarded into the
/// drop node was deliberately discarded and never "arrives" anywhere.
fn holes_for_slice(
    view: &MfView<'_>,
    emitters: &[NodeId],
    atom: AtomId,
    class: &SecClass,
    handled: &mut HashSet<NodeId>,
    arrived: &mut HashSet<NodeId>,
    mut sink: impl FnMut(NodeId),
) {
    handled.clear();
    arrived.clear();
    for &node in emitters {
        if let Some(link) = mf_successor(view, node, atom, class) {
            handled.insert(node);
            let dst = view.topology.link(link).dst;
            if !view.topology.is_drop_node(dst) {
                arrived.insert(dst);
            }
        }
    }
    for &node in arrived.difference(handled) {
        sink(node);
    }
}

/// Full-plane loop scan: every primary atom × every class of `classes`,
/// walking from every node that owns rules for the atom. Loops found in
/// different secondary classes but on the same node cycle union their
/// primary atoms, matching how violations aggregate packet intervals.
pub(crate) fn mf_cycles(view: &MfView<'_>, classes: &[SecClass]) -> BTreeMap<Vec<NodeId>, AtomSet> {
    let mut cycles = BTreeMap::new();
    let mut scratch = MfScratch::new(view.topology.node_count());
    for (atom, _) in view.atoms.iter() {
        if !scratch.collect_emitters(view, atom) {
            continue;
        }
        for class in classes {
            let (emitters, visited, generation) = scratch.slice();
            for &start in emitters {
                walk_for_cycle(view, start, atom, class, visited, generation, &mut cycles);
            }
        }
    }
    cycles
}

/// Full-plane blackhole scan over every primary atom × every class of
/// `classes` (see [`holes_for_slice`] for the per-slice predicate).
pub(crate) fn mf_holes(view: &MfView<'_>, classes: &[SecClass]) -> BTreeMap<NodeId, AtomSet> {
    let mut holes: BTreeMap<NodeId, AtomSet> = BTreeMap::new();
    let mut scratch = MfScratch::new(view.topology.node_count());
    let mut handled: HashSet<NodeId> = HashSet::new();
    let mut arrived: HashSet<NodeId> = HashSet::new();
    for (atom, _) in view.atoms.iter() {
        if !scratch.collect_emitters(view, atom) {
            continue;
        }
        for class in classes {
            holes_for_slice(
                view,
                &scratch.emitters,
                atom,
                class,
                &mut handled,
                &mut arrived,
                |node| {
                    holes.entry(node).or_default().insert(atom);
                },
            );
        }
    }
    holes
}

/// Per-class cycle maps, indexed like the `classes` slice handed in.
pub(crate) type ClassLoops = Vec<BTreeMap<Vec<NodeId>, AtomSet>>;
/// Per-class blackhole maps, indexed like the `classes` slice handed in.
pub(crate) type ClassHoles = Vec<BTreeMap<NodeId, AtomSet>>;

/// Scoped loop repair: re-walks exactly the `atoms × classes` rectangle,
/// returning the cycles per class (indexed like `classes`). Computes the
/// same per-slice predicate as [`mf_cycles`], so each slice's result is
/// bit-identical to its share of a full scan.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn mf_cycles_for_slices(
    view: &MfView<'_>,
    classes: &[SecClass],
    atoms: &[AtomId],
    scratch: &mut MfScratch,
) -> ClassLoops {
    mf_repair_slices(view, classes, atoms, scratch).0
}

/// Scoped blackhole repair: the `atoms × classes` rectangle of
/// [`mf_holes`], per class (indexed like `classes`).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn mf_holes_for_slices(
    view: &MfView<'_>,
    classes: &[SecClass],
    atoms: &[AtomId],
    scratch: &mut MfScratch,
) -> ClassHoles {
    mf_repair_slices(view, classes, atoms, scratch).1
}

/// Fused scoped repair: cycles *and* blackholes of the `atoms × classes`
/// rectangle in one pass. Each slice resolves every emitter's owner cell
/// exactly once into the scratch's memo ([`MfScratch::succ_of`]); the
/// cycle walks then chase plain arrays and the blackhole predicate reads
/// the same memo, so the rectangle costs one cell resolution per
/// `(emitter, slice)` and allocates nothing per walk. Both halves are
/// pure functions of the slice forwarding function — the exact predicates
/// of [`mf_cycles`] and [`mf_holes`] — so the result stays bit-identical
/// to a full scan's share for every slice.
pub(crate) fn mf_repair_slices(
    view: &MfView<'_>,
    classes: &[SecClass],
    atoms: &[AtomId],
    scratch: &mut MfScratch,
) -> (ClassLoops, ClassHoles) {
    let mut loops: ClassLoops = vec![BTreeMap::new(); classes.len()];
    let mut holes: ClassHoles = vec![BTreeMap::new(); classes.len()];
    for &atom in atoms {
        if !scratch.collect_emitters(view, atom) {
            continue;
        }
        for (idx, class) in classes.iter().enumerate() {
            scratch.slice();
            for i in 0..scratch.emitters.len() {
                let node = scratch.emitters[i];
                let succ = mf_successor(view, node, atom, class);
                scratch.succ[node.index()] = succ;
                scratch.succ_gen[node.index()] = scratch.generation;
            }
            for i in 0..scratch.emitters.len() {
                let start = scratch.emitters[i];
                walk_memoized(view, scratch, start, atom, &mut loops[idx]);
            }
            // Blackholes: a node some winner forwards into (`arrived`)
            // that itself has no winner — the memo answers both sides.
            scratch.arrived.clear();
            for i in 0..scratch.emitters.len() {
                let node = scratch.emitters[i];
                if let Some(link) = scratch.succ_of(node) {
                    let dst = view.topology.link(link).dst;
                    if !view.topology.is_drop_node(dst) {
                        scratch.arrived.push(dst);
                    }
                }
            }
            for i in 0..scratch.arrived.len() {
                let node = scratch.arrived[i];
                if scratch.succ_of(node).is_none() {
                    holes[idx].entry(node).or_default().insert(atom);
                }
            }
        }
    }
    (loops, holes)
}

/// The cycle walk of [`walk_for_cycle`], reading forwarding decisions
/// from the slice memo instead of re-resolving owner cells, with the
/// walk-local path state in stamped scratch arrays instead of a per-walk
/// hash map. Traversal order, visited semantics, and the recorded cycles
/// are identical.
fn walk_memoized(
    view: &MfView<'_>,
    scratch: &mut MfScratch,
    start: NodeId,
    atom: AtomId,
    cycles: &mut BTreeMap<Vec<NodeId>, AtomSet>,
) {
    if scratch.walk_gen == u32::MAX {
        scratch.on_path_gen.iter_mut().for_each(|v| *v = 0);
        scratch.walk_gen = 0;
    }
    scratch.walk_gen += 1;
    scratch.path.clear();
    let mut current = start;
    loop {
        let i = current.index();
        if scratch.on_path_gen[i] == scratch.walk_gen {
            let pos = scratch.path_pos[i] as usize;
            let cycle = canonicalize(scratch.path[pos..].to_vec());
            cycles.entry(cycle).or_default().insert(atom);
            return;
        }
        if scratch.visited[i] == scratch.generation {
            // Joined a path already explored this slice; any cycle it
            // leads to was recorded by the walk that got there first.
            return;
        }
        scratch.visited[i] = scratch.generation;
        scratch.on_path_gen[i] = scratch.walk_gen;
        scratch.path_pos[i] = scratch.path.len() as u32;
        scratch.path.push(current);
        let Some(link) = scratch.succ_of(current) else {
            return;
        };
        let next = view.topology.link(link).dst;
        if view.topology.is_drop_node(next) {
            return;
        }
        current = next;
    }
}

/// The per-class violation ledger behind the engine's incremental
/// multi-field monitor: for every secondary class with any violation, the
/// cycles and blackholes of that class with the primary atoms exhibiting
/// them there.
///
/// Invariant: `loops[c][cycle]` contains atom α iff `cycle` is a cycle of
/// the slice forwarding function `F_{α,c}` (likewise for `holes`), so the
/// union over classes equals [`mf_cycles`] + [`mf_holes`] of the whole
/// plane — the form the [`crate::monitor::ViolationMonitor`] tracks.
/// Splitting the state by class is what makes scoped repair possible: an
/// update's rectangle of touched slices can be cleared and re-walked
/// without disturbing the contributions of untouched classes to the same
/// violation identity.
#[derive(Clone, Debug, Default)]
pub(crate) struct MfClassState {
    /// class → canonical cycle → primary atoms looping through it there.
    loops: BTreeMap<SecClass, BTreeMap<Vec<NodeId>, AtomSet>>,
    /// class → switch → primary atoms arriving unhandled there.
    holes: BTreeMap<SecClass, BTreeMap<NodeId, AtomSet>>,
}

impl MfClassState {
    /// An empty ledger (correct for an engine with no rules installed).
    pub(crate) fn new() -> Self {
        MfClassState::default()
    }

    /// Builds the full ledger from per-class scan results covering every
    /// primary atom (the outputs of [`mf_cycles_for_slices`] /
    /// [`mf_holes_for_slices`] over the whole plane).
    pub(crate) fn from_slices(
        classes: &[SecClass],
        loops: Vec<BTreeMap<Vec<NodeId>, AtomSet>>,
        holes: Vec<BTreeMap<NodeId, AtomSet>>,
    ) -> Self {
        let mut state = MfClassState::default();
        for ((class, class_loops), class_holes) in classes.iter().zip(loops).zip(holes) {
            if !class_loops.is_empty() {
                state.loops.insert(*class, class_loops);
            }
            if !class_holes.is_empty() {
                state.holes.insert(*class, class_holes);
            }
        }
        state
    }

    /// Replaces the `atoms × classes` rectangle of the ledger with freshly
    /// re-walked slice results: every tracked contribution of a rectangle
    /// slice is cleared, then the fresh results are set. Clear-then-set is
    /// idempotent, so overlapping rectangles of one update may be applied
    /// in any order.
    pub(crate) fn apply_slices(
        &mut self,
        classes: &[SecClass],
        atoms: &AtomSet,
        loops: Vec<BTreeMap<Vec<NodeId>, AtomSet>>,
        holes: Vec<BTreeMap<NodeId, AtomSet>>,
    ) {
        for ((class, fresh), fresh_holes) in classes.iter().zip(loops).zip(holes) {
            let class_loops = self.loops.entry(*class).or_default();
            for set in class_loops.values_mut() {
                set.difference_with(atoms);
            }
            for (cycle, set) in fresh {
                class_loops.entry(cycle).or_default().union_with(&set);
            }
            class_loops.retain(|_, set| !set.is_empty());
            if class_loops.is_empty() {
                self.loops.remove(class);
            }
            let class_holes = self.holes.entry(*class).or_default();
            for set in class_holes.values_mut() {
                set.difference_with(atoms);
            }
            for (node, set) in fresh_holes {
                class_holes.entry(node).or_default().union_with(&set);
            }
            class_holes.retain(|_, set| !set.is_empty());
            if class_holes.is_empty() {
                self.holes.remove(class);
            }
        }
    }

    /// The loop union over classes — the monitor-facing form, equal to
    /// [`mf_cycles`] of the whole plane.
    pub(crate) fn union_loops(&self) -> BTreeMap<Vec<NodeId>, AtomSet> {
        let mut out: BTreeMap<Vec<NodeId>, AtomSet> = BTreeMap::new();
        for per_class in self.loops.values() {
            for (cycle, set) in per_class {
                out.entry(cycle.clone()).or_default().union_with(set);
            }
        }
        out
    }

    /// The blackhole union over classes, equal to [`mf_holes`] of the
    /// whole plane.
    pub(crate) fn union_holes(&self) -> BTreeMap<NodeId, AtomSet> {
        let mut out: BTreeMap<NodeId, AtomSet> = BTreeMap::new();
        for per_class in self.holes.values() {
            for (&node, set) in per_class {
                out.entry(node).or_default().union_with(set);
            }
        }
        out
    }

    /// Drops every class absent from the post-compaction class list. A
    /// secondary merge reclaims a class whose rules were indistinguishable
    /// from its surviving lower neighbour's, so the dropped entries carry
    /// state identical to entries that remain — the class union is
    /// invariant, exactly like the primary-atom story in
    /// [`crate::monitor::ViolationMonitor::remap`]. Surviving classes keep
    /// their representative (their lattice atom's low bound, unchanged by
    /// merges), so their keys stay valid.
    pub(crate) fn retain_classes(&mut self, valid: &BTreeSet<SecClass>) {
        self.loops.retain(|class, _| valid.contains(class));
        self.holes.retain(|class, _| valid.contains(class));
    }

    /// Rewrites every tracked primary atom through the remap table of a
    /// compaction pass, dropping reclaimed ids (their label-identical
    /// survivors keep every violation alive).
    pub(crate) fn remap(&mut self, remap: &[u32]) {
        let remap_set = |set: &AtomSet| -> AtomSet {
            set.iter()
                .filter_map(|a| {
                    let new = remap[a.index()];
                    (new != REMAP_DEAD).then_some(AtomId(new))
                })
                .collect()
        };
        for per_class in self.loops.values_mut() {
            for set in per_class.values_mut() {
                *set = remap_set(set);
            }
            per_class.retain(|_, set| !set.is_empty());
        }
        self.loops.retain(|_, per_class| !per_class.is_empty());
        for per_class in self.holes.values_mut() {
            for set in per_class.values_mut() {
                *set = remap_set(set);
            }
            per_class.retain(|_, set| !set.is_empty());
        }
        self.holes.retain(|_, per_class| !per_class.is_empty());
    }

    /// Estimated heap bytes held by the ledger — counted by
    /// `DeltaNet::memory_estimate` (but *not* `live_bytes`: the ledger is
    /// derived state, absent from snapshots and rebuilt lazily after a
    /// restore).
    pub(crate) fn memory_bytes(&self) -> usize {
        let entry = std::mem::size_of::<SecClass>() + 24;
        let mut bytes = 0;
        for per_class in self.loops.values() {
            bytes += entry;
            for (cycle, set) in per_class {
                bytes += cycle.capacity() * std::mem::size_of::<NodeId>() + 24 + set.memory_bytes();
            }
        }
        for per_class in self.holes.values() {
            bytes += entry;
            for set in per_class.values() {
                bytes += std::mem::size_of::<NodeId>() + 24 + set.memory_bytes();
            }
        }
        bytes
    }
}

/// Per-update seeded loop check for one inserted or removed rule.
///
/// Any loop created (or whose dissolution must be noticed) by changing the
/// forwarding at `rule.source` necessarily routes through `rule.source`
/// itself, for primary atoms inside the rule's (clip-adjusted) `interval`
/// and secondary classes the rule matches — forwarding for every other
/// `(atom, class)` slice at every other node is untouched by the update.
/// So walking just those slices from the one changed node is a sound
/// per-update check, the multi-field analogue of seeding from the
/// delta-graph's added edges. `classes` is the full class list (the
/// engine's memoized enumeration); the rule's secondary filter is applied
/// here.
pub(crate) fn find_loops_for_rule(
    view: &MfView<'_>,
    classes: &[SecClass],
    rule: &Rule,
    interval: Interval,
) -> BTreeMap<Vec<NodeId>, AtomSet> {
    let matched: Vec<&SecClass> = classes
        .iter()
        .filter(|class| rule.sec.matches(&class[..]))
        .collect();
    let mut cycles = BTreeMap::new();
    let mut scratch = MfScratch::new(view.topology.node_count());
    for atom in view.atoms.iter_atoms_of(interval) {
        for class in &matched {
            let (_, visited, generation) = scratch.slice();
            walk_for_cycle(
                view,
                rule.source,
                atom,
                class,
                visited,
                generation,
                &mut cycles,
            );
        }
    }
    cycles
}
