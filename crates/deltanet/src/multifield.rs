//! Cross-field checks for multi-field header spaces.
//!
//! A multi-field engine keeps one atom lattice per declared header field:
//! the primary (destination) lattice carries the full Delta-net machinery —
//! owner cells, edge labels, delta-graphs — exactly as in the single-field
//! engine, while each *secondary* field (source address, destination port,
//! …) keeps only its interval lattice. A packet class is then the cross
//! product of one atom per field, and the per-class forwarding function at a
//! node is "highest-priority covering rule whose secondary intervals all
//! contain the class" — resolved here, at check time, from the primary
//! owner cells plus the rules' secondary matches.
//!
//! This mirrors the layering argument in the Delta-net paper (§5): the
//! one-dimensional atom machinery is the workhorse, and additional header
//! fields multiply the classes that machinery is consulted for, rather than
//! multiplying the machinery itself. The single-field hot path never enters
//! this module.
//!
//! Two things are deliberately *not* multi-field aware:
//!
//! * **Edge labels.** A label answers "which atoms does the
//!   highest-priority owner at this source forward over this link",
//!   ignoring secondary fields — a primary-field projection. Label-based
//!   scans over-approximate one class and under-approximate another when a
//!   secondary-constrained rule outranks a wildcard one, so the multi-field
//!   checks below never consult labels; they re-resolve winners from the
//!   owner cells per secondary class.
//! * **Secondary owner structures.** Secondary lattices are typically tiny
//!   (a handful of ACL source blocks); enumerating their cross product is
//!   cheaper and simpler than maintaining N-dimensional owner state.

use crate::atoms::{AtomId, AtomMap};
use crate::atomset::AtomSet;
use crate::loops::canonicalize;
use crate::owner::Owner;
use netmodel::header::MAX_SECONDARY_FIELDS;
use netmodel::interval::{Bound, Interval};
use netmodel::rule::{Rule, RuleId};
use netmodel::topology::{LinkId, NodeId, Topology};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A borrowed view of exactly the engine state the cross-field checks
/// need. Bundling the borrows lets the engine hand out one immutable view
/// while keeping mutable access to the rest of itself (the monitor).
pub(crate) struct MfView<'a> {
    pub topology: &'a Topology,
    pub owner: &'a Owner,
    pub atoms: &'a AtomMap,
    pub sec_atoms: &'a [AtomMap],
    pub rules: &'a HashMap<RuleId, Rule>,
}

/// One secondary equivalence class, given by a representative value per
/// declared secondary field (positions past the declared count stay 0).
///
/// Within one atom of each secondary lattice every value is covered by the
/// same set of rule intervals, so any witness — we use each atom's interval
/// low bound — decides `SecondaryMatch::matches` for the whole class.
pub(crate) type SecClass = [Bound; MAX_SECONDARY_FIELDS];

/// Enumerates the cross product of the secondary lattices' atoms as
/// representative classes. With no declared secondary fields this is the
/// single all-wildcard class.
pub(crate) fn sec_classes(sec_atoms: &[AtomMap]) -> Vec<SecClass> {
    let mut classes: Vec<SecClass> = vec![[0; MAX_SECONDARY_FIELDS]];
    for (field, map) in sec_atoms.iter().enumerate() {
        let mut next = Vec::with_capacity(classes.len() * map.atom_count());
        for (_, interval) in map.iter() {
            for base in &classes {
                let mut class = *base;
                class[field] = interval.lo();
                next.push(class);
            }
        }
        classes = next;
    }
    classes
}

/// The forwarding decision at `node` for primary atom `atom` and secondary
/// class `class`: the link of the highest-priority rule that covers the
/// atom *and* whose secondary intervals contain the class representative.
///
/// Owner cells keep their entries sorted in increasing `(priority, id)`
/// order, so the first match of a reverse scan is the winner. Rules that
/// constrain no secondary fields match every class.
pub(crate) fn mf_successor(
    view: &MfView<'_>,
    node: NodeId,
    atom: AtomId,
    class: &SecClass,
) -> Option<LinkId> {
    let cell = view.owner.get(atom, node)?;
    cell.as_slice()
        .iter()
        .rev()
        .find(|owned| {
            view.rules
                .get(&owned.id)
                .is_some_and(|rule| rule.sec.matches(class))
        })
        .map(|owned| owned.link)
}

/// Follows the per-class forwarding function from `start`, recording any
/// cycle it runs into. `visited` deduplicates walks that share a tail
/// within one `(atom, class)` slice and must be reset between slices.
fn walk_for_cycle(
    view: &MfView<'_>,
    start: NodeId,
    atom: AtomId,
    class: &SecClass,
    visited: &mut [bool],
    cycles: &mut BTreeMap<Vec<NodeId>, AtomSet>,
) {
    let mut path: Vec<NodeId> = Vec::new();
    let mut on_path: HashMap<NodeId, usize> = HashMap::new();
    let mut current = start;
    loop {
        if let Some(&pos) = on_path.get(&current) {
            let cycle = canonicalize(path[pos..].to_vec());
            cycles.entry(cycle).or_default().insert(atom);
            return;
        }
        if visited[current.index()] {
            // Joined a path already explored this slice; any cycle it
            // leads to was recorded by the walk that got there first.
            return;
        }
        visited[current.index()] = true;
        on_path.insert(current, path.len());
        path.push(current);
        let Some(link) = mf_successor(view, current, atom, class) else {
            return;
        };
        let next = view.topology.link(link).dst;
        if view.topology.is_drop_node(next) {
            return;
        }
        current = next;
    }
}

/// Full-plane loop scan: every primary atom × every secondary class,
/// walking from every node that owns rules for the atom. Loops found in
/// different secondary classes but on the same node cycle union their
/// primary atoms, matching how violations aggregate packet intervals.
pub(crate) fn mf_cycles(view: &MfView<'_>) -> BTreeMap<Vec<NodeId>, AtomSet> {
    let classes = sec_classes(view.sec_atoms);
    let mut cycles = BTreeMap::new();
    let mut visited = vec![false; view.topology.node_count()];
    for (atom, _) in view.atoms.iter() {
        let emitters: Vec<NodeId> = view.owner.sources(atom).map(|(node, _)| node).collect();
        if emitters.is_empty() {
            continue;
        }
        for class in &classes {
            visited.iter_mut().for_each(|v| *v = false);
            for &start in &emitters {
                walk_for_cycle(view, start, atom, class, &mut visited, &mut cycles);
            }
        }
    }
    cycles
}

/// Full-plane blackhole scan. A class blackholes at a switch when some
/// in-link delivers it there (the upstream node's winner for the class is
/// that link) but the switch itself has no winner — no covering rule whose
/// secondary intervals match. A drop-rule winner counts as handled;
/// traffic forwarded into the drop node was deliberately discarded and
/// never "arrives" anywhere.
pub(crate) fn mf_holes(view: &MfView<'_>) -> BTreeMap<NodeId, AtomSet> {
    let classes = sec_classes(view.sec_atoms);
    let mut holes: BTreeMap<NodeId, AtomSet> = BTreeMap::new();
    let mut handled: HashSet<NodeId> = HashSet::new();
    let mut arrived: HashSet<NodeId> = HashSet::new();
    for (atom, _) in view.atoms.iter() {
        let emitters: Vec<NodeId> = view.owner.sources(atom).map(|(node, _)| node).collect();
        if emitters.is_empty() {
            continue;
        }
        for class in &classes {
            handled.clear();
            arrived.clear();
            for &node in &emitters {
                if let Some(link) = mf_successor(view, node, atom, class) {
                    handled.insert(node);
                    let dst = view.topology.link(link).dst;
                    if !view.topology.is_drop_node(dst) {
                        arrived.insert(dst);
                    }
                }
            }
            for &node in arrived.difference(&handled) {
                holes.entry(node).or_default().insert(atom);
            }
        }
    }
    holes
}

/// Per-update seeded loop check for one inserted or removed rule.
///
/// Any loop created (or whose dissolution must be noticed) by changing the
/// forwarding at `rule.source` necessarily routes through `rule.source`
/// itself, for primary atoms inside the rule's (clip-adjusted) `interval`
/// and secondary classes the rule matches — forwarding for every other
/// `(atom, class)` slice at every other node is untouched by the update.
/// So walking just those slices from the one changed node is a sound
/// per-update check, the multi-field analogue of seeding from the
/// delta-graph's added edges.
pub(crate) fn find_loops_for_rule(
    view: &MfView<'_>,
    rule: &Rule,
    interval: Interval,
) -> BTreeMap<Vec<NodeId>, AtomSet> {
    let classes: Vec<SecClass> = sec_classes(view.sec_atoms)
        .into_iter()
        .filter(|class| rule.sec.matches(class))
        .collect();
    let mut cycles = BTreeMap::new();
    let mut visited = vec![false; view.topology.node_count()];
    for atom in view.atoms.iter_atoms_of(interval) {
        for class in &classes {
            visited.iter_mut().for_each(|v| *v = false);
            walk_for_cycle(view, rule.source, atom, class, &mut visited, &mut cycles);
        }
    }
    cycles
}
