//! Delta-graphs: the compact representation of what one (or several) rule
//! update(s) changed in the edge-labelled graph.
//!
//! §3.3: "the concept of atoms has as consequence a convenient algorithm for
//! computing a compact edge-labelled graph, called delta-graph, that
//! represents all such forwarding graphs. We can generate a delta-graph as a
//! by-product of Algorithm 1 for all atoms α whose owner changes; similarly
//! for Algorithm 2. If so desired, multiple rule updates may be aggregated
//! into a delta-graph."
//!
//! A [`DeltaGraph`] therefore records the `(link, atom)` pairs that were
//! added to and removed from edge labels by ownership changes. The
//! per-update property check (forwarding loops) only needs to look at the
//! added pairs: removing an atom from a label can only break loops, never
//! create them.

use crate::atoms::{AtomId, DeltaPair, REMAP_DEAD};
use crate::atomset::AtomSet;
use netmodel::topology::LinkId;
use std::collections::{BTreeSet, HashMap};

/// The changes one or more rule updates made to the edge-labelled graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaGraph {
    /// `(link, atom)` pairs that were added to `label[link]` because the
    /// atom's owner changed in the atom's favour.
    pub added: Vec<(LinkId, AtomId)>,
    /// `(link, atom)` pairs removed from `label[link]`.
    pub removed: Vec<(LinkId, AtomId)>,
    /// Atom splits performed by the update(s), in order: `old` kept the
    /// lower part of its interval and `new` took the upper part, cloning
    /// `old`'s labels everywhere. Splits carry no label *change* (the new
    /// atom behaves exactly like the old one at the instant of the split),
    /// so they do not seed property checks and do not count towards
    /// [`DeltaGraph::affected_atoms`]; they exist so consumers that key
    /// state by atom id — the [`crate::monitor::ViolationMonitor`] — can
    /// clone that state for the new id before applying the label changes.
    pub splits: Vec<DeltaPair>,
    /// Atom splits in the *secondary* field lattices of a multi-field
    /// engine, tagged with the secondary field index (0-based, in
    /// declaration order). Secondary atoms carry no owner cells or label
    /// bits, but the engine's incremental monitor repair keys off these
    /// entries within the recording update: a non-empty list invalidates
    /// the memoized secondary-class layer, and each `new` atom names a
    /// fresh secondary class whose `(primary atom, class)` slices must be
    /// recomputed from scratch — never inherited — mirroring the primary
    /// split rule of the delta-graph repair.
    pub sec_splits: Vec<(u8, DeltaPair)>,
}

impl DeltaGraph {
    /// An empty delta-graph.
    pub fn new() -> Self {
        DeltaGraph::default()
    }

    /// Whether the update changed no edge label at all.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Records an addition.
    pub fn add(&mut self, link: LinkId, atom: AtomId) {
        self.added.push((link, atom));
    }

    /// Records a removal.
    pub fn remove(&mut self, link: LinkId, atom: AtomId) {
        self.removed.push((link, atom));
    }

    /// Records an atom split `old → new`.
    pub fn split(&mut self, pair: DeltaPair) {
        self.splits.push(pair);
    }

    /// Records a split in secondary field `field`'s atom lattice.
    pub fn sec_split(&mut self, field: u8, pair: DeltaPair) {
        self.sec_splits.push((field, pair));
    }

    /// Aggregates another delta-graph into this one (multiple rule updates
    /// may be aggregated, §3.3). Merging is plain concatenation — O(other)
    /// per call, so a long aggregation window stays linear in its total
    /// pair count; the window's owner (e.g.
    /// [`DeltaNet::take_aggregate`](crate::DeltaNet::take_aggregate)) runs
    /// [`DeltaGraph::canonicalize`] once when the window closes.
    pub fn merge(&mut self, other: &DeltaGraph) {
        self.added.extend_from_slice(&other.added);
        self.removed.extend_from_slice(&other.removed);
        self.splits.extend_from_slice(&other.splits);
        self.sec_splits.extend_from_slice(&other.sec_splits);
    }

    /// Reduces an aggregated delta-graph to its *net* effect: every
    /// `(link, atom)` pair occurring in both `added` and `removed` (a
    /// same-window insert+remove of the same rule, or a flap) cancels, one
    /// cancellation per opposing occurrence. Without this the window would
    /// claim label changes that, end to end, never happened — re-seeding
    /// property checks and inflating `affected_atoms` — and a consumer
    /// keying state off the pairs (the violation monitor) would see a
    /// phantom addition *and* a phantom removal whose relative order was
    /// lost in aggregation. Because a label either holds a pair or it does
    /// not, additions and removals of one pair strictly alternate in time,
    /// so after cancellation each pair appears at most once, on the side
    /// of its net effect. Splits are permanent and never cancel.
    pub fn canonicalize(&mut self) {
        if self.added.is_empty() || self.removed.is_empty() {
            return;
        }
        let mut removed_count: HashMap<(LinkId, AtomId), usize> = HashMap::new();
        for &pair in &self.removed {
            *removed_count.entry(pair).or_insert(0) += 1;
        }
        let mut cancel: HashMap<(LinkId, AtomId), usize> = HashMap::new();
        let mut added_count: HashMap<(LinkId, AtomId), usize> = HashMap::new();
        for &pair in &self.added {
            *added_count.entry(pair).or_insert(0) += 1;
        }
        for (&pair, &a) in &added_count {
            if let Some(&r) = removed_count.get(&pair) {
                cancel.insert(pair, a.min(r));
            }
        }
        if cancel.is_empty() {
            return;
        }
        let mut budget = cancel.clone();
        self.added.retain(|pair| match budget.get_mut(pair) {
            Some(n) if *n > 0 => {
                *n -= 1;
                false
            }
            _ => true,
        });
        let mut budget = cancel;
        self.removed.retain(|pair| match budget.get_mut(pair) {
            Some(n) if *n > 0 => {
                *n -= 1;
                false
            }
            _ => true,
        });
    }

    /// The distinct links whose labels changed, in id order.
    pub fn changed_links(&self) -> Vec<LinkId> {
        let mut set: BTreeSet<LinkId> = BTreeSet::new();
        set.extend(self.added.iter().map(|&(l, _)| l));
        set.extend(self.removed.iter().map(|&(l, _)| l));
        set.into_iter().collect()
    }

    /// The distinct atoms whose ownership changed anywhere.
    pub fn affected_atoms(&self) -> AtomSet {
        let mut set = AtomSet::new();
        set.extend(self.added.iter().map(|&(_, a)| a));
        set.extend(self.removed.iter().map(|&(_, a)| a));
        set
    }

    /// Number of distinct atoms whose ownership changed — the per-update
    /// "affected packet classes" metric reported by the experiments.
    pub fn affected_atom_count(&self) -> usize {
        self.affected_atoms().len()
    }

    /// Rewrites every recorded atom id through the remap table of a
    /// compaction pass ([`crate::atoms::AtomMap::renumber`]), so a
    /// delta-graph recorded before the pass stays meaningful afterwards.
    ///
    /// Entries of reclaimed atoms (mapped to [`crate::atoms::REMAP_DEAD`])
    /// drop out: a reclaimed atom merged into a label-identical lower
    /// neighbour, so consumers keying state by atom id lose nothing — the
    /// surviving neighbour carries the same labels. A split whose *new*
    /// atom was reclaimed drops for the same reason; a split whose *old*
    /// atom was reclaimed cannot name the state to clone from and drops
    /// too (the new side, if live, already appears in the label changes
    /// that made it distinguishable).
    pub fn remap(&mut self, remap: &[u32]) {
        let lookup = |atom: AtomId| -> Option<AtomId> {
            let new = remap.get(atom.index()).copied().unwrap_or(REMAP_DEAD);
            (new != REMAP_DEAD).then_some(AtomId(new))
        };
        let map_pairs = |pairs: &mut Vec<(LinkId, AtomId)>| {
            pairs.retain_mut(|(_, atom)| match lookup(*atom) {
                Some(new) => {
                    *atom = new;
                    true
                }
                None => false,
            });
        };
        map_pairs(&mut self.added);
        map_pairs(&mut self.removed);
        self.splits
            .retain_mut(|pair| match (lookup(pair.old), lookup(pair.new)) {
                (Some(old), Some(new)) => {
                    *pair = DeltaPair { old, new };
                    true
                }
                _ => false,
            });
        // A compaction pass renumbers the secondary lattices too, but its
        // remap table covers only the primary field, so the recorded
        // secondary splits would be left holding stale ids. Dropping them is
        // safe: the engine consumes `sec_splits` within the update that
        // recorded them (cache invalidation + new-class slice recompute in
        // `finish_update`), which always runs *before* any compaction, and
        // `compact()` separately invalidates the class cache and remaps the
        // per-class ledger itself.
        self.sec_splits.clear();
    }

    /// Clears the delta-graph, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.added.clear();
        self.removed.clear();
        self.splits.clear();
        self.sec_splits.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_clear() {
        let mut d = DeltaGraph::new();
        assert!(d.is_empty());
        d.add(LinkId(1), AtomId(2));
        assert!(!d.is_empty());
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn changed_links_deduplicates_and_sorts() {
        let mut d = DeltaGraph::new();
        d.add(LinkId(5), AtomId(0));
        d.add(LinkId(1), AtomId(1));
        d.remove(LinkId(5), AtomId(2));
        d.remove(LinkId(3), AtomId(0));
        assert_eq!(d.changed_links(), vec![LinkId(1), LinkId(3), LinkId(5)]);
    }

    #[test]
    fn affected_atoms_union_of_added_and_removed() {
        let mut d = DeltaGraph::new();
        d.add(LinkId(0), AtomId(1));
        d.add(LinkId(0), AtomId(2));
        d.remove(LinkId(1), AtomId(2));
        d.remove(LinkId(1), AtomId(3));
        let atoms = d.affected_atoms();
        assert_eq!(atoms.len(), 3);
        assert_eq!(d.affected_atom_count(), 3);
        assert!(atoms.contains(AtomId(1)));
        assert!(atoms.contains(AtomId(3)));
    }

    #[test]
    fn merge_aggregates_updates() {
        let mut a = DeltaGraph::new();
        a.add(LinkId(0), AtomId(0));
        let mut b = DeltaGraph::new();
        b.remove(LinkId(1), AtomId(1));
        a.merge(&b);
        assert_eq!(a.added.len(), 1);
        assert_eq!(a.removed.len(), 1);
        assert_eq!(a.changed_links(), vec![LinkId(0), LinkId(1)]);
    }

    #[test]
    fn canonicalize_cancels_same_window_insert_plus_remove() {
        // An insert's delta adds (l0, α0); the same rule's removal in the
        // same window removes it again. The canonical aggregate must record
        // *no* net change for that pair (the regression: it used to keep
        // the pair in both lists).
        let mut agg = DeltaGraph::new();
        let mut insert = DeltaGraph::new();
        insert.add(LinkId(0), AtomId(0));
        insert.add(LinkId(2), AtomId(1));
        agg.merge(&insert);
        let mut remove = DeltaGraph::new();
        remove.remove(LinkId(0), AtomId(0));
        agg.merge(&remove);
        agg.canonicalize();
        assert_eq!(agg.added, vec![(LinkId(2), AtomId(1))]);
        assert!(agg.removed.is_empty());
        assert_eq!(agg.affected_atom_count(), 1);
        assert_eq!(agg.changed_links(), vec![LinkId(2)]);
    }

    #[test]
    fn canonicalize_keeps_net_effect_across_a_flap() {
        // add, remove, add of the same pair: net effect is one addition.
        let mut agg = DeltaGraph::new();
        for is_add in [true, false, true] {
            let mut step = DeltaGraph::new();
            if is_add {
                step.add(LinkId(3), AtomId(7));
            } else {
                step.remove(LinkId(3), AtomId(7));
            }
            agg.merge(&step);
        }
        agg.canonicalize();
        assert_eq!(agg.added, vec![(LinkId(3), AtomId(7))]);
        assert!(agg.removed.is_empty());
        // remove, add of the same pair: back where it started, net nothing.
        let mut agg = DeltaGraph::new();
        let mut down = DeltaGraph::new();
        down.remove(LinkId(3), AtomId(7));
        agg.merge(&down);
        let mut up = DeltaGraph::new();
        up.add(LinkId(3), AtomId(7));
        agg.merge(&up);
        agg.canonicalize();
        assert!(agg.is_empty());
    }

    #[test]
    fn splits_are_recorded_merged_and_cleared() {
        let mut a = DeltaGraph::new();
        a.split(DeltaPair {
            old: AtomId(0),
            new: AtomId(1),
        });
        // Splits are bookkeeping, not label changes.
        assert!(a.is_empty());
        assert_eq!(a.affected_atom_count(), 0);
        let mut b = DeltaGraph::new();
        b.split(DeltaPair {
            old: AtomId(1),
            new: AtomId(2),
        });
        a.merge(&b);
        assert_eq!(a.splits.len(), 2);
        a.clear();
        assert!(a.splits.is_empty());
    }
}
