//! Delta-graphs: the compact representation of what one (or several) rule
//! update(s) changed in the edge-labelled graph.
//!
//! §3.3: "the concept of atoms has as consequence a convenient algorithm for
//! computing a compact edge-labelled graph, called delta-graph, that
//! represents all such forwarding graphs. We can generate a delta-graph as a
//! by-product of Algorithm 1 for all atoms α whose owner changes; similarly
//! for Algorithm 2. If so desired, multiple rule updates may be aggregated
//! into a delta-graph."
//!
//! A [`DeltaGraph`] therefore records the `(link, atom)` pairs that were
//! added to and removed from edge labels by ownership changes. The
//! per-update property check (forwarding loops) only needs to look at the
//! added pairs: removing an atom from a label can only break loops, never
//! create them.

use crate::atoms::AtomId;
use crate::atomset::AtomSet;
use netmodel::topology::LinkId;
use std::collections::BTreeSet;

/// The changes one or more rule updates made to the edge-labelled graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaGraph {
    /// `(link, atom)` pairs that were added to `label[link]` because the
    /// atom's owner changed in the atom's favour.
    pub added: Vec<(LinkId, AtomId)>,
    /// `(link, atom)` pairs removed from `label[link]`.
    pub removed: Vec<(LinkId, AtomId)>,
}

impl DeltaGraph {
    /// An empty delta-graph.
    pub fn new() -> Self {
        DeltaGraph::default()
    }

    /// Whether the update changed no edge label at all.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Records an addition.
    pub fn add(&mut self, link: LinkId, atom: AtomId) {
        self.added.push((link, atom));
    }

    /// Records a removal.
    pub fn remove(&mut self, link: LinkId, atom: AtomId) {
        self.removed.push((link, atom));
    }

    /// Aggregates another delta-graph into this one (multiple rule updates
    /// may be aggregated, §3.3).
    pub fn merge(&mut self, other: &DeltaGraph) {
        self.added.extend_from_slice(&other.added);
        self.removed.extend_from_slice(&other.removed);
    }

    /// The distinct links whose labels changed, in id order.
    pub fn changed_links(&self) -> Vec<LinkId> {
        let mut set: BTreeSet<LinkId> = BTreeSet::new();
        set.extend(self.added.iter().map(|&(l, _)| l));
        set.extend(self.removed.iter().map(|&(l, _)| l));
        set.into_iter().collect()
    }

    /// The distinct atoms whose ownership changed anywhere.
    pub fn affected_atoms(&self) -> AtomSet {
        let mut set = AtomSet::new();
        set.extend(self.added.iter().map(|&(_, a)| a));
        set.extend(self.removed.iter().map(|&(_, a)| a));
        set
    }

    /// Number of distinct atoms whose ownership changed — the per-update
    /// "affected packet classes" metric reported by the experiments.
    pub fn affected_atom_count(&self) -> usize {
        self.affected_atoms().len()
    }

    /// Clears the delta-graph, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.added.clear();
        self.removed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_clear() {
        let mut d = DeltaGraph::new();
        assert!(d.is_empty());
        d.add(LinkId(1), AtomId(2));
        assert!(!d.is_empty());
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn changed_links_deduplicates_and_sorts() {
        let mut d = DeltaGraph::new();
        d.add(LinkId(5), AtomId(0));
        d.add(LinkId(1), AtomId(1));
        d.remove(LinkId(5), AtomId(2));
        d.remove(LinkId(3), AtomId(0));
        assert_eq!(d.changed_links(), vec![LinkId(1), LinkId(3), LinkId(5)]);
    }

    #[test]
    fn affected_atoms_union_of_added_and_removed() {
        let mut d = DeltaGraph::new();
        d.add(LinkId(0), AtomId(1));
        d.add(LinkId(0), AtomId(2));
        d.remove(LinkId(1), AtomId(2));
        d.remove(LinkId(1), AtomId(3));
        let atoms = d.affected_atoms();
        assert_eq!(atoms.len(), 3);
        assert_eq!(d.affected_atom_count(), 3);
        assert!(atoms.contains(AtomId(1)));
        assert!(atoms.contains(AtomId(3)));
    }

    #[test]
    fn merge_aggregates_updates() {
        let mut a = DeltaGraph::new();
        a.add(LinkId(0), AtomId(0));
        let mut b = DeltaGraph::new();
        b.remove(LinkId(1), AtomId(1));
        a.merge(&b);
        assert_eq!(a.added.len(), 1);
        assert_eq!(a.removed.len(), 1);
        assert_eq!(a.changed_links(), vec![LinkId(0), LinkId(1)]);
    }
}
