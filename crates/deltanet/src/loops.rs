//! Forwarding-loop detection on the edge-labelled graph.
//!
//! Per atom, forwarding is deterministic: at any switch, at most one
//! outgoing link carries a given atom (the link of the rule that owns the
//! atom there), so the α-restricted graph is a functional graph and loop
//! detection is a simple successor walk. The per-update check (§4.3.1
//! "find in the delta-graph all forwarding loops") seeds the walk at the
//! `(link, atom)` pairs that the update added; the data-plane-wide check
//! used by the what-if experiments walks every link carrying the atom.
//!
//! Detected loops are reported as [`InvariantViolation::ForwardingLoop`]
//! with the cycle's nodes and the affected destination addresses as
//! normalized intervals, so users never see raw atom identifiers.

use crate::atoms::{AtomId, AtomMap};
use crate::atomset::AtomSet;
use crate::labels::Labels;
use netmodel::checker::InvariantViolation;
use netmodel::interval::normalize;
use netmodel::topology::{LinkId, NodeId, Topology};
use std::collections::HashMap;

/// The unique link carrying `atom` out of `node`, if any.
pub fn successor(
    topology: &Topology,
    labels: &Labels,
    node: NodeId,
    atom: AtomId,
) -> Option<LinkId> {
    topology
        .out_links(node)
        .iter()
        .copied()
        .find(|&l| labels.contains(l, atom))
}

/// Walks the α-restricted functional graph from `start` and returns the
/// cycle's nodes if the walk revisits a node on its own path.
fn walk_for_cycle(
    topology: &Topology,
    labels: &Labels,
    start: NodeId,
    atom: AtomId,
) -> Option<Vec<NodeId>> {
    let mut path: Vec<NodeId> = Vec::new();
    let mut on_path: HashMap<NodeId, usize> = HashMap::new();
    let mut cur = start;
    loop {
        if let Some(&pos) = on_path.get(&cur) {
            return Some(path[pos..].to_vec());
        }
        on_path.insert(cur, path.len());
        path.push(cur);
        match successor(topology, labels, cur, atom) {
            Some(link) => {
                let next = topology.link(link).dst;
                if topology.is_drop_node(next) {
                    return None;
                }
                cur = next;
            }
            None => return None,
        }
        if path.len() > topology.node_count() + 1 {
            // Defensive: cannot happen because a functional graph revisits a
            // node within |V| steps, but guards against label corruption.
            return None;
        }
    }
}

/// Canonical rotation of a cycle so that identical cycles discovered from
/// different seeds compare equal.
pub(crate) fn canonicalize(mut cycle: Vec<NodeId>) -> Vec<NodeId> {
    if cycle.is_empty() {
        return cycle;
    }
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, n)| **n)
        .map(|(i, _)| i)
        .unwrap_or(0);
    cycle.rotate_left(min_pos);
    cycle
}

/// Finds forwarding loops reachable from the given `(link, atom)` seeds —
/// the per-update check run on a delta-graph.
///
/// Only label *additions* need to be seeded: removing an atom from a label
/// can break loops but never create one.
pub fn find_loops_from_seeds(
    topology: &Topology,
    labels: &Labels,
    atoms: &AtomMap,
    seeds: &[(LinkId, AtomId)],
) -> Vec<InvariantViolation> {
    let mut cycles: HashMap<Vec<NodeId>, AtomSet> = HashMap::new();
    for &(link, atom) in seeds {
        if !labels.contains(link, atom) {
            // The seed may have been superseded by a later change in an
            // aggregated delta-graph.
            continue;
        }
        let start = topology.link(link).src;
        if let Some(cycle) = walk_for_cycle(topology, labels, start, atom) {
            cycles.entry(canonicalize(cycle)).or_default().insert(atom);
        }
    }
    into_violations(cycles, atoms)
}

/// Finds all forwarding loops that involve any of the given atoms anywhere
/// in the network — used by the what-if link-failure query (§4.3.2) and the
/// full-data-plane audits in the tests.
pub fn find_loops_for_atoms(
    topology: &Topology,
    labels: &Labels,
    atoms: &AtomMap,
    candidates: &AtomSet,
) -> Vec<InvariantViolation> {
    find_loops_for_atoms_via(topology, labels, atoms, candidates, |node, atom| {
        successor(topology, labels, node, atom)
    })
}

/// Like [`find_loops_for_atoms`], but with a caller-supplied successor
/// function. The [`DeltaNet`](crate::DeltaNet) engine passes an owner-based
/// successor here, which resolves the next hop in `O(log M)` independent of
/// a switch's out-degree — important on dense ISP topologies where scanning
/// a node's out-links per hop dominates the what-if `+Loops` query.
pub fn find_loops_for_atoms_via<F>(
    topology: &Topology,
    labels: &Labels,
    atoms: &AtomMap,
    candidates: &AtomSet,
    succ: F,
) -> Vec<InvariantViolation>
where
    F: Fn(NodeId, AtomId) -> Option<LinkId>,
{
    into_violations(
        cycles_for_atoms_via(topology, labels, candidates, succ),
        atoms,
    )
}

/// The cycle-level core of [`find_loops_for_atoms_via`]: every forwarding
/// cycle any candidate atom traverses, as a map from the canonical cycle to
/// the set of candidate atoms looping through it. The
/// [`crate::monitor::ViolationMonitor`] maintains exactly this shape as live
/// state, so it recomputes entries through the same function the full scans
/// use — a differential test then reduces to map equality.
pub(crate) fn cycles_for_atoms_via<F>(
    topology: &Topology,
    labels: &Labels,
    candidates: &AtomSet,
    succ: F,
) -> HashMap<Vec<NodeId>, AtomSet>
where
    F: Fn(NodeId, AtomId) -> Option<LinkId>,
{
    // One pass over the labelled links collects, per candidate atom, the
    // switches that emit it; the per-atom functional-graph walks then start
    // only from those switches. This keeps the cost at
    // O(L · |label ∩ candidates| + Σ_atom walk-length) instead of scanning
    // every link once per atom.
    let mut emitters: HashMap<AtomId, Vec<NodeId>> = HashMap::new();
    for (link, label) in labels.iter() {
        if !label.intersects(candidates) {
            continue;
        }
        let src = topology.link(link).src;
        let mut common = label.clone();
        common.intersect_with(candidates);
        for atom in common.iter() {
            emitters.entry(atom).or_default().push(src);
        }
    }

    let mut cycles: HashMap<Vec<NodeId>, AtomSet> = HashMap::new();
    let mut visited = vec![false; topology.node_count()];
    for (atom, sources) in emitters {
        visited.iter_mut().for_each(|v| *v = false);
        for &start in &sources {
            if visited[start.index()] {
                continue;
            }
            let mut cur = start;
            let mut path: Vec<NodeId> = Vec::new();
            let mut on_path: HashMap<NodeId, usize> = HashMap::new();
            loop {
                if visited[cur.index()] && !on_path.contains_key(&cur) {
                    break; // joins an already-explored (acyclic) walk
                }
                if let Some(&pos) = on_path.get(&cur) {
                    cycles
                        .entry(canonicalize(path[pos..].to_vec()))
                        .or_default()
                        .insert(atom);
                    break;
                }
                on_path.insert(cur, path.len());
                path.push(cur);
                visited[cur.index()] = true;
                match succ(cur, atom) {
                    Some(l) => {
                        let next = topology.link(l).dst;
                        if topology.is_drop_node(next) {
                            break;
                        }
                        cur = next;
                    }
                    None => break,
                }
            }
        }
    }
    cycles
}

/// Checks the entire data plane for forwarding loops over all atoms.
pub fn find_all_loops(
    topology: &Topology,
    labels: &Labels,
    atoms: &AtomMap,
) -> Vec<InvariantViolation> {
    let all: AtomSet = atoms.iter().map(|(a, _)| a).collect();
    find_loops_for_atoms(topology, labels, atoms, &all)
}

/// Renders a cycle → atoms map as sorted [`InvariantViolation`]s — shared by
/// the full scans and the monitor so their reports are bit-identical.
pub(crate) fn into_violations(
    cycles: impl IntoIterator<Item = (Vec<NodeId>, AtomSet)>,
    atoms: &AtomMap,
) -> Vec<InvariantViolation> {
    let mut out: Vec<InvariantViolation> = cycles
        .into_iter()
        .map(|(nodes, atom_set)| {
            let intervals = normalize(
                atom_set
                    .iter()
                    .map(|a| atoms.atom_interval(a))
                    .collect::<Vec<_>>(),
            );
            InvariantViolation::ForwardingLoop {
                nodes,
                packets: intervals,
            }
        })
        .collect();
    // Deterministic order for reporting and tests.
    out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::interval::Interval;

    /// Builds a 3-node topology with a loop s0 -> s1 -> s2 -> s0 for atom 0
    /// and a loop-free path for atom 1.
    fn looped_setup() -> (Topology, Labels, AtomMap) {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 3);
        let l01 = topo.add_link(n[0], n[1]);
        let l12 = topo.add_link(n[1], n[2]);
        let l20 = topo.add_link(n[2], n[0]);

        let mut atoms = AtomMap::new(8);
        // atom for [0:16) and the remainder atom.
        atoms.create_atoms(Interval::new(0, 16));
        let a0 = atoms.atom_of_value(0);
        let a1 = atoms.atom_of_value(200);

        let mut labels = Labels::new();
        labels.insert(l01, a0);
        labels.insert(l12, a0);
        labels.insert(l20, a0);
        // Atom a1 flows s0 -> s1 -> s2 and stops.
        labels.insert(l01, a1);
        labels.insert(l12, a1);
        (topo, labels, atoms)
    }

    #[test]
    fn successor_finds_unique_link() {
        let (topo, labels, atoms) = looped_setup();
        let a0 = atoms.atom_of_value(0);
        let n0 = topo.node_by_name("s0").unwrap();
        let s = successor(&topo, &labels, n0, a0).unwrap();
        assert_eq!(topo.link(s).dst, topo.node_by_name("s1").unwrap());
        // No successor for an unknown atom.
        assert!(successor(&topo, &labels, n0, AtomId(999)).is_none());
    }

    #[test]
    fn seed_walk_detects_loop() {
        let (topo, labels, atoms) = looped_setup();
        let a0 = atoms.atom_of_value(0);
        let l01 = topo
            .link_between(
                topo.node_by_name("s0").unwrap(),
                topo.node_by_name("s1").unwrap(),
            )
            .unwrap();
        let loops = find_loops_from_seeds(&topo, &labels, &atoms, &[(l01, a0)]);
        assert_eq!(loops.len(), 1);
        match &loops[0] {
            InvariantViolation::ForwardingLoop { nodes, packets } => {
                assert_eq!(nodes.len(), 3);
                assert_eq!(packets, &vec![Interval::new(0, 16)]);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn seed_walk_ignores_loop_free_atom() {
        let (topo, labels, atoms) = looped_setup();
        let a1 = atoms.atom_of_value(200);
        let l01 = topo
            .link_between(
                topo.node_by_name("s0").unwrap(),
                topo.node_by_name("s1").unwrap(),
            )
            .unwrap();
        let loops = find_loops_from_seeds(&topo, &labels, &atoms, &[(l01, a1)]);
        assert!(loops.is_empty());
    }

    #[test]
    fn stale_seed_is_skipped() {
        let (topo, mut labels, atoms) = looped_setup();
        let a0 = atoms.atom_of_value(0);
        let l01 = topo
            .link_between(
                topo.node_by_name("s0").unwrap(),
                topo.node_by_name("s1").unwrap(),
            )
            .unwrap();
        labels.remove(l01, a0); // the seed no longer holds
        let loops = find_loops_from_seeds(&topo, &labels, &atoms, &[(l01, a0)]);
        assert!(loops.is_empty());
    }

    #[test]
    fn whole_graph_scan_finds_same_loop_once() {
        let (topo, labels, atoms) = looped_setup();
        let loops = find_all_loops(&topo, &labels, &atoms);
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn loops_grouped_by_cycle_merge_atoms() {
        // Two atoms looping through the same cycle are reported as one loop
        // with both packet intervals merged.
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 2);
        let l01 = topo.add_link(n[0], n[1]);
        let l10 = topo.add_link(n[1], n[0]);
        let mut atoms = AtomMap::new(8);
        atoms.create_atoms(Interval::new(0, 8));
        atoms.create_atoms(Interval::new(8, 16));
        let a = atoms.atom_of_value(0);
        let b = atoms.atom_of_value(8);
        let mut labels = Labels::new();
        for atom in [a, b] {
            labels.insert(l01, atom);
            labels.insert(l10, atom);
        }
        let loops = find_loops_from_seeds(&topo, &labels, &atoms, &[(l01, a), (l01, b)]);
        assert_eq!(loops.len(), 1);
        match &loops[0] {
            InvariantViolation::ForwardingLoop { packets, .. } => {
                // [0:8) and [8:16) normalize to a single interval.
                assert_eq!(packets, &vec![Interval::new(0, 16)]);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn drop_links_terminate_walks() {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 2);
        let l01 = topo.add_link(n[0], n[1]);
        let drop1 = topo.drop_link(n[1]);
        let mut atoms = AtomMap::new(8);
        atoms.create_atoms(Interval::new(0, 8));
        let a = atoms.atom_of_value(0);
        let mut labels = Labels::new();
        labels.insert(l01, a);
        labels.insert(drop1, a);
        let loops = find_loops_from_seeds(&topo, &labels, &atoms, &[(l01, a)]);
        assert!(loops.is_empty());
    }

    #[test]
    fn self_loop_single_node() {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 2);
        let l00 = topo.add_link(n[0], n[0]);
        let mut atoms = AtomMap::new(8);
        atoms.create_atoms(Interval::new(4, 6));
        let a = atoms.atom_of_value(4);
        let mut labels = Labels::new();
        labels.insert(l00, a);
        let loops = find_loops_from_seeds(&topo, &labels, &atoms, &[(l00, a)]);
        assert_eq!(loops.len(), 1);
        match &loops[0] {
            InvariantViolation::ForwardingLoop { nodes, .. } => assert_eq!(nodes, &vec![n[0]]),
            other => panic!("unexpected violation {other:?}"),
        }
    }
}
