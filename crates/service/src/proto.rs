//! The daemon's line-delimited ndjson protocol: request parsing and
//! response/event encoding.
//!
//! One JSON object per line in both directions. Every request carries a
//! client-chosen `id` echoed on its reply, so clients may pipeline.
//! The protocol is transport-agnostic — the same framing runs over TCP and
//! stdin/stdout — and deliberately integer-exact (see [`crate::json`]).
//!
//! ## Requests
//!
//! ```text
//! {"id": 1, "op": "insert", "rule": {"id": 7, "src": 0, "dst": 3,
//!                                    "prefix": "10.0.0.0/8", "priority": 100}}
//! {"id": 2, "op": "remove", "rule_id": 7}
//! {"id": 3, "op": "batch", "ops": [{"op": "insert", "rule": {...}},
//!                                  {"op": "remove", "rule_id": 9}]}
//! {"id": 4, "op": "what_if", "src": 0, "dst": 3, "check_loops": true}
//! {"id": 5, "op": "stats"}
//! {"id": 6, "op": "snapshot", "path": "state.dnsnap"}
//! {"id": 7, "op": "subscribe", "buffer": 64, "pace_ms": 0}
//! {"id": 8, "op": "shutdown"}
//! ```
//!
//! A rule's `dst` is a peer node id, or the string `"drop"` for the source
//! node's drop link; `sec` (optional) lists `[lo, hi)` intervals for
//! secondary header fields in field order.
//!
//! ## Replies
//!
//! Success: `{"id": N, "ok": true, ...}` with op-specific fields (`at` is
//! the 1-based global count of applied ops after this one). Failure:
//! `{"id": N, "ok": false, "kind": "...", "error": "..."}` where `kind` is
//! one of `bad_request`, `unknown_rule`, `duplicate_rule`, `unknown_link`,
//! `outside_shard`, `field_mismatch`, or `skipped` (a batch op behind the
//! failing one). A `batch` reply carries per-op acks: the window's
//! applied-prefix semantics — ops before the failure index are applied and
//! acked `ok`, the failing op carries its error, later ops are `skipped`.
//! Any op that applied inside a *window* that later failed (its own
//! request, or another request coalesced behind it) acks positionally:
//! `ok` and `at` only, without the report delta fields.
//!
//! ## Events (subscription stream)
//!
//! ```text
//! {"event": "transitions", "seq": 3, "first_op": 17, "last_op": 20,
//!  "appeared": ["forwarding loop through a -> b"], "resolved": []}
//! {"event": "gap", "dropped": 5}
//! ```
//!
//! `appeared`/`resolved` carry [`ViolationKey`] display strings, each list
//! sorted — exactly the per-window transition a `replay --monitor` oracle
//! computes. A `gap` marker replaces events a slow consumer missed.

use crate::json::{obj, parse, Json};
use deltanet::{MonitorTransitions, ViolationKey};
use netmodel::checker::{UpdateError, UpdateReport, WhatIfReport};
use netmodel::interval::{Bound, Interval};
use netmodel::ip::IpPrefix;
use netmodel::rule::{Rule, RuleId};
use netmodel::topology::{NodeId, Topology};
use netmodel::trace::Op;
use std::fmt;

/// A protocol-level error: the line could not be turned into an engine op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// The request id, when one could be extracted from the bad line.
    pub id: Option<u64>,
    /// What was wrong.
    pub message: String,
}

impl ProtoError {
    fn new(id: Option<u64>, message: impl Into<String>) -> ProtoError {
        ProtoError {
            id,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ProtoError {}

/// One parsed client request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen id, echoed on the reply.
    pub id: u64,
    /// The operation.
    pub body: RequestBody,
}

/// The operations a client can ask for.
#[derive(Clone, Debug)]
pub enum RequestBody {
    /// Apply a single insertion.
    Insert(Rule),
    /// Apply a single removal.
    Remove(RuleId),
    /// Apply an ordered batch with applied-prefix semantics.
    Batch(Vec<Op>),
    /// Link-failure analysis of the `src -> dst` link.
    WhatIf {
        /// Source node of the link.
        src: NodeId,
        /// Destination node of the link.
        dst: NodeId,
        /// Also run loop checks on the affected portion.
        check_loops: bool,
    },
    /// Engine statistics.
    Stats,
    /// Write a snapshot of the current state to a file on the server.
    Snapshot(String),
    /// Turn this connection into a violation event stream.
    Subscribe {
        /// Event buffer capacity (0 picks the server default).
        buffer: usize,
        /// Debug/test knob: the event writer sleeps this long per line,
        /// making slow-consumer behaviour deterministic.
        pace_ms: u64,
    },
    /// Stop the daemon after draining in-flight work.
    Shutdown,
}

/// Parses one request line against `topo` (node/link references resolve
/// eagerly so malformed rules never reach the engine queue).
pub fn parse_request(line: &str, topo: &Topology) -> Result<Request, ProtoError> {
    let value = parse(line).map_err(|e| ProtoError::new(None, e.to_string()))?;
    let id = value
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::new(None, "missing or non-integer `id`"))?;
    let fail = |msg: String| ProtoError::new(Some(id), msg);
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing `op`".to_string()))?;
    let body = match op {
        "insert" => {
            let rule = value
                .get("rule")
                .ok_or_else(|| fail("missing `rule`".into()))?;
            RequestBody::Insert(parse_rule(rule, topo).map_err(&fail)?)
        }
        "remove" => RequestBody::Remove(RuleId(
            value
                .get("rule_id")
                .and_then(Json::as_u64)
                .ok_or_else(|| fail("missing or non-integer `rule_id`".into()))?,
        )),
        "batch" => {
            let items = value
                .get("ops")
                .and_then(Json::as_arr)
                .ok_or_else(|| fail("missing `ops` array".into()))?;
            let mut ops = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                ops.push(parse_batch_op(item, topo).map_err(|m| fail(format!("ops[{i}]: {m}")))?);
            }
            RequestBody::Batch(ops)
        }
        "what_if" => {
            let src = node(value.get("src"), topo).map_err(|m| fail(format!("src: {m}")))?;
            let dst = node(value.get("dst"), topo).map_err(|m| fail(format!("dst: {m}")))?;
            let check_loops = value
                .get("check_loops")
                .map(|v| v.as_bool().ok_or("`check_loops` must be a bool"))
                .transpose()
                .map_err(|m| fail(m.into()))?
                .unwrap_or(false);
            RequestBody::WhatIf {
                src,
                dst,
                check_loops,
            }
        }
        "stats" => RequestBody::Stats,
        "snapshot" => RequestBody::Snapshot(
            value
                .get("path")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("missing `path`".into()))?
                .to_string(),
        ),
        "subscribe" => RequestBody::Subscribe {
            buffer: value
                .get("buffer")
                .map(|v| v.as_u64().ok_or("`buffer` must be a non-negative integer"))
                .transpose()
                .map_err(|m| fail(m.into()))?
                .unwrap_or(0) as usize,
            pace_ms: value
                .get("pace_ms")
                .map(|v| v.as_u64().ok_or("`pace_ms` must be a non-negative integer"))
                .transpose()
                .map_err(|m| fail(m.into()))?
                .unwrap_or(0),
        },
        "shutdown" => RequestBody::Shutdown,
        other => return Err(fail(format!("unknown op `{other}`"))),
    };
    Ok(Request { id, body })
}

fn parse_batch_op(item: &Json, topo: &Topology) -> Result<Op, String> {
    let op = item
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing `op`")?;
    match op {
        "insert" => {
            let rule = item.get("rule").ok_or("missing `rule`")?;
            Ok(Op::Insert(parse_rule(rule, topo)?))
        }
        "remove" => Ok(Op::Remove(RuleId(
            item.get("rule_id")
                .and_then(Json::as_u64)
                .ok_or("missing or non-integer `rule_id`")?,
        ))),
        other => Err(format!("unknown batch op `{other}`")),
    }
}

fn node(value: Option<&Json>, topo: &Topology) -> Result<NodeId, String> {
    let n = value
        .and_then(Json::as_u64)
        .ok_or("missing or non-integer node id")?;
    if (n as usize) < topo.node_count() {
        Ok(NodeId(n as u32))
    } else {
        Err(format!(
            "node {n} out of range (topology has {} nodes)",
            topo.node_count()
        ))
    }
}

fn parse_rule(value: &Json, topo: &Topology) -> Result<Rule, String> {
    let id = RuleId(
        value
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("rule: missing or non-integer `id`")?,
    );
    let src = node(value.get("src"), topo).map_err(|m| format!("rule src: {m}"))?;
    let prefix: IpPrefix = value
        .get("prefix")
        .and_then(Json::as_str)
        .ok_or("rule: missing `prefix`")?
        .parse()
        .map_err(|e| format!("rule prefix: {e}"))?;
    let priority = value
        .get("priority")
        .and_then(Json::as_u64)
        .ok_or("rule: missing or non-integer `priority`")?
        .try_into()
        .map_err(|_| "rule: priority out of range".to_string())?;
    let dst = value.get("dst").ok_or("rule: missing `dst`")?;
    let mut rule = if dst.as_str() == Some("drop") {
        // The server pre-creates every node's drop link before the engine
        // is built, so a read-only lookup suffices here.
        let link = topo
            .out_links(src)
            .iter()
            .copied()
            .find(|&l| topo.is_drop_link(l))
            .ok_or_else(|| format!("rule: node {} has no drop link", src.0))?;
        Rule::drop(id, prefix, priority, src, link)
    } else {
        let dst = node(Some(dst), topo).map_err(|m| format!("rule dst: {m}"))?;
        let link = topo
            .link_between(src, dst)
            .ok_or_else(|| format!("rule: no link {} -> {}", src.0, dst.0))?;
        Rule::forward(id, prefix, priority, src, link)
    };
    if let Some(sec) = value.get("sec") {
        let items = sec.as_arr().ok_or("rule sec: must be an array")?;
        let mut intervals = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let pair = item
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("rule sec[{i}]: expected [lo, hi]"))?;
            let lo = pair[0]
                .as_u64()
                .ok_or_else(|| format!("rule sec[{i}]: non-integer lo"))?;
            let hi = pair[1]
                .as_u64()
                .ok_or_else(|| format!("rule sec[{i}]: non-integer hi"))?;
            if lo >= hi {
                return Err(format!("rule sec[{i}]: empty interval [{lo}, {hi})"));
            }
            intervals.push(Interval::new(lo as Bound, hi as Bound));
        }
        rule = rule.with_secondary(netmodel::header::SecondaryMatch::new(&intervals));
    }
    Ok(rule)
}

/// Encodes a rule as its protocol JSON (the inverse of rule parsing).
pub fn rule_to_json(rule: &Rule, topo: &Topology) -> Json {
    let link = topo.link(rule.link);
    let dst = if topo.is_drop_link(rule.link) {
        Json::str("drop")
    } else {
        Json::int(link.dst.0)
    };
    let mut pairs = vec![
        ("id", Json::int(rule.id.0)),
        ("src", Json::int(rule.source.0)),
        ("dst", dst),
        ("prefix", Json::str(rule.prefix.to_string())),
        ("priority", Json::int(rule.priority)),
    ];
    if !rule.sec.is_empty() {
        pairs.push((
            "sec",
            Json::Arr(
                rule.sec
                    .intervals()
                    .iter()
                    .map(|iv| Json::Arr(vec![Json::int(iv.lo()), Json::int(iv.hi())]))
                    .collect(),
            ),
        ));
    }
    obj(pairs)
}

fn op_to_json(op: &Op, topo: &Topology) -> Vec<(&'static str, Json)> {
    match op {
        Op::Insert(rule) => vec![
            ("op", Json::str("insert")),
            ("rule", rule_to_json(rule, topo)),
        ],
        Op::Remove(id) => vec![("op", Json::str("remove")), ("rule_id", Json::int(id.0))],
    }
}

/// Encodes one op as a stand-alone `insert` / `remove` request line.
pub fn op_request(id: u64, op: &Op, topo: &Topology) -> Json {
    let mut pairs = vec![("id", Json::int(id))];
    pairs.extend(op_to_json(op, topo));
    obj(pairs)
}

/// Encodes a slice of ops as one `batch` request line.
pub fn batch_request(id: u64, ops: &[Op], topo: &Topology) -> Json {
    obj(vec![
        ("id", Json::int(id)),
        ("op", Json::str("batch")),
        (
            "ops",
            Json::Arr(ops.iter().map(|op| obj(op_to_json(op, topo))).collect()),
        ),
    ])
}

/// The stable error-kind slug of an [`UpdateError`].
pub fn update_error_kind(e: &UpdateError) -> &'static str {
    match e {
        UpdateError::UnknownRule(_) => "unknown_rule",
        UpdateError::DuplicateRule(_) => "duplicate_rule",
        UpdateError::UnknownLink { .. } => "unknown_link",
        UpdateError::OutsideShard { .. } => "outside_shard",
        UpdateError::FieldMismatch { .. } => "field_mismatch",
    }
}

/// An `{"ok": true}` reply for one applied op. `at` is the 1-based global
/// count of ops applied by the daemon after this one.
pub fn ok_reply(id: u64, at: u64, report: &UpdateReport) -> Json {
    obj(vec![
        ("id", Json::int(id)),
        ("ok", Json::Bool(true)),
        ("at", Json::int(at)),
        ("affected_classes", Json::int(report.affected_classes)),
        ("changed_links", Json::int(report.changed_links.len())),
        ("violations", Json::int(report.violations.len())),
    ])
}

/// A positional `{"ok": true, "at": ...}` ack without report deltas. Used
/// for ops that applied inside a window whose later op failed:
/// `apply_batch` returns only the error on failure, so the window's
/// applied prefix has no reports and its acks carry position only.
pub fn positional_ack(at: u64) -> Json {
    obj(vec![("ok", Json::Bool(true)), ("at", Json::int(at))])
}

/// The top-level (`id`-carrying) form of [`positional_ack`], for a
/// non-batch request whose op applied in a failed window.
pub fn positional_reply(id: u64, at: u64) -> Json {
    obj(vec![
        ("id", Json::int(id)),
        ("ok", Json::Bool(true)),
        ("at", Json::int(at)),
    ])
}

/// An `{"ok": false}` reply with an error kind and message.
pub fn error_reply(id: u64, kind: &str, message: &str) -> Json {
    obj(vec![
        ("id", Json::int(id)),
        ("ok", Json::Bool(false)),
        ("kind", Json::str(kind)),
        ("error", Json::str(message)),
    ])
}

/// Same shape without a usable id (`"id": null`) — unparseable lines.
pub fn error_reply_no_id(kind: &str, message: &str) -> Json {
    obj(vec![
        ("id", Json::Null),
        ("ok", Json::Bool(false)),
        ("kind", Json::str(kind)),
        ("error", Json::str(message)),
    ])
}

/// Per-op acks of a batch reply (no top-level `id`; nested under `acks`).
pub fn batch_op_ack(at: u64, report: &UpdateReport) -> Json {
    obj(vec![
        ("ok", Json::Bool(true)),
        ("at", Json::int(at)),
        ("affected_classes", Json::int(report.affected_classes)),
        ("changed_links", Json::int(report.changed_links.len())),
        ("violations", Json::int(report.violations.len())),
    ])
}

/// A failed or skipped op inside a batch reply.
pub fn batch_op_error(kind: &str, message: &str) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("kind", Json::str(kind)),
        ("error", Json::str(message)),
    ])
}

/// The top-level batch reply: `applied` = the applied prefix length.
pub fn batch_reply(id: u64, ok: bool, applied: usize, acks: Vec<Json>) -> Json {
    obj(vec![
        ("id", Json::int(id)),
        ("ok", Json::Bool(ok)),
        ("applied", Json::int(applied)),
        ("acks", Json::Arr(acks)),
    ])
}

/// The reply to a `what_if` request.
pub fn what_if_reply(id: u64, report: &WhatIfReport) -> Json {
    obj(vec![
        ("id", Json::int(id)),
        ("ok", Json::Bool(true)),
        ("affected_classes", Json::int(report.affected_classes)),
        ("affected_links", Json::int(report.affected_links.len())),
        (
            "affected_packets",
            Json::Arr(
                report
                    .affected_packets
                    .iter()
                    .map(|iv| Json::Arr(vec![Json::int(iv.lo()), Json::int(iv.hi())]))
                    .collect(),
            ),
        ),
        ("violations", Json::int(report.violations.len())),
    ])
}

/// A `transitions` event line: the violations that appeared and resolved
/// over the window covering global ops `[first_op, last_op]` (1-based),
/// each list sorted by [`ViolationKey`] order.
pub fn transitions_event(
    seq: u64,
    first_op: u64,
    last_op: u64,
    transitions: &MonitorTransitions,
) -> Json {
    let keys =
        |ks: &[ViolationKey]| Json::Arr(ks.iter().map(|k| Json::str(k.to_string())).collect());
    obj(vec![
        ("event", Json::str("transitions")),
        ("seq", Json::int(seq)),
        ("first_op", Json::int(first_op)),
        ("last_op", Json::int(last_op)),
        ("appeared", keys(&transitions.appeared)),
        ("resolved", keys(&transitions.resolved)),
    ])
}

/// A `gap` event: `dropped` transition events were discarded because this
/// subscriber's buffer was full.
pub fn gap_event(dropped: u64) -> Json {
    obj(vec![
        ("event", Json::str("gap")),
        ("dropped", Json::int(dropped)),
    ])
}
