//! The verification daemon: ingest queue, windowed batching engine thread,
//! and violation fan-out.
//!
//! ## Thread architecture
//!
//! ```text
//!  client ──TCP──▶ reader thread ──(bounded work queue)──▶ engine thread
//!                    ▲    │ ack line   (sync_channel:          │ owns the
//!                    │    ◀────────────  *backpressure*)       │ ShardedDeltaNet
//!                    │                                         │
//!  subscriber ◀── event pump ◀──(bounded event buffer)─────────┘
//! ```
//!
//! * One **reader** per connection parses ndjson requests, resolves
//!   node/link references eagerly, and pushes work items into the bounded
//!   ingest queue. A full queue blocks the reader — and, transitively, the
//!   client's socket — which is the protocol's explicit backpressure: a
//!   client can never have more un-acked work in the daemon than the queue
//!   holds.
//! * The single **engine** thread owns the [`ShardedDeltaNet`] (optionally
//!   wrapped in a [`CheckpointManager`] for durability). It coalesces
//!   consecutive op items into windows of at most `window` ops, applies each
//!   window with [`ShardedDeltaNet::apply_batch`] (per-shard groups run
//!   concurrently), and acks per request. A mid-window engine error keeps
//!   the window's applied prefix (exactly `apply_batch`'s semantics): items
//!   fully applied ack `ok` (positionally — a failed window yields no
//!   per-op reports, so these acks carry `at` without delta fields), the
//!   item owning the failure acks its own applied prefix plus the error
//!   and `skipped` for its remaining ops, and
//!   *later* items of the window are put back at the front of the queue and
//!   applied in a follow-up window — one request's bad op never poisons
//!   another client's.
//! * Violation transitions reach the engine thread through the
//!   [`ShardedDeltaNet::set_monitor_observer`] seam and fan out to every
//!   subscriber through its own bounded buffer via non-blocking sends: a
//!   slow consumer *drops* events (never stalls the engine) and receives a
//!   `{"event": "gap", "dropped": n}` marker as soon as its buffer has room
//!   again.
//!
//! All transitions events carry a global `seq`, so every subscriber that
//! keeps up sees a bit-identical stream. Under durability, a restarted
//! daemon resumes `seq` from the recovered op count — an upper bound on
//! any seq the previous life issued — so a reconnecting subscriber sees
//! `seq` stay monotone (though not dense) across restarts.

use crate::json::Json;
use crate::proto::{
    batch_op_ack, batch_op_error, batch_reply, error_reply, error_reply_no_id, gap_event, ok_reply,
    parse_request, positional_ack, positional_reply, transitions_event, update_error_kind,
    what_if_reply, Request, RequestBody,
};
use deltanet::persist::RecoveryPolicy;
use deltanet::{
    CheckpointConfig, CheckpointManager, DeltaNetConfig, FsBackend, MonitorTransitions,
    Parallelism, PersistNet, ShardedDeltaNet, Snapshot,
};
use netmodel::checker::{InvariantViolation, ReplayError, UpdateReport, WhatIfReport};
use netmodel::topology::{LinkId, Topology};
use netmodel::trace::Op;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Durability mounting for the daemon (see [`CheckpointManager`]).
#[derive(Clone, Debug)]
pub struct CheckpointSetup {
    /// Checkpoint directory; recovered from and resumed when it already
    /// holds artifacts.
    pub dir: PathBuf,
    /// Cadence / retention / durability of the manager.
    pub config: CheckpointConfig,
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Engine configuration (`monitor_violations` is forced on — the
    /// subscription surface requires the monitor).
    pub engine: DeltaNetConfig,
    /// Number of address-space shards (≥ 1).
    pub shards: usize,
    /// Worker threads for per-window shard groups.
    pub parallelism: Parallelism,
    /// Maximum ops coalesced into one `apply_batch` window (≥ 1).
    pub window: usize,
    /// Bounded ingest queue capacity in work items (≥ 1); a full queue
    /// blocks readers — the backpressure bound.
    pub queue: usize,
    /// Default per-subscriber event buffer capacity (≥ 1).
    pub sub_buffer: usize,
    /// Cross-check the incremental monitor against a full rescan after
    /// every window; mismatches are counted in `stats`.
    pub audit: bool,
    /// Mount a [`CheckpointManager`] under the engine.
    pub checkpoint: Option<CheckpointSetup>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            engine: DeltaNetConfig::default(),
            shards: 2,
            parallelism: Parallelism::auto(),
            window: 32,
            queue: 128,
            sub_buffer: 256,
            audit: false,
            checkpoint: None,
        }
    }
}

/// A work item from a reader to the engine thread.
enum WorkItem {
    /// Ordered ops of one request (`batch`: reply shape).
    Ops {
        id: u64,
        reply: Sender<String>,
        ops: Vec<Op>,
        batch: bool,
    },
    /// A read-only (or engine-owned) query, processed between windows.
    Query {
        id: u64,
        reply: Sender<String>,
        kind: Query,
    },
    /// Register a violation subscriber.
    Subscribe {
        id: u64,
        reply: Sender<String>,
        events: SyncSender<String>,
    },
    /// Stop the daemon.
    Shutdown { id: u64, reply: Sender<String> },
}

enum Query {
    WhatIf { link: LinkId, check_loops: bool },
    Stats,
    Snapshot(String),
}

/// One registered subscriber, as the engine thread sees it.
struct Subscriber {
    events: SyncSender<String>,
    /// Events dropped since the last line this subscriber received; a gap
    /// marker carrying this count is delivered once the buffer has room.
    dropped: u64,
    alive: bool,
}

/// State shared between the accept loop, readers, and the engine.
struct Shared {
    /// The topology, with every node's drop link pre-created (shard
    /// topologies are cloned at engine construction, so drop links must
    /// exist *before* the engine is built).
    topology: Topology,
    shutdown: AtomicBool,
    sub_buffer: usize,
}

/// The engine: a plain sharded net, or one under checkpoint management.
enum EngineNet {
    Plain(ShardedDeltaNet),
    Durable(CheckpointManager),
}

impl EngineNet {
    fn apply_batch(&mut self, ops: &[Op]) -> Result<Vec<UpdateReport>, ReplayError> {
        match self {
            EngineNet::Plain(net) => net.apply_batch(ops),
            EngineNet::Durable(mgr) => mgr.apply_batch(ops),
        }
    }

    fn sharded(&self) -> &ShardedDeltaNet {
        match self {
            EngineNet::Plain(net) => net,
            EngineNet::Durable(mgr) => mgr
                .net()
                .as_sharded()
                .expect("daemon engines are always sharded"),
        }
    }

    fn link_failure_impact(&self, link: LinkId, check_loops: bool) -> WhatIfReport {
        self.sharded().link_failure_impact(link, check_loops)
    }

    fn active_violations(&self) -> Option<Vec<InvariantViolation>> {
        self.sharded().active_violations()
    }

    fn rescan(&self) -> Vec<InvariantViolation> {
        let net = self.sharded();
        let mut all = net.check_all_loops();
        all.extend(net.check_all_blackholes());
        all
    }
}

/// The daemon, bound to a TCP listener. [`Server::run`] accepts
/// connections until a `shutdown` request arrives.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    work_tx: SyncSender<WorkItem>,
    engine: thread::JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the engine thread. With a checkpoint directory that already
    /// holds artifacts, the daemon recovers and resumes from it.
    pub fn bind(
        addr: impl ToSocketAddrs,
        topology: Topology,
        config: ServiceConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let (shared, work_tx, engine) = start_engine(topology, config)?;
        Ok(Server {
            listener,
            shared,
            work_tx,
            engine,
        })
    }

    /// The bound address (for ephemeral-port discovery).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections until a client sends `shutdown`;
    /// returns once the engine thread has drained and exited.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    let work_tx = self.work_tx.clone();
                    thread::spawn(move || {
                        let _ = serve_tcp_connection(stream, &shared, &work_tx);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Readers' queue sends now fail; the engine already exited (it set
        // the flag) or exits once the last sender drops.
        drop(self.work_tx);
        let _ = self.engine.join();
        Ok(())
    }
}

/// Serves the ndjson protocol over stdin/stdout instead of TCP — the same
/// engine and semantics, one implicit connection. Returns at EOF or after
/// a `shutdown` request.
pub fn serve_stdio(topology: Topology, config: ServiceConfig) -> io::Result<()> {
    let (shared, work_tx, engine) = start_engine(topology, config)?;
    let stdin = io::stdin();
    let stdout = io::stdout();
    let result = handle_connection(stdin.lock(), stdout.lock(), &shared, &work_tx);
    drop(work_tx); // EOF without `shutdown` still closes the engine cleanly
    let _ = engine.join();
    result
}

/// Builds the prepared topology + engine and spawns the engine thread.
#[allow(clippy::type_complexity)]
fn start_engine(
    mut topology: Topology,
    mut config: ServiceConfig,
) -> io::Result<(Arc<Shared>, SyncSender<WorkItem>, thread::JoinHandle<()>)> {
    config.engine.monitor_violations = true;
    config.shards = config.shards.max(1);
    config.window = config.window.max(1);
    config.queue = config.queue.max(1);
    config.sub_buffer = config.sub_buffer.max(1);

    // Drop links must exist before engine construction: each shard clones
    // the topology, so links created later would be unknown to the engine.
    let nodes: Vec<_> = topology.nodes().collect();
    for node in nodes {
        topology.drop_link(node);
    }

    let staging: Arc<Mutex<Vec<MonitorTransitions>>> = Arc::default();
    let observer_sink = Arc::clone(&staging);
    let observe = move |t: &MonitorTransitions| observer_sink.lock().unwrap().push(t.clone());

    let (engine_net, ops_applied) = match &config.checkpoint {
        None => {
            let mut net = ShardedDeltaNet::with_parallelism(
                topology.clone(),
                config.engine,
                config.shards,
                config.parallelism,
            );
            net.enable_monitor();
            net.set_monitor_observer(observe);
            (EngineNet::Plain(net), 0)
        }
        Some(setup) => {
            let backend = Box::new(FsBackend);
            let has_artifacts = setup.dir.is_dir()
                && std::fs::read_dir(&setup.dir)?
                    .filter_map(|e| e.ok())
                    .any(|e| {
                        e.file_name()
                            .to_str()
                            .is_some_and(|n| n.starts_with("snap-"))
                    });
            let mut mgr = if has_artifacts {
                let (mgr, _report) = CheckpointManager::recover(
                    backend,
                    &setup.dir,
                    &topology,
                    RecoveryPolicy::RepairTail,
                    setup.config,
                )
                .map_err(|e| io::Error::other(format!("checkpoint recovery failed: {e}")))?;
                mgr
            } else {
                let mut net = ShardedDeltaNet::with_parallelism(
                    topology.clone(),
                    config.engine,
                    config.shards,
                    config.parallelism,
                );
                net.enable_monitor();
                CheckpointManager::create(
                    backend,
                    &setup.dir,
                    PersistNet::Sharded(Box::new(net)),
                    0,
                    setup.config,
                )
                .map_err(|e| io::Error::other(format!("checkpoint creation failed: {e}")))?
            };
            let ops = mgr.ops_applied();
            match mgr.net_mut() {
                PersistNet::Sharded(net) => {
                    if net.monitor_keys().is_none() {
                        net.enable_monitor();
                    }
                    net.set_monitor_observer(observe);
                }
                PersistNet::Single(_) => {
                    return Err(io::Error::other(
                        "checkpoint directory holds a single-engine snapshot; \
                         the daemon requires a sharded engine",
                    ))
                }
            }
            (EngineNet::Durable(mgr), ops)
        }
    };

    let shared = Arc::new(Shared {
        topology,
        shutdown: AtomicBool::new(false),
        sub_buffer: config.sub_buffer,
    });
    let (work_tx, work_rx) = mpsc::sync_channel(config.queue);
    let engine_shared = Arc::clone(&shared);
    let engine = thread::spawn(move || {
        EngineLoop {
            net: engine_net,
            rx: work_rx,
            shared: engine_shared,
            staging,
            window: config.window,
            queue_cap: config.queue,
            audit: config.audit,
            ops_applied,
            // Every event covers >= 1 op, so the recovered op count is an
            // upper bound on any seq a previous life issued: resuming from
            // it keeps seq monotone (not dense) across durable restarts.
            seq: ops_applied,
            audits: 0,
            mismatches: 0,
            subscribers: Vec::new(),
            pending: VecDeque::new(),
        }
        .run();
    });
    Ok((shared, work_tx, engine))
}

/// The engine thread's state.
struct EngineLoop {
    net: EngineNet,
    rx: Receiver<WorkItem>,
    shared: Arc<Shared>,
    /// Transitions pushed by the monitor observer during the current
    /// window; drained and fanned out after each apply.
    staging: Arc<Mutex<Vec<MonitorTransitions>>>,
    window: usize,
    queue_cap: usize,
    audit: bool,
    /// Global 0-based count of ops applied so far (resumes across
    /// restarts under durability).
    ops_applied: u64,
    /// Global transitions-event sequence number (seeded from the
    /// recovered op count under durability — monotone across restarts).
    seq: u64,
    audits: u64,
    mismatches: u64,
    subscribers: Vec<Subscriber>,
    /// Items deferred to the next window (the unapplied remainder of a
    /// failed window, and any non-op item that interrupted coalescing).
    pending: VecDeque<WorkItem>,
}

impl EngineLoop {
    fn run(mut self) {
        // After a `shutdown` request the engine keeps going until the
        // deferred queue *and* the ingest channel's backlog are drained —
        // work the daemon already accepted is applied and acked, not
        // silently dropped — and only then exits.
        let mut shutting_down = false;
        loop {
            let item = match self.pending.pop_front() {
                Some(item) => item,
                None if shutting_down => match self.rx.try_recv() {
                    Ok(item) => item,
                    Err(_) => break, // backlog drained: stop
                },
                None => match self.rx.recv() {
                    Ok(item) => item,
                    Err(_) => break, // all producers gone: clean close
                },
            };
            match item {
                WorkItem::Ops {
                    id,
                    reply,
                    ops,
                    batch,
                } => {
                    let mut window = vec![(id, reply, ops, batch)];
                    self.coalesce(&mut window);
                    self.apply_window(window);
                }
                WorkItem::Query { id, reply, kind } => self.query(id, &reply, kind),
                WorkItem::Subscribe { id, reply, events } => {
                    let _ = reply.send(
                        crate::json::obj(vec![
                            ("id", Json::int(id)),
                            ("ok", Json::Bool(true)),
                            ("subscribed", Json::Bool(true)),
                        ])
                        .render(),
                    );
                    self.subscribers.push(Subscriber {
                        events,
                        dropped: 0,
                        alive: true,
                    });
                }
                WorkItem::Shutdown { id, reply } => {
                    let _ = reply.send(
                        crate::json::obj(vec![
                            ("id", Json::int(id)),
                            ("ok", Json::Bool(true)),
                            ("shutting_down", Json::Bool(true)),
                        ])
                        .render(),
                    );
                    self.shared.shutdown.store(true, Ordering::SeqCst);
                    shutting_down = true;
                }
            }
        }
        // Dropping subscribers' senders ends every event pump; a durable
        // engine syncs its log on the way out.
        self.subscribers.clear();
        if let EngineNet::Durable(mgr) = self.net {
            if let Err(e) = mgr.close() {
                eprintln!("warning: checkpoint close failed: {e}");
            }
        }
    }

    /// Pulls more op items (up to `window` total ops) without blocking; a
    /// non-op item stops coalescing and is deferred to preserve order.
    fn coalesce(&mut self, window: &mut Vec<(u64, Sender<String>, Vec<Op>, bool)>) {
        let mut total: usize = window.iter().map(|(_, _, ops, _)| ops.len()).sum();
        while total < self.window {
            let next = match self.pending.pop_front() {
                Some(item) => item,
                None => match self.rx.try_recv() {
                    Ok(item) => item,
                    Err(_) => break,
                },
            };
            match next {
                WorkItem::Ops {
                    id,
                    reply,
                    ops,
                    batch,
                } if total + ops.len() <= self.window => {
                    total += ops.len();
                    window.push((id, reply, ops, batch));
                }
                other => {
                    self.pending.push_front(other);
                    break;
                }
            }
        }
    }

    /// Applies one coalesced window and acks every item it covers.
    fn apply_window(&mut self, window: Vec<(u64, Sender<String>, Vec<Op>, bool)>) {
        let all_ops: Vec<Op> = window
            .iter()
            .flat_map(|(_, _, ops, _)| ops.iter().copied())
            .collect();
        let ops_before = self.ops_applied;
        let (reports, failure) = match self.net.apply_batch(&all_ops) {
            Ok(reports) => (reports, None),
            Err(e) => (Vec::new(), Some(e)),
        };
        let applied = failure.as_ref().map_or(all_ops.len(), |e| e.index);
        self.ops_applied += applied as u64;

        let mut offset = 0usize; // window-local index of the item's first op
        let mut iter = window.into_iter();
        for (id, reply, ops, batch) in iter.by_ref() {
            let end = offset + ops.len();
            if end <= applied {
                // Fully applied. On failure `apply_batch` returns only the
                // error — no reports exist for the window's applied prefix —
                // so items fully inside that prefix ack positionally.
                let line = if failure.is_none() {
                    let item_reports = &reports[offset..end];
                    if batch {
                        let acks = item_reports
                            .iter()
                            .enumerate()
                            .map(|(i, r)| batch_op_ack(ops_before + (offset + i + 1) as u64, r))
                            .collect();
                        batch_reply(id, true, ops.len(), acks)
                    } else {
                        ok_reply(id, ops_before + end as u64, &item_reports[0])
                    }
                } else if batch {
                    let acks = (0..ops.len())
                        .map(|i| positional_ack(ops_before + (offset + i + 1) as u64))
                        .collect();
                    batch_reply(id, true, ops.len(), acks)
                } else {
                    positional_reply(id, ops_before + end as u64)
                };
                let _ = reply.send(line.render());
                offset = end;
                continue;
            }
            // This item owns the failure; its applied prefix acks
            // positionally for the same reason as above.
            let error = failure.as_ref().expect("partial item implies failure");
            let kind = update_error_kind(&error.error);
            let message = error.error.to_string();
            let prefix = applied - offset; // ops of this item that applied
            let line = if batch {
                let mut acks: Vec<Json> = (0..prefix)
                    .map(|i| positional_ack(ops_before + (offset + i + 1) as u64))
                    .collect();
                acks.push(batch_op_error(kind, &message));
                for _ in prefix + 1..ops.len() {
                    acks.push(batch_op_error(
                        "skipped",
                        "an earlier op in this batch failed",
                    ));
                }
                batch_reply(id, false, prefix, acks)
            } else {
                error_reply(id, kind, &message)
            };
            let _ = reply.send(line.render());
            break;
        }
        // Items after the failing one re-queue untouched, in order, ahead
        // of anything already deferred: their ops were not applied.
        for (i, (id, reply, ops, batch)) in iter.enumerate() {
            self.pending.insert(
                i,
                WorkItem::Ops {
                    id,
                    reply,
                    ops,
                    batch,
                },
            );
        }

        self.publish_transitions(ops_before);
        if self.audit {
            self.audits += 1;
            let matches = self
                .net
                .active_violations()
                .map(|active| active == self.net.rescan())
                .unwrap_or(false);
            if !matches {
                self.mismatches += 1;
            }
        }
    }

    /// Drains the observer staging buffer and fans each transitions event
    /// out to every subscriber with the drop-with-gap-marker policy.
    fn publish_transitions(&mut self, ops_before: u64) {
        let drained: Vec<MonitorTransitions> = {
            let mut staging = self.staging.lock().unwrap();
            staging.drain(..).collect()
        };
        for transitions in drained {
            self.seq += 1;
            let line = transitions_event(self.seq, ops_before + 1, self.ops_applied, &transitions)
                .render();
            for sub in &mut self.subscribers {
                sub.deliver(&line);
            }
        }
        self.subscribers.retain(|s| s.alive);
    }

    fn query(&mut self, id: u64, reply: &Sender<String>, kind: Query) {
        let line = match kind {
            Query::WhatIf { link, check_loops } => {
                what_if_reply(id, &self.net.link_failure_impact(link, check_loops))
            }
            Query::Stats => self.stats(id),
            Query::Snapshot(path) => match &mut self.net {
                EngineNet::Plain(net) => {
                    let snap = Snapshot::of_sharded(net, self.ops_applied);
                    match snap.write_to(std::path::Path::new(&path)) {
                        Ok(()) => crate::json::obj(vec![
                            ("id", Json::int(id)),
                            ("ok", Json::Bool(true)),
                            ("path", Json::str(path)),
                            ("ops_applied", Json::int(self.ops_applied)),
                        ]),
                        Err(e) => error_reply(id, "io", &e.to_string()),
                    }
                }
                EngineNet::Durable(mgr) => match mgr.checkpoint_now() {
                    Ok(()) => crate::json::obj(vec![
                        ("id", Json::int(id)),
                        ("ok", Json::Bool(true)),
                        ("path", Json::str(mgr.dir().display().to_string())),
                        ("ops_applied", Json::int(self.ops_applied)),
                    ]),
                    Err(e) => error_reply(id, "io", &e.to_string()),
                },
            },
        };
        let _ = reply.send(line.render());
    }

    fn stats(&self, id: u64) -> Json {
        let net = self.net.sharded();
        let violations = self.net.active_violations().map_or(0, |v| v.len());
        crate::json::obj(vec![
            ("id", Json::int(id)),
            ("ok", Json::Bool(true)),
            ("ops_applied", Json::int(self.ops_applied)),
            ("rules", Json::int(net.rules().count())),
            ("atoms", Json::int(net.atom_count())),
            ("violations", Json::int(violations)),
            ("shards", Json::int(net.shard_count())),
            ("window", Json::int(self.window)),
            ("queue", Json::int(self.queue_cap)),
            ("subscribers", Json::int(self.subscribers.len())),
            ("events", Json::int(self.seq)),
            ("audits", Json::int(self.audits)),
            ("mismatches", Json::int(self.mismatches)),
            (
                "durable",
                Json::Bool(matches!(self.net, EngineNet::Durable(_))),
            ),
        ])
    }
}

impl Subscriber {
    /// Non-blocking delivery: a full buffer drops the event and counts it;
    /// once there is room again, a gap marker is delivered *before* the
    /// next event so the consumer knows its stream has a hole.
    fn deliver(&mut self, line: &str) {
        if self.dropped > 0 {
            match self.events.try_send(gap_event(self.dropped).render()) {
                Ok(()) => self.dropped = 0,
                Err(TrySendError::Full(_)) => {
                    self.dropped += 1;
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.alive = false;
                    return;
                }
            }
        }
        match self.events.try_send(line.to_string()) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => self.dropped += 1,
            Err(TrySendError::Disconnected(_)) => self.alive = false,
        }
    }
}

fn serve_tcp_connection(
    stream: TcpStream,
    shared: &Shared,
    work_tx: &SyncSender<WorkItem>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone()?);
    handle_connection(reader, stream, shared, work_tx)
}

/// Runs the per-connection protocol over any reader/writer pair (a TCP
/// stream or stdin/stdout). Requests are processed strictly in order; a
/// `subscribe` turns the connection into an event stream and stops reading.
fn handle_connection<R: BufRead, W: Write>(
    reader: R,
    mut writer: W,
    shared: &Shared,
    work_tx: &SyncSender<WorkItem>,
) -> io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&line, &shared.topology) {
            Ok(request) => request,
            Err(e) => {
                let reply = match e.id {
                    Some(id) => error_reply(id, "bad_request", &e.message),
                    None => error_reply_no_id("bad_request", &e.message),
                };
                writeln!(writer, "{}", reply.render())?;
                writer.flush()?;
                continue;
            }
        };
        let Request { id, body } = request;
        let (reply_tx, reply_rx) = mpsc::channel();
        let item = match body {
            RequestBody::Insert(rule) => WorkItem::Ops {
                id,
                reply: reply_tx,
                ops: vec![Op::Insert(rule)],
                batch: false,
            },
            RequestBody::Remove(rule_id) => WorkItem::Ops {
                id,
                reply: reply_tx,
                ops: vec![Op::Remove(rule_id)],
                batch: false,
            },
            RequestBody::Batch(ops) => WorkItem::Ops {
                id,
                reply: reply_tx,
                ops,
                batch: true,
            },
            RequestBody::WhatIf {
                src,
                dst,
                check_loops,
            } => match shared.topology.link_between(src, dst) {
                Some(link) => WorkItem::Query {
                    id,
                    reply: reply_tx,
                    kind: Query::WhatIf { link, check_loops },
                },
                None => {
                    let reply = error_reply(
                        id,
                        "unknown_link",
                        &format!("no link {} -> {}", src.0, dst.0),
                    );
                    writeln!(writer, "{}", reply.render())?;
                    writer.flush()?;
                    continue;
                }
            },
            RequestBody::Stats => WorkItem::Query {
                id,
                reply: reply_tx,
                kind: Query::Stats,
            },
            RequestBody::Snapshot(path) => WorkItem::Query {
                id,
                reply: reply_tx,
                kind: Query::Snapshot(path),
            },
            RequestBody::Subscribe { buffer, pace_ms } => {
                let cap = if buffer == 0 {
                    shared.sub_buffer
                } else {
                    buffer
                };
                let (events_tx, events_rx) = mpsc::sync_channel(cap);
                let item = WorkItem::Subscribe {
                    id,
                    reply: reply_tx,
                    events: events_tx,
                };
                if work_tx.send(item).is_err() {
                    return write_shutting_down(&mut writer, id);
                }
                let Ok(ack) = reply_rx.recv() else {
                    return write_shutting_down(&mut writer, id);
                };
                writeln!(writer, "{ack}")?;
                writer.flush()?;
                // This connection is now an event stream: pump until the
                // engine drops our sender (shutdown) or the write fails
                // (client gone). `pace_ms` artificially slows this pump —
                // the deterministic slow-consumer knob for tests.
                for event in events_rx {
                    if pace_ms > 0 {
                        thread::sleep(Duration::from_millis(pace_ms));
                    }
                    if writeln!(writer, "{event}").is_err() {
                        return Ok(());
                    }
                    writer.flush().ok();
                }
                return Ok(());
            }
            RequestBody::Shutdown => WorkItem::Shutdown {
                id,
                reply: reply_tx,
            },
        };
        // A full ingest queue blocks here — the backpressure point.
        if work_tx.send(item).is_err() {
            return write_shutting_down(&mut writer, id);
        }
        let Ok(reply) = reply_rx.recv() else {
            return write_shutting_down(&mut writer, id);
        };
        writeln!(writer, "{reply}")?;
        writer.flush()?;
    }
    Ok(())
}

/// The reply written when the engine is no longer accepting work.
fn write_shutting_down<W: Write>(writer: &mut W, id: u64) -> io::Result<()> {
    let reply = error_reply(id, "bad_request", "server is shutting down");
    writeln!(writer, "{}", reply.render())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use netmodel::ip::IpPrefix;
    use netmodel::rule::{Rule, RuleId};
    use netmodel::topology::NodeId;

    /// A monitored 1-shard engine loop over an `a -> b` topology, plus a
    /// live sender feeding its work channel. Driving [`EngineLoop`]
    /// directly makes window composition deterministic — socket-level
    /// tests can't control which requests coalesce.
    fn test_engine() -> (EngineLoop, SyncSender<WorkItem>, NodeId, LinkId) {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        for node in [a, b] {
            topo.drop_link(node);
        }
        let config = DeltaNetConfig {
            monitor_violations: true,
            ..DeltaNetConfig::default()
        };
        let mut net =
            ShardedDeltaNet::with_parallelism(topo.clone(), config, 1, Parallelism::fixed(1));
        net.enable_monitor();
        let staging: Arc<Mutex<Vec<MonitorTransitions>>> = Arc::default();
        let sink = Arc::clone(&staging);
        net.set_monitor_observer(move |t: &MonitorTransitions| {
            sink.lock().unwrap().push(t.clone());
        });
        let (tx, rx) = mpsc::sync_channel(8);
        let shared = Arc::new(Shared {
            topology: topo,
            shutdown: AtomicBool::new(false),
            sub_buffer: 4,
        });
        let engine = EngineLoop {
            net: EngineNet::Plain(net),
            rx,
            shared,
            staging,
            window: 32,
            queue_cap: 8,
            audit: false,
            ops_applied: 0,
            seq: 0,
            audits: 0,
            mismatches: 0,
            subscribers: Vec::new(),
            pending: VecDeque::new(),
        };
        (engine, tx, a, ab)
    }

    fn insert(id: u64, src: NodeId, link: LinkId) -> Op {
        let prefix: IpPrefix = format!("10.{id}.0.0/16").parse().expect("valid prefix");
        Op::Insert(Rule::forward(RuleId(id), prefix, 10, src, link))
    }

    fn json(rx: &Receiver<String>) -> Json {
        let line = rx.try_recv().expect("an ack line must be waiting");
        parse(&line).expect("ack is json")
    }

    fn is_ok(j: &Json) -> Option<bool> {
        j.get("ok").and_then(Json::as_bool)
    }

    fn at(j: &Json) -> Option<u64> {
        j.get("at").and_then(Json::as_u64)
    }

    /// Regression (review): a coalesced window where one client's request
    /// fully applies and a *later* client's op fails must ack the applied
    /// request positionally — not panic slicing the (empty) reports.
    #[test]
    fn failed_window_acks_fully_applied_items_positionally() {
        let (mut engine, _tx, a, ab) = test_engine();
        let (good_tx, good_rx) = mpsc::channel();
        let (bad_tx, bad_rx) = mpsc::channel();
        engine.apply_window(vec![
            (1, good_tx, vec![insert(1, a, ab)], false),
            (2, bad_tx, vec![Op::Remove(RuleId(999))], false),
        ]);

        let good = json(&good_rx);
        assert_eq!(is_ok(&good), Some(true), "{}", good.render());
        assert_eq!(at(&good), Some(1), "{}", good.render());
        let bad = json(&bad_rx);
        assert_eq!(is_ok(&bad), Some(false), "{}", bad.render());
        assert_eq!(
            bad.get("kind").and_then(Json::as_str),
            Some("unknown_rule"),
            "{}",
            bad.render()
        );
        assert_eq!(engine.ops_applied, 1);
        assert!(engine.pending.is_empty());
    }

    /// The batch shape of the same window: the fully-applied batch acks
    /// positionally per op, the failing batch keeps applied-prefix acks,
    /// and the request behind the failure re-queues untouched.
    #[test]
    fn failed_window_batch_acks_and_requeues_later_items() {
        let (mut engine, _tx, a, ab) = test_engine();
        let (first_tx, first_rx) = mpsc::channel();
        let (second_tx, second_rx) = mpsc::channel();
        let (third_tx, third_rx) = mpsc::channel();
        engine.apply_window(vec![
            (1, first_tx, vec![insert(1, a, ab), insert(2, a, ab)], true),
            (
                2,
                second_tx,
                vec![insert(3, a, ab), Op::Remove(RuleId(999)), insert(4, a, ab)],
                true,
            ),
            (3, third_tx, vec![insert(5, a, ab)], false),
        ]);

        let first = json(&first_rx);
        assert_eq!(is_ok(&first), Some(true), "{}", first.render());
        let acks = first.get("acks").and_then(Json::as_arr).expect("acks");
        assert_eq!(acks.len(), 2);
        assert_eq!(at(&acks[0]), Some(1));
        assert_eq!(at(&acks[1]), Some(2));

        let second = json(&second_rx);
        assert_eq!(is_ok(&second), Some(false), "{}", second.render());
        assert_eq!(second.get("applied").and_then(Json::as_u64), Some(1));
        let acks = second.get("acks").and_then(Json::as_arr).expect("acks");
        assert_eq!(at(&acks[0]), Some(3));
        assert_eq!(
            acks[1].get("kind").and_then(Json::as_str),
            Some("unknown_rule")
        );
        assert_eq!(acks[2].get("kind").and_then(Json::as_str), Some("skipped"));

        // The third request's op was not applied; it waits in `pending`
        // and acks normally (with report deltas) in its follow-up window.
        assert!(third_rx.try_recv().is_err());
        assert_eq!(engine.ops_applied, 3);
        let Some(WorkItem::Ops {
            id,
            reply,
            ops,
            batch,
        }) = engine.pending.pop_front()
        else {
            panic!("deferred request must be re-queued");
        };
        assert_eq!(id, 3);
        assert!(engine.pending.is_empty());
        engine.apply_window(vec![(id, reply, ops, batch)]);
        let third = json(&third_rx);
        assert_eq!(is_ok(&third), Some(true), "{}", third.render());
        assert_eq!(at(&third), Some(4), "{}", third.render());
        assert!(
            third.get("affected_classes").is_some(),
            "clean-window acks carry report deltas: {}",
            third.render()
        );
    }

    /// Regression (review): work the daemon already accepted — queued
    /// behind a `shutdown` request — is applied and acked before the
    /// engine exits, not silently dropped.
    #[test]
    fn shutdown_drains_the_queued_backlog_before_exiting() {
        let (engine, tx, a, ab) = test_engine();
        let (shutdown_tx, shutdown_rx) = mpsc::channel();
        let (late_tx, late_rx) = mpsc::channel();
        tx.send(WorkItem::Shutdown {
            id: 1,
            reply: shutdown_tx,
        })
        .expect("queue shutdown");
        tx.send(WorkItem::Ops {
            id: 2,
            reply: late_tx,
            ops: vec![insert(1, a, ab)],
            batch: false,
        })
        .expect("queue late op");

        // The engine must exit on its own despite `tx` staying alive.
        thread::spawn(move || engine.run())
            .join()
            .expect("engine thread");

        let bye = json(&shutdown_rx);
        assert_eq!(
            bye.get("shutting_down").and_then(Json::as_bool),
            Some(true),
            "{}",
            bye.render()
        );
        let late = json(&late_rx);
        assert_eq!(is_ok(&late), Some(true), "{}", late.render());
        assert_eq!(at(&late), Some(1), "{}", late.render());
    }
}
