//! A minimal JSON value, parser, and single-line renderer for the ndjson
//! wire protocol.
//!
//! The workspace's `serde` is an offline stub, and the bench crate's
//! [`bench::json`]-style builder only renders; the daemon also needs to
//! *parse* requests. This module implements exactly the subset the protocol
//! uses: objects, arrays, strings, integers, booleans, and null. Numbers
//! are kept as exact `i128` integers — rule ids are `u64` and a float
//! round-trip could silently corrupt them — so fractional or exponent
//! literals are rejected.
//!
//! The renderer emits one line per value with `"key": value` spacing (a
//! space after `:` and after `,`), matching the workspace's bench emitters
//! so CI can grep for exact `"key": value` fragments in daemon output.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact integer (the protocol has no fractional numbers).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience integer constructor.
    pub fn int(n: impl TryInto<i128>) -> Json {
        Json::Int(n.try_into().unwrap_or_else(|_| panic!("int out of range")))
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an exact integer, if it is one.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|n| u64::try_from(n).ok())
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value on a single line (ndjson framing — no interior
    /// newlines), with `": "` / `", "` spacing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                use std::fmt::Write as _;
                write!(out, "{n}").expect("writing to a String cannot fail");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    // Bulk-copy maximal runs that need no escaping (the common case is an
    // entirely clean string — one memcpy).
    let mut rest = s;
    while let Some(split) = rest.find(|c: char| c == '"' || c == '\\' || (c as u32) < 0x20) {
        out.push_str(&rest[..split]);
        let c = rest[split..]
            .chars()
            .next()
            .expect("split is a char boundary");
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => {
                use std::fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail");
            }
        }
        rest = &rest[split + c.len_utf8()..];
    }
    out.push_str(rest);
    out.push('"');
}

/// A shorthand for building an object literal in insertion order.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A JSON syntax error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem in the input line.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && self.bytes[start] == b'-') {
            return Err(self.err("expected digits"));
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.err("fractional numbers are not part of the protocol"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| self.err("integer out of range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-copy the run up to the next quote, escape, or control
            // byte (the input is a &str, so slicing at these ASCII bytes
            // stays on char boundaries).
            let run_start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > run_start {
                let run = std::str::from_utf8(&self.bytes[run_start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?;
                out.push_str(run);
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the protocol;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Only control bytes stop the bulk run above; JSON
                    // requires them escaped.
                    return Err(self.err("unescaped control character in string"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            // Protocol objects are small; a linear scan beats a side table.
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_spacing() {
        let v = obj(vec![
            ("id", Json::int(7u64)),
            ("op", Json::str("insert")),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let line = v.render();
        assert_eq!(line, r#"{"id": 7, "op": "insert", "flags": [true, null]}"#);
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn exact_large_integers() {
        let line = format!("{{\"id\": {}}}", u64::MAX);
        let v = parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_floats_duplicates_and_trailing() {
        assert!(parse(r#"{"x": 1.5}"#).is_err());
        assert!(parse(r#"{"x": 1e3}"#).is_err());
        assert!(parse(r#"{"x": 1, "x": 2}"#).is_err());
        assert!(parse(r#"{"x": 1} extra"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(Json::str("a\"b\nc").render(), r#""a\"b\nc""#);
    }
}
