//! # service — the Delta-net verification daemon
//!
//! The paper's setting is *real-time* verification of a stream of
//! forwarding updates; this crate turns the [`deltanet`] engine into a
//! long-running daemon for exactly that:
//!
//! * [`json`] — the minimal exact-integer JSON used on the wire.
//! * [`proto`] — the line-delimited ndjson protocol: `insert` / `remove` /
//!   `batch` / `what_if` / `snapshot` / `stats` / `subscribe` / `shutdown`
//!   requests with client ids, structured error replies reusing the
//!   engine's [`UpdateError`](netmodel::checker::UpdateError) /
//!   [`ReplayError`](netmodel::checker::ReplayError) semantics, and the
//!   violation event stream.
//! * [`server`] — the daemon: a bounded ingest queue (backpressure =
//!   blocked senders), windowed batching onto
//!   [`ShardedDeltaNet::apply_batch`](deltanet::ShardedDeltaNet::apply_batch)
//!   with applied-prefix acks on failure, violation fan-out to many
//!   subscribers with a drop-with-gap-marker slow-consumer policy (the
//!   engine never blocks on a client), and optional durability by mounting
//!   [`CheckpointManager`](deltanet::CheckpointManager) so a restart
//!   recovers and resumes the stream.
//!
//! Everything is std-only (`std::net` + threads) and the protocol is
//! transport-agnostic: the same framing runs over TCP and stdin/stdout,
//! and an async transport can slot in later without protocol changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod proto;
pub mod server;

pub use json::{obj, parse, Json, JsonError};
pub use proto::{
    batch_request, op_request, parse_request, rule_to_json, ProtoError, Request, RequestBody,
};
pub use server::{serve_stdio, CheckpointSetup, Server, ServiceConfig};
