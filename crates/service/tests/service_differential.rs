//! Differential tests for the verification daemon: the event stream and
//! final state of a live server over loopback, with interleaved clients,
//! must be bit-identical to what the offline engine (`replay --monitor`
//! semantics: a [`ShardedDeltaNet`] plus its monitor observer) computes
//! over the same ops in the acknowledged order.
//!
//! The acks' `at` field — the 1-based global count of applied ops — is the
//! daemon's serialization order, so concurrent clients' interleavings are
//! fully reconstructible and the oracle replays them exactly.

use deltanet::{
    CheckpointConfig, DeltaNetConfig, Durability, MonitorTransitions, Parallelism, ShardedDeltaNet,
};
use netmodel::ip::IpPrefix;
use netmodel::rule::{Rule, RuleId};
use netmodel::topology::{LinkId, NodeId, Topology};
use netmodel::trace::Op;
use service::json::{parse, Json};
use service::proto::{batch_request, op_request, transitions_event};
use service::server::{CheckpointSetup, Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A blocking ndjson client: one request out, one reply line back.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect to daemon");
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { reader, writer }
    }

    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(line.trim_end().to_string()),
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("write request");
        self.writer.flush().expect("flush request");
        let reply = self
            .read_line()
            .expect("daemon replies one line per request");
        parse(&reply).unwrap_or_else(|e| panic!("reply is not json ({e}): {reply}"))
    }

    /// Reads every remaining line until the daemon closes the connection
    /// (the event-stream tail of a subscriber).
    fn drain(mut self) -> Vec<String> {
        let mut lines = Vec::new();
        while let Some(line) = self.read_line() {
            lines.push(line);
        }
        lines
    }
}

fn u(j: &Json, key: &str) -> u64 {
    j.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing integer `{key}` in {}", j.render()))
}

fn ok(j: &Json) -> bool {
    j.get("ok").and_then(Json::as_bool) == Some(true)
}

fn field<'a>(j: &'a Json, key: &str) -> &'a str {
    j.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string `{key}` in {}", j.render()))
}

fn pfx(s: &str) -> IpPrefix {
    s.parse().expect("valid prefix")
}

/// A 4-node unidirectional ring: inserting one rule per hop for a prefix
/// closes a forwarding loop; any missing hop strands traffic (blackhole).
fn ring_topology() -> (Topology, Vec<NodeId>, Vec<LinkId>) {
    let mut topo = Topology::new();
    let nodes = topo.add_nodes("s", 4);
    let links = (0..4)
        .map(|i| topo.add_link(nodes[i], nodes[(i + 1) % 4]))
        .collect();
    (topo, nodes, links)
}

/// One client's op sequence: rule ids and the prefix are private to the
/// lane, so any interleaving of lanes is valid (a lane never removes
/// another lane's rules), while the violation *keys* (cycle node sets,
/// blackhole nodes) are shared — transitions genuinely depend on the
/// global order the daemon picks.
fn lane_ops(lane: u64, rounds: usize, nodes: &[NodeId], links: &[LinkId]) -> Vec<Op> {
    let prefix = pfx(&format!("10.{lane}.0.0/16"));
    let rule = |k: usize| {
        Rule::forward(
            RuleId(1000 * lane + k as u64),
            prefix,
            10,
            nodes[k],
            links[k],
        )
    };
    let mut ops = Vec::new();
    for _ in 0..rounds {
        for i in 0..4 {
            ops.push(Op::Insert(rule(i))); // ...3rd insert closes the loop
        }
        ops.push(Op::Remove(RuleId(1000 * lane + 3))); // loop breaks, s3 strands
        ops.push(Op::Insert(rule(3))); // loop re-forms
        for i in 0..4 {
            ops.push(Op::Remove(RuleId(1000 * lane + i as u64)));
        }
    }
    ops
}

/// The offline oracle: the same prepared topology (drop links for every
/// node, as the daemon creates), same engine config, observer attached —
/// exactly the monitored engine behind `replay --monitor`.
fn oracle(
    topo: &Topology,
    shards: usize,
) -> (ShardedDeltaNet, Arc<Mutex<Vec<MonitorTransitions>>>) {
    let mut prepared = topo.clone();
    let nodes: Vec<NodeId> = prepared.nodes().collect();
    for node in nodes {
        prepared.drop_link(node);
    }
    let config = DeltaNetConfig {
        monitor_violations: true,
        ..DeltaNetConfig::default()
    };
    let mut net =
        ShardedDeltaNet::with_parallelism(prepared, config, shards, Parallelism::fixed(1));
    net.enable_monitor();
    let sink: Arc<Mutex<Vec<MonitorTransitions>>> = Arc::default();
    let observer_sink = Arc::clone(&sink);
    net.set_monitor_observer(move |t: &MonitorTransitions| {
        observer_sink.lock().unwrap().push(t.clone());
    });
    (net, sink)
}

/// Replays `order` (the daemon's acked serialization) per-op through the
/// oracle and renders the exact event lines a window=1 daemon must emit,
/// plus the final active-violation count.
fn expected_stream(topo: &Topology, shards: usize, order: &[(u64, Op)]) -> (Vec<String>, usize) {
    let (mut net, sink) = oracle(topo, shards);
    let mut lines = Vec::new();
    let mut seq = 0u64;
    for (at, op) in order {
        net.apply_batch(std::slice::from_ref(op))
            .expect("oracle replays the acked order cleanly");
        for t in sink.lock().unwrap().drain(..) {
            seq += 1;
            lines.push(transitions_event(seq, *at, *at, &t).render());
        }
    }
    let violations = net.active_violations().map_or(0, |v| v.len());
    (lines, violations)
}

/// Sorts per-client `(at, op)` acks into the daemon's global order and
/// checks the positions are exactly `1..=n` — no holes, no duplicates.
fn global_order(mut acked: Vec<(u64, Op)>) -> Vec<(u64, Op)> {
    acked.sort_by_key(|(at, _)| *at);
    let ats: Vec<u64> = acked.iter().map(|(at, _)| *at).collect();
    assert_eq!(
        ats,
        (1..=acked.len() as u64).collect::<Vec<_>>(),
        "acked `at` positions must form the exact global apply order"
    );
    acked
}

fn spawn_subscriber(addr: SocketAddr, extra: &str) -> thread::JoinHandle<Vec<String>> {
    let mut client = Client::connect(addr);
    let ack = client.request(&format!("{{\"id\": 1, \"op\": \"subscribe\"{extra}}}"));
    assert!(
        ack.get("subscribed").and_then(Json::as_bool) == Some(true),
        "subscribe ack: {}",
        ack.render()
    );
    thread::spawn(move || client.drain())
}

#[test]
fn per_op_stream_matches_offline_monitor_across_three_subscribers() {
    let (topo, nodes, links) = ring_topology();
    let config = ServiceConfig {
        shards: 2,
        window: 1, // per-op windows: the event stream is fully predictable
        audit: true,
        ..ServiceConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", topo.clone(), config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || server.run());

    // Subscribers register before any op, so all of them must see the
    // whole stream.
    let subscribers: Vec<_> = (0..3).map(|_| spawn_subscriber(addr, "")).collect();

    // Three clients interleave their lanes over separate connections.
    let workers: Vec<_> = (0..3u64)
        .map(|lane| {
            let ops = lane_ops(lane, 2, &nodes, &links);
            let topo = topo.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut acked = Vec::new();
                for (i, op) in ops.iter().enumerate() {
                    let reply = client.request(&op_request(i as u64, op, &topo).render());
                    assert!(ok(&reply), "op rejected: {}", reply.render());
                    acked.push((u(&reply, "at"), *op));
                }
                acked
            })
        })
        .collect();
    let acked: Vec<(u64, Op)> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    let order = global_order(acked);
    let total = order.len() as u64;

    let (expected, oracle_violations) = expected_stream(&topo, 2, &order);
    assert!(
        !expected.is_empty(),
        "the flap trace must produce transitions"
    );

    let mut control = Client::connect(addr);
    let stats = control.request(r#"{"id": 90, "op": "stats"}"#);
    assert!(ok(&stats), "{}", stats.render());
    assert_eq!(u(&stats, "ops_applied"), total);
    assert_eq!(u(&stats, "violations"), oracle_violations as u64);
    assert_eq!(u(&stats, "subscribers"), 3);
    assert!(u(&stats, "audits") >= 1, "audit mode must have run");
    assert_eq!(
        u(&stats, "mismatches"),
        0,
        "incremental monitor diverged from full rescans"
    );
    assert_eq!(u(&stats, "events"), expected.len() as u64);

    let bye = control.request(r#"{"id": 91, "op": "shutdown"}"#);
    assert!(bye.get("shutting_down").and_then(Json::as_bool) == Some(true));
    server_thread
        .join()
        .expect("server thread")
        .expect("clean shutdown");

    for (i, sub) in subscribers.into_iter().enumerate() {
        let lines = sub.join().expect("subscriber thread");
        assert_eq!(
            lines, expected,
            "subscriber {i} diverged from the offline monitor"
        );
    }
}

#[test]
fn windowed_batches_converge_with_zero_audit_mismatches() {
    let (topo, nodes, links) = ring_topology();
    let config = ServiceConfig {
        shards: 2,
        window: 16, // several batch items coalesce into one apply_batch
        audit: true,
        ..ServiceConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", topo.clone(), config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || server.run());

    let subscriber = spawn_subscriber(addr, "");

    let workers: Vec<_> = (0..3u64)
        .map(|lane| {
            let ops = lane_ops(lane, 2, &nodes, &links);
            let topo = topo.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut acked = Vec::new();
                for (i, chunk) in ops.chunks(5).enumerate() {
                    let reply = client.request(&batch_request(i as u64, chunk, &topo).render());
                    assert!(ok(&reply), "batch rejected: {}", reply.render());
                    assert_eq!(u(&reply, "applied"), chunk.len() as u64);
                    let acks = reply
                        .get("acks")
                        .and_then(Json::as_arr)
                        .expect("acks array");
                    assert_eq!(acks.len(), chunk.len());
                    let first = u(&acks[0], "at");
                    for (k, (ack, op)) in acks.iter().zip(chunk).enumerate() {
                        // A batch item is applied whole, so its ops take
                        // consecutive global positions.
                        assert_eq!(u(ack, "at"), first + k as u64, "{}", reply.render());
                        acked.push((u(ack, "at"), *op));
                    }
                }
                acked
            })
        })
        .collect();
    let acked: Vec<(u64, Op)> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    let order = global_order(acked);
    let total = order.len() as u64;

    // Event boundaries depend on how items coalesced, but the final state
    // must match an oracle replay of the acked order exactly.
    let (_, oracle_violations) = expected_stream(&topo, 2, &order);

    let mut control = Client::connect(addr);
    let stats = control.request(r#"{"id": 90, "op": "stats"}"#);
    assert_eq!(u(&stats, "ops_applied"), total);
    assert_eq!(u(&stats, "violations"), oracle_violations as u64);
    assert_eq!(
        u(&stats, "mismatches"),
        0,
        "incremental monitor diverged from full rescans"
    );
    let bye = control.request(r#"{"id": 91, "op": "shutdown"}"#);
    assert!(ok(&bye));
    server_thread
        .join()
        .expect("server thread")
        .expect("clean shutdown");

    // The windowed event stream is still well-formed: seq is dense, op
    // ranges are ordered and disjoint, and every event carries a change.
    let lines = subscriber.join().expect("subscriber thread");
    let mut prev_last = 0u64;
    for (i, line) in lines.iter().enumerate() {
        let event = parse(line).expect("event json");
        assert_eq!(field(&event, "event"), "transitions");
        assert_eq!(u(&event, "seq"), i as u64 + 1, "{line}");
        let first = u(&event, "first_op");
        let last = u(&event, "last_op");
        assert!(
            first > prev_last && first <= last && last <= total,
            "{line}"
        );
        let appeared = event
            .get("appeared")
            .and_then(Json::as_arr)
            .expect("appeared");
        let resolved = event
            .get("resolved")
            .and_then(Json::as_arr)
            .expect("resolved");
        assert!(!appeared.is_empty() || !resolved.is_empty(), "{line}");
        prev_last = last;
    }
}

#[test]
fn mid_batch_failure_acks_applied_prefix_and_daemon_continues() {
    let (topo, nodes, links) = ring_topology();
    let server = Server::bind("127.0.0.1:0", topo.clone(), ServiceConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || server.run());

    let prefix = pfx("10.0.0.0/8");
    let r1 = Op::Insert(Rule::forward(RuleId(1), prefix, 10, nodes[0], links[0]));
    let bad = Op::Remove(RuleId(999)); // never inserted
    let r2 = Op::Insert(Rule::forward(RuleId(2), prefix, 10, nodes[1], links[1]));

    let mut client = Client::connect(addr);
    let reply = client.request(&batch_request(7, &[r1, bad, r2], &topo).render());
    assert!(!ok(&reply), "{}", reply.render());
    assert_eq!(u(&reply, "applied"), 1, "{}", reply.render());
    let acks = reply
        .get("acks")
        .and_then(Json::as_arr)
        .expect("acks array");
    assert_eq!(acks.len(), 3);
    assert!(
        ok(&acks[0]),
        "prefix op must be acked applied: {}",
        reply.render()
    );
    assert_eq!(u(&acks[0], "at"), 1);
    assert_eq!(field(&acks[1], "kind"), "unknown_rule");
    assert_eq!(field(&acks[2], "kind"), "skipped");

    // The applied prefix is real state and the daemon is not poisoned:
    // the op behind the failure can be resubmitted and lands at position 2.
    let reply = client.request(&op_request(8, &r2, &topo).render());
    assert!(ok(&reply), "{}", reply.render());
    assert_eq!(u(&reply, "at"), 2);
    let stats = client.request(r#"{"id": 9, "op": "stats"}"#);
    assert_eq!(u(&stats, "ops_applied"), 2);
    assert_eq!(u(&stats, "rules"), 2);
    let bye = client.request(r#"{"id": 10, "op": "shutdown"}"#);
    assert!(ok(&bye));
    server_thread
        .join()
        .expect("server thread")
        .expect("clean shutdown");
}

#[test]
fn slow_subscriber_gaps_but_never_stalls_the_engine() {
    // One link a -> b; flapping the single rule toggles the blackhole at b,
    // so every op emits exactly one transitions event.
    let mut topo = Topology::new();
    let a = topo.add_node("a");
    let b = topo.add_node("b");
    let ab = topo.add_link(a, b);
    let config = ServiceConfig {
        shards: 1,
        window: 1,
        ..ServiceConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", topo.clone(), config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || server.run());

    const PACE_MS: u64 = 50;
    const BURST: u64 = 20;
    const TAIL: u64 = 3;
    let fast = spawn_subscriber(addr, "");
    // A 2-slot buffer + a 50ms-per-line pump: the deterministic slow
    // consumer. (Two slots, not one: after a drop episode the gap marker
    // and the next event are sent back-to-back, and both must fit for the
    // stream to stay accounted.)
    let slow = spawn_subscriber(addr, &format!(", \"buffer\": 2, \"pace_ms\": {PACE_MS}"));

    let rule = Rule::forward(RuleId(1), pfx("10.0.0.0/8"), 10, a, ab);
    let flap = |i: u64| {
        if i % 2 == 0 {
            Op::Insert(rule)
        } else {
            Op::Remove(RuleId(1))
        }
    };
    let mut client = Client::connect(addr);
    let mut order = Vec::new();
    let start = Instant::now();
    for i in 0..BURST {
        let reply = client.request(&op_request(i, &flap(i), &topo).render());
        assert!(ok(&reply), "{}", reply.render());
        order.push((u(&reply, "at"), flap(i)));
    }
    let elapsed = start.elapsed();
    // Delivering the burst through the slow pump takes >= BURST * PACE_MS;
    // the acks must come back long before that, or the engine was stalled
    // behind the subscriber.
    assert!(
        elapsed < Duration::from_millis(BURST * PACE_MS / 2),
        "applies stalled behind the slow subscriber: {elapsed:?}"
    );

    // Trailing paced ops: by now the slow pump has drained its buffer, so
    // the pending gap marker (then the fresh events) can be delivered.
    for i in BURST..BURST + TAIL {
        thread::sleep(Duration::from_millis(300));
        let reply = client.request(&op_request(i, &flap(i), &topo).render());
        assert!(ok(&reply), "{}", reply.render());
        order.push((u(&reply, "at"), flap(i)));
    }
    let order = global_order(order);
    let total = order.len() as u64;

    let bye = client.request(r#"{"id": 99, "op": "shutdown"}"#);
    assert!(ok(&bye));
    server_thread
        .join()
        .expect("server thread")
        .expect("clean shutdown");

    // The fast subscriber saw the full oracle stream, untouched by its
    // slow peer.
    let (expected, _) = expected_stream(&topo, 1, &order);
    assert_eq!(
        expected.len() as u64,
        total,
        "every flap op emits one event"
    );
    assert_eq!(fast.join().expect("fast subscriber"), expected);

    // The slow subscriber's stream has a hole — and says so: delivered
    // events plus gap-marker drop counts account for every event emitted.
    let slow_lines = slow.join().expect("slow subscriber");
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut gaps = 0u64;
    for line in &slow_lines {
        let event = parse(line).expect("event json");
        match field(&event, "event") {
            "transitions" => delivered += 1,
            "gap" => {
                gaps += 1;
                dropped += u(&event, "dropped");
            }
            other => panic!("unexpected event kind {other}: {line}"),
        }
    }
    assert!(
        gaps >= 1,
        "slow subscriber never saw a gap marker: {slow_lines:?}"
    );
    assert!(delivered < total, "slow subscriber somehow kept up");
    assert_eq!(
        delivered + dropped,
        total,
        "gap markers must account exactly for the dropped events: {slow_lines:?}"
    );
}

#[test]
fn durable_daemon_recovers_and_resumes_the_stream() {
    let (topo, nodes, links) = ring_topology();
    let prefix = pfx("10.0.0.0/8");
    let dir = std::env::temp_dir().join(format!("deltanet-service-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let config = || ServiceConfig {
        shards: 2,
        window: 1,
        checkpoint: Some(CheckpointSetup {
            dir: dir.clone(),
            config: CheckpointConfig {
                every_ops: 8,
                retain: 2,
                durability: Durability::FsyncPerBatch,
            },
        }),
        ..ServiceConfig::default()
    };

    // First life: close a forwarding loop, then shut down cleanly.
    let server = Server::bind("127.0.0.1:0", topo.clone(), config()).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || server.run());
    let mut client = Client::connect(addr);
    for i in 0..4 {
        let op = Op::Insert(Rule::forward(
            RuleId(i),
            prefix,
            10,
            nodes[i as usize],
            links[i as usize],
        ));
        let reply = client.request(&op_request(i, &op, &topo).render());
        assert!(ok(&reply), "{}", reply.render());
        assert_eq!(u(&reply, "at"), i + 1);
    }
    let stats = client.request(r#"{"id": 80, "op": "stats"}"#);
    assert_eq!(u(&stats, "ops_applied"), 4);
    assert_eq!(
        u(&stats, "violations"),
        1,
        "the loop is live: {}",
        stats.render()
    );
    assert!(stats.get("durable").and_then(Json::as_bool) == Some(true));
    let bye = client.request(r#"{"id": 81, "op": "shutdown"}"#);
    assert!(ok(&bye));
    server_thread
        .join()
        .expect("server thread")
        .expect("clean shutdown");

    // Second life: the daemon recovers the checkpoint dir, the loop is
    // still active, and the op counter resumes where it left off.
    let server = Server::bind("127.0.0.1:0", topo.clone(), config()).expect("re-bind");
    let addr = server.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || server.run());
    let subscriber = spawn_subscriber(addr, "");
    let mut client = Client::connect(addr);
    let stats = client.request(r#"{"id": 82, "op": "stats"}"#);
    assert_eq!(u(&stats, "ops_applied"), 4, "recovery resumes the op count");
    assert_eq!(u(&stats, "violations"), 1, "the loop survived the restart");
    let op = Op::Remove(RuleId(3));
    let reply = client.request(&op_request(83, &op, &topo).render());
    assert!(ok(&reply), "{}", reply.render());
    assert_eq!(u(&reply, "at"), 5, "positions continue across the restart");
    let bye = client.request(r#"{"id": 84, "op": "shutdown"}"#);
    assert!(ok(&bye));
    server_thread
        .join()
        .expect("server thread")
        .expect("clean shutdown");

    // The post-restart event covers exactly the resumed position: the loop
    // resolves and the stranded traffic at s3 surfaces.
    let lines = subscriber.join().expect("subscriber thread");
    assert_eq!(lines.len(), 1, "{lines:?}");
    let event = parse(&lines[0]).expect("event json");
    assert_eq!(u(&event, "first_op"), 5);
    assert_eq!(u(&event, "last_op"), 5);
    // seq resumes from the recovered op count (4) — an upper bound on any
    // seq the first life issued — so it stays monotone across the restart.
    assert_eq!(u(&event, "seq"), 5, "{lines:?}");
    let appeared = event
        .get("appeared")
        .and_then(Json::as_arr)
        .expect("appeared");
    let resolved = event
        .get("resolved")
        .and_then(Json::as_arr)
        .expect("resolved");
    assert!(
        appeared
            .iter()
            .any(|k| k.as_str().is_some_and(|s| s.contains("blackhole"))),
        "{lines:?}"
    );
    assert!(
        resolved
            .iter()
            .any(|k| k.as_str().is_some_and(|s| s.contains("forwarding loop"))),
        "{lines:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
