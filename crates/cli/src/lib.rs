//! # deltanet-cli — library backing the `deltanet` command-line tool
//!
//! The binary (`src/main.rs`) is a thin wrapper over this library so that
//! every command is unit-testable:
//!
//! * [`topo_text`] — a line-oriented text format for topologies, the
//!   companion of [`netmodel::trace`]'s trace format, so that datasets can
//!   be written to disk and replayed elsewhere.
//! * [`args`] — dependency-free command-line parsing.
//! * [`commands`] — the `generate`, `replay`, `whatif`, and `audit`
//!   commands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod topo_text;
