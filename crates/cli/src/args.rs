//! Dependency-free command-line argument parsing.
//!
//! The tool intentionally avoids an argument-parsing crate: the grammar is
//! tiny (`deltanet <command> [--flag value]...`), and keeping it hand-rolled
//! keeps the dependency list identical to the library crates'.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: the sub-command name plus `--key value` options
/// and bare `--switch` flags.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The sub-command (first positional argument).
    pub command: String,
    /// `--key value` pairs.
    pub options: HashMap<String, String>,
    /// Bare `--switch` flags.
    pub flags: Vec<String>,
}

/// Errors produced while parsing the command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No sub-command was given.
    MissingCommand,
    /// A positional argument appeared where an option was expected.
    UnexpectedPositional(String),
    /// A required option is missing.
    MissingOption(&'static str),
    /// An option has an invalid value.
    InvalidValue {
        /// The option name.
        option: String,
        /// The offending value.
        value: String,
        /// What would have been accepted.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing command; try `deltanet help`"),
            ArgError::UnexpectedPositional(p) => write!(f, "unexpected argument `{p}`"),
            ArgError::MissingOption(o) => write!(f, "missing required option --{o}"),
            ArgError::InvalidValue {
                option,
                value,
                expected,
            } => write!(
                f,
                "invalid value `{value}` for --{option} (expected {expected})"
            ),
        }
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut iter = args.into_iter().peekable();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::UnexpectedPositional(command));
        }
        let mut parsed = ParsedArgs {
            command,
            ..Default::default()
        };
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    parsed.options.insert(key.to_string(), value.to_string());
                } else if iter.peek().is_some_and(|next| !next.starts_with("--")) {
                    parsed
                        .options
                        .insert(name.to_string(), iter.next().unwrap());
                } else {
                    parsed.flags.push(name.to_string());
                }
            } else {
                return Err(ArgError::UnexpectedPositional(arg));
            }
        }
        Ok(parsed)
    }

    /// The value of a required option.
    pub fn require(&self, name: &'static str) -> Result<&str, ArgError> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or(ArgError::MissingOption(name))
    }

    /// The value of an optional option, with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.options
            .get(name)
            .map(String::as_str)
            .unwrap_or(default)
    }

    /// Whether a bare flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Parses an optional `--<name> <usize>` option.
pub fn parse_usize_option(args: &ParsedArgs, name: &str) -> Result<Option<usize>, ArgError> {
    match args.options.get(name) {
        None => Ok(None),
        Some(value) => value
            .parse::<usize>()
            .map(Some)
            .map_err(|_| ArgError::InvalidValue {
                option: name.to_string(),
                value: value.clone(),
                expected: "a non-negative integer",
            }),
    }
}

/// Parses a `--durability` value (defaults to `flush`, the write-per-batch
/// no-fsync level the persistence layer also defaults to).
pub fn parse_durability(args: &ParsedArgs) -> Result<deltanet::Durability, ArgError> {
    let value = args.get_or("durability", "flush");
    value.parse().map_err(|_| ArgError::InvalidValue {
        option: "durability".to_string(),
        value: value.to_string(),
        expected: "buffered | flush | fsync",
    })
}

/// Parses a `--fields` value: a comma-separated list of fields, primary
/// first, each either `name:width` or a bare width or a conventional name
/// with its default width (`dst` = 32, `src` = 32, `dport` = 16). Examples:
/// `--fields dst,src:8`, `--fields 32,8,4`, `--fields dst,src,dport`.
/// Returns `None` when the option is absent (single-field default).
pub fn parse_fields(args: &ParsedArgs) -> Result<Option<Vec<u8>>, ArgError> {
    let Some(value) = args.options.get("fields") else {
        return Ok(None);
    };
    let invalid = |expected: &'static str| ArgError::InvalidValue {
        option: "fields".to_string(),
        value: value.clone(),
        expected,
    };
    let mut widths = Vec::new();
    for item in value.split(',') {
        let width_str = match item.split_once(':') {
            Some((_name, w)) => w,
            None => item,
        };
        let width = match width_str.parse::<u8>() {
            Ok(w) => w,
            Err(_) => match item {
                "dst" | "src" => 32,
                "dport" | "sport" => 16,
                _ => return Err(invalid("field items like dst, src:8, or a bit width")),
            },
        };
        if width == 0 || width > 127 {
            return Err(invalid("field widths between 1 and 127 bits"));
        }
        if !widths.is_empty() && width > netmodel::header::MAX_SECONDARY_WIDTH {
            return Err(invalid("secondary field widths of at most 63 bits"));
        }
        widths.push(width);
    }
    let max = 1 + netmodel::header::MAX_SECONDARY_FIELDS;
    if widths.is_empty() || widths.len() > max {
        return Err(invalid("between 1 and 3 fields, primary first"));
    }
    Ok(Some(widths))
}

/// Parses a `--scale` value.
pub fn parse_scale(args: &ParsedArgs) -> Result<workloads::ScaleProfile, ArgError> {
    match args.get_or("scale", "tiny") {
        "tiny" => Ok(workloads::ScaleProfile::Tiny),
        "small" => Ok(workloads::ScaleProfile::Small),
        "medium" => Ok(workloads::ScaleProfile::Medium),
        other => Err(ArgError::InvalidValue {
            option: "scale".to_string(),
            value: other.to_string(),
            expected: "tiny | small | medium",
        }),
    }
}

/// Parses a `--dataset` value.
pub fn parse_dataset(args: &ParsedArgs) -> Result<workloads::DatasetId, ArgError> {
    use workloads::DatasetId::*;
    match args.require("dataset")?.to_ascii_lowercase().as_str() {
        "berkeley" => Ok(Berkeley),
        "inet" => Ok(Inet),
        "rf1755" | "rf-1755" => Ok(Rf1755),
        "rf3257" | "rf-3257" => Ok(Rf3257),
        "rf6461" | "rf-6461" => Ok(Rf6461),
        "airtel1" | "airtel-1" => Ok(Airtel1),
        "airtel2" | "airtel-2" => Ok(Airtel2),
        "4switch" | "fourswitch" => Ok(FourSwitch),
        "churn" => Ok(Churn),
        other => Err(ArgError::InvalidValue {
            option: "dataset".to_string(),
            value: other.to_string(),
            expected:
                "berkeley | inet | rf1755 | rf3257 | rf6461 | airtel1 | airtel2 | 4switch | churn",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, ArgError> {
        ParsedArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let p = parse(&[
            "replay",
            "--topo",
            "a.topo",
            "--checker=veriflow",
            "--loops",
        ])
        .unwrap();
        assert_eq!(p.command, "replay");
        assert_eq!(p.require("topo").unwrap(), "a.topo");
        assert_eq!(p.get_or("checker", "deltanet"), "veriflow");
        assert!(p.has_flag("loops"));
        assert!(!p.has_flag("quiet"));
        assert_eq!(p.get_or("missing", "dflt"), "dflt");
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::MissingCommand);
        assert!(matches!(
            parse(&["--oops"]).unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
        assert!(matches!(
            parse(&["replay", "stray"]).unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
        let p = parse(&["replay"]).unwrap();
        assert_eq!(
            p.require("topo").unwrap_err(),
            ArgError::MissingOption("topo")
        );
    }

    #[test]
    fn scale_and_dataset_parsing() {
        let p = parse(&["generate", "--dataset", "rf1755", "--scale", "small"]).unwrap();
        assert_eq!(parse_dataset(&p).unwrap(), workloads::DatasetId::Rf1755);
        assert_eq!(parse_scale(&p).unwrap(), workloads::ScaleProfile::Small);
        let p = parse(&["generate", "--dataset", "nope"]).unwrap();
        assert!(parse_dataset(&p).is_err());
        let p = parse(&["generate", "--dataset", "inet", "--scale", "huge"]).unwrap();
        assert!(parse_scale(&p).is_err());
        // Defaults to tiny when --scale is absent.
        let p = parse(&["generate", "--dataset", "inet"]).unwrap();
        assert_eq!(parse_scale(&p).unwrap(), workloads::ScaleProfile::Tiny);
    }

    #[test]
    fn fields_parsing() {
        // Absent → None (single-field default shape).
        let p = parse(&["replay"]).unwrap();
        assert_eq!(parse_fields(&p).unwrap(), None);
        // Named fields with explicit or default widths, and bare widths.
        let p = parse(&["replay", "--fields", "dst,src:8"]).unwrap();
        assert_eq!(parse_fields(&p).unwrap(), Some(vec![32, 8]));
        let p = parse(&["replay", "--fields", "dst,src,dport"]).unwrap();
        assert_eq!(parse_fields(&p).unwrap(), Some(vec![32, 32, 16]));
        let p = parse(&["replay", "--fields", "8,6,4"]).unwrap();
        assert_eq!(parse_fields(&p).unwrap(), Some(vec![8, 6, 4]));
        // Too many fields, unknown names, and bad widths are rejected —
        // including secondary widths past the 63-bit inline-bound cap.
        for bad in [
            "32,8,4,2",
            "dst,vlan",
            "dst,src:0",
            "dst,src:200",
            "dst,src:64",
        ] {
            let p = parse(&["replay", "--fields", bad]).unwrap();
            assert!(parse_fields(&p).is_err(), "accepted --fields {bad}");
        }
    }

    #[test]
    fn durability_parsing() {
        use deltanet::Durability;
        let p = parse(&["replay", "--durability", "fsync"]).unwrap();
        assert_eq!(parse_durability(&p).unwrap(), Durability::FsyncPerBatch);
        let p = parse(&["replay", "--durability", "buffered"]).unwrap();
        assert_eq!(parse_durability(&p).unwrap(), Durability::Buffered);
        // Defaults to flush when absent.
        let p = parse(&["replay"]).unwrap();
        assert_eq!(parse_durability(&p).unwrap(), Durability::FlushPerBatch);
        let p = parse(&["replay", "--durability", "turbo"]).unwrap();
        assert!(parse_durability(&p).is_err());
    }

    #[test]
    fn usize_option_parsing() {
        let p = parse(&["replay", "--shards", "4"]).unwrap();
        assert_eq!(parse_usize_option(&p, "shards").unwrap(), Some(4));
        assert_eq!(parse_usize_option(&p, "batch").unwrap(), None);
        let p = parse(&["replay", "--shards", "many"]).unwrap();
        assert!(parse_usize_option(&p, "shards").is_err());
    }

    #[test]
    fn error_display() {
        assert!(ArgError::MissingCommand.to_string().contains("help"));
        assert!(ArgError::MissingOption("topo")
            .to_string()
            .contains("--topo"));
    }
}
