//! The `deltanet` sub-commands.
//!
//! Every command is a pure function from parsed arguments (plus the
//! filesystem) to a report string, so the binary stays a two-line wrapper
//! and the behaviour is unit-testable.

use crate::args::{
    parse_dataset, parse_durability, parse_fields, parse_scale, parse_usize_option, ArgError,
    ParsedArgs,
};
use crate::topo_text;
use deltanet::persist::{self, RecoveryPolicy, TornTail};
use deltanet::{
    blackholes, CheckpointConfig, CheckpointManager, DeltaLog, DeltaNet, DeltaNetConfig, FsBackend,
    LoggedNet, Parallelism, PersistError, PersistNet, ShardedDeltaNet, Snapshot, ViolationKey,
};
use netmodel::checker::{Checker, InvariantViolation};
use netmodel::interval::Interval;
use netmodel::ip::format_field;
use netmodel::topology::Topology;
use netmodel::trace::{Op, Trace};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;
use std::time::Instant;
use veriflow_ri::{VeriflowConfig, VeriflowRi};

/// Reclaimable-bound threshold used by a bare `--compact` flag (without an
/// explicit value).
const DEFAULT_COMPACT_THRESHOLD: usize = 1024;

/// Errors produced by a command.
#[derive(Debug)]
pub enum CommandError {
    /// Bad command-line arguments.
    Args(ArgError),
    /// A file could not be read or written.
    Io(std::io::Error),
    /// A topology or trace file failed to parse.
    Parse(String),
    /// Any other user-facing error.
    Other(String),
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::Args(e) => write!(f, "{e}"),
            CommandError::Io(e) => write!(f, "i/o error: {e}"),
            CommandError::Parse(e) => write!(f, "{e}"),
            CommandError::Other(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<ArgError> for CommandError {
    fn from(e: ArgError) -> Self {
        CommandError::Args(e)
    }
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError::Io(e)
    }
}

impl From<PersistError> for CommandError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(io) => CommandError::Io(io),
            other => CommandError::Other(other.to_string()),
        }
    }
}

/// The help text.
pub fn help() -> String {
    "deltanet — real-time data-plane verification using atoms (NSDI 2017)\n\
     \n\
     USAGE: deltanet <command> [options]\n\
     \n\
     COMMANDS\n\
       generate  --dataset <name> [--scale tiny|small|medium] --out <dir>\n\
                 Generate one of the eight evaluation datasets (or the flapping-prefix\n\
                 `churn` workload) as <name>.topo + <name>.trace\n\
       replay    --topo <file> --trace <file> [--checker deltanet|veriflow] [--no-loops]\n\
                 [--compact [<threshold>]] [--json <file>] [--shards <n>] [--batch <w>]\n\
                 [--workers <n>] [--check blackholes] [--monitor] [--fields <spec>]\n\
                 [--from-snapshot <file>] [--log <file> [--durability buffered|flush|fsync]]\n\
                 [--checkpoint <dir> [--checkpoint-every <n>] [--retain <n>]]\n\
                 Replay a trace through a checker and print Table-3 style statistics;\n\
                 with --json, also write them machine-readable (BENCH_*.json shape).\n\
                 --compact enables automatic atom compaction (deltanet only): a removal\n\
                 leaving >= <threshold> reclaimable bounds (default 1024) triggers a pass.\n\
                 --shards partitions the address space across <n> independent engines\n\
                 (deltanet only); with --batch, updates apply in windows of <w> with the\n\
                 per-shard groups running concurrently (--workers / DELTANET_WORKERS\n\
                 caps the threads). --check blackholes audits the final data plane for\n\
                 blackholes after the replay. --monitor (deltanet only) maintains the\n\
                 live loop+blackhole violation set incrementally (multi-field planes\n\
                 repair per touched slice), streams appeared/resolved transitions per\n\
                 trace op, and audits the maintained state against an untimed full\n\
                 rescan after every op (per window when batched); the report and\n\
                 --json carry the cross-check and mismatch counts.\n\
                 --fields declares a multi-field header space (deltanet only), primary\n\
                 field first: e.g. --fields dst,src:8 verifies a dst x src plane with an\n\
                 8-bit source axis (named fields default to dst/src 32 bits, dport 16;\n\
                 bare widths also work: --fields 32,8). Traces may then constrain\n\
                 secondary fields per rule; single-field traces replay unchanged.\n\
                 --from-snapshot restores a saved snapshot and replays the trace on top\n\
                 of it (deltanet only; the engine shape and config come from the\n\
                 snapshot, so --shards/--compact cannot be combined with it). --log\n\
                 appends every successfully applied op to a binary delta log; on a\n\
                 mid-trace failure the log holds exactly the applied prefix, so\n\
                 `snapshot --load --log` recovery reproduces the post-failure state.\n\
                 Malformed operations (unknown rule removal, duplicate insert) are\n\
                 reported with their line position instead of crashing the replay.\n\
                 --durability picks how hard each batch is pushed to disk: buffered\n\
                 (userspace only, synced at exit), flush (write, no fsync — default),\n\
                 fsync (write + fsync; an acknowledged batch survives power loss).\n\
                 --checkpoint replays through an auto-snapshotting checkpoint dir\n\
                 instead of a flat log: the log rotates and a snapshot is written\n\
                 every --checkpoint-every ops (default 1024), keeping --retain\n\
                 snapshots (default 2), so recovery time stays bounded\n\
       snapshot  --topo <file> --trace <file> --save <file> [--shards <n>] [--monitor]\n\
                 [--log <file>]\n\
                 Replay the trace and save its final engine state as a checksummed\n\
                 binary snapshot; with --log, also write the ops to a delta log\n\
                 (together they form a recovery pair)\n\
       snapshot  --topo <file> --load <file> [--log <file>] [--repair-tail]\n\
                 Restore a snapshot and print its state; with --log, recover by\n\
                 replaying the log tail past the snapshot's position. --repair-tail\n\
                 truncates a torn log tail to the longest valid checksummed prefix\n\
                 instead of failing\n\
       snapshot  --topo <file> --log <file> --at <n> [--load <file>]\n\
                 Time-travel: the violations active after exactly n logged ops,\n\
                 replayed forward from the snapshot when one is given\n\
       recover   --topo <file> (--snapshot <file> --log <file> | --dir <ckpt-dir>)\n\
                 [--repair-tail]\n\
                 Recover engine state after a crash. With --snapshot/--log, restore\n\
                 the snapshot and replay the log tail; with --dir, recover from a\n\
                 checkpoint directory (newest usable snapshot + log segments, falling\n\
                 back past corrupt snapshots). The default policy is strict: a torn\n\
                 or corrupt log record fails, naming the byte offset. --repair-tail\n\
                 instead truncates the torn tail and reports what was salvaged\n\
       whatif    --topo <file> --trace <file> --src <node-id> --dst <node-id> [--loops]\n\
                 Load the trace's final data plane and analyse the failure of link src->dst\n\
       audit     --topo <file> --trace <file> [--fields <spec>]\n\
                 Load the final data plane and report all forwarding loops and blackholes\n\
       serve     --topo <file> [--port <p>] [--port-file <file>] [--stdin] [--shards <n>]\n\
                 [--window <w>] [--queue <n>] [--sub-buffer <n>] [--workers <n>] [--audit]\n\
                 [--no-loops] [--checkpoint <dir> [--checkpoint-every <n>] [--retain <n>]\n\
                 [--durability buffered|flush|fsync]]\n\
                 Run the verification daemon: line-delimited ndjson requests (insert/\n\
                 remove/batch/what_if/snapshot/stats/subscribe/shutdown) over TCP (or\n\
                 stdin/stdout with --stdin), windowed batching with a bounded ingest\n\
                 queue for backpressure, and live violation subscriptions. The monitor\n\
                 is always on; --audit cross-checks it against a full rescan per window\n\
                 (counted in stats as audits/mismatches). --port 0 (default) picks an\n\
                 ephemeral port; --port-file writes the bound port for discovery.\n\
                 --checkpoint mounts durable snapshots+logs: an existing directory is\n\
                 recovered and the op stream resumes from it\n\
       client    (--addr <host:port> | --port-file <file>) [--send <file.ndjson>]\n\
                 [--topo <file> --trace <file> [--batch <n>]] [--stats] [--shutdown]\n\
                 Push requests to a running daemon and print a JSON summary of the\n\
                 acks. --send streams raw ndjson lines; --topo/--trace converts a\n\
                 trace into batch requests of --batch ops (default 16). --stats\n\
                 appends a stats request (its reply, including the audit mismatch\n\
                 count, folds into the summary); --shutdown stops the daemon\n\
       help      Show this message\n"
        .to_string()
}

/// Dispatches a parsed command line.
pub fn run(args: &ParsedArgs) -> Result<String, CommandError> {
    match args.command.as_str() {
        "generate" => generate(args),
        "replay" => replay(args),
        "snapshot" => snapshot(args),
        "recover" => recover(args),
        "whatif" => whatif(args),
        "audit" => audit(args),
        "serve" => serve(args),
        "client" => client(args),
        "help" | "--help" | "-h" => Ok(help()),
        other => Err(CommandError::Other(format!(
            "unknown command `{other}`; try `deltanet help`"
        ))),
    }
}

fn load_topology(path: &str) -> Result<Topology, CommandError> {
    let text = std::fs::read_to_string(path)?;
    topo_text::from_text(&text).map_err(|e| CommandError::Parse(format!("{path}: {e}")))
}

fn load_trace(path: &str, topo: &mut Topology) -> Result<Trace, CommandError> {
    let text = std::fs::read_to_string(path)?;
    Trace::parse(&text, topo).map_err(|e| CommandError::Parse(format!("{path}: {e}")))
}

/// `deltanet generate` — write a dataset to disk.
pub fn generate(args: &ParsedArgs) -> Result<String, CommandError> {
    let dataset = parse_dataset(args)?;
    let scale = parse_scale(args)?;
    let out_dir = args.require("out")?;
    let ds = workloads::build(dataset, scale);
    std::fs::create_dir_all(out_dir)?;
    let stem = dataset.name().to_ascii_lowercase().replace(' ', "_");
    let topo_path = Path::new(out_dir).join(format!("{stem}.topo"));
    let trace_path = Path::new(out_dir).join(format!("{stem}.trace"));
    std::fs::write(&topo_path, topo_text::to_text(&ds.topology.topology))?;
    std::fs::write(&trace_path, ds.trace.to_text(&ds.topology.topology))?;
    let row = ds.table2_row();
    Ok(format!(
        "wrote {} and {}\n{}: {} nodes, {} links, {} operations, peak {} rules\n",
        topo_path.display(),
        trace_path.display(),
        row.name,
        row.nodes,
        row.links,
        row.operations,
        row.peak_rules
    ))
}

/// One-line rendering of an operation for error messages (the trace text
/// format's shape: `I <id>` / `R <id>`).
fn describe_op(op: &Op) -> String {
    match op {
        Op::Insert(r) => format!("I {}", r.id.0),
        Op::Remove(id) => format!("R {}", id.0),
    }
}

/// Applies a parsed `--fields` list to an engine config: the first width
/// becomes the primary field, the rest declare secondary fields.
fn apply_fields(config: DeltaNetConfig, fields: &[u8]) -> DeltaNetConfig {
    DeltaNetConfig {
        field_width: fields[0],
        ..config
    }
    .with_secondary(&fields[1..])
}

/// `[lo : hi)` with both ends in the notation of the field's width
/// (dotted quad at 32 bits, IPv6 past 64 bits, decimal otherwise).
fn format_packet_range(iv: &Interval, width: u8) -> String {
    format!(
        "[{} : {})",
        format_field(iv.lo(), width),
        format_field(iv.hi(), width)
    )
}

/// One report line for a violation: the summary plus up to three of its
/// packet intervals rendered in the primary field's notation.
fn describe_violation(v: &InvariantViolation, width: u8) -> String {
    let packets = match v {
        InvariantViolation::ForwardingLoop { packets, .. }
        | InvariantViolation::Blackhole { packets, .. } => packets,
    };
    let mut out = format!("{v}");
    if !packets.is_empty() {
        let shown: Vec<String> = packets
            .iter()
            .take(3)
            .map(|p| format_packet_range(p, width))
            .collect();
        out.push_str(&format!(": {}", shown.join(", ")));
        if packets.len() > 3 {
            out.push_str(&format!(", ... ({} more)", packets.len() - 3));
        }
    }
    out
}

/// The engine a replay runs through; concrete so the sharded batch path and
/// the post-replay audits can reach past the [`Checker`] trait.
enum ReplayEngine {
    Delta(Box<DeltaNet>),
    Sharded(Box<ShardedDeltaNet>),
    Veriflow(Box<VeriflowRi>),
}

impl ReplayEngine {
    fn checker(&mut self) -> &mut dyn Checker {
        match self {
            ReplayEngine::Delta(net) => net.as_mut(),
            ReplayEngine::Sharded(net) => net.as_mut(),
            ReplayEngine::Veriflow(vf) => vf.as_mut(),
        }
    }

    /// `(allocated atoms, reclaimable bounds, compaction passes)` for the
    /// engines that compact; summed over shards for the sharded engine.
    fn compaction_stats(&self) -> Option<(usize, usize, usize)> {
        match self {
            ReplayEngine::Delta(net) => Some((
                net.allocated_atoms(),
                net.reclaimable_bounds(),
                net.compactions(),
            )),
            ReplayEngine::Sharded(net) => Some((
                net.allocated_atoms(),
                net.reclaimable_bounds(),
                net.compactions(),
            )),
            ReplayEngine::Veriflow(_) => None,
        }
    }

    fn check_all_blackholes(&self) -> Option<Vec<InvariantViolation>> {
        match self {
            ReplayEngine::Delta(net) => Some(net.check_all_blackholes()),
            ReplayEngine::Sharded(net) => Some(net.check_all_blackholes()),
            ReplayEngine::Veriflow(_) => None,
        }
    }

    /// The primary field's bit width, for address-notation output.
    fn field_width(&self) -> u8 {
        match self {
            ReplayEngine::Delta(net) => net.config().field_width,
            ReplayEngine::Sharded(net) => net.config().field_width,
            ReplayEngine::Veriflow(_) => 32,
        }
    }

    /// The identities of the currently active violations, when the engine
    /// is monitored (merged across shards for the sharded engine).
    fn monitor_keys(&self) -> Option<BTreeSet<ViolationKey>> {
        match self {
            ReplayEngine::Delta(net) => {
                net.monitor().map(|m| m.active_keys().into_iter().collect())
            }
            ReplayEngine::Sharded(net) => net.monitor_keys(),
            ReplayEngine::Veriflow(_) => None,
        }
    }

    /// `(loops, blackholes)` counts of the live monitor state.
    fn monitor_counts(&self) -> Option<(usize, usize)> {
        let keys = self.monitor_keys()?;
        let loops = keys
            .iter()
            .filter(|k| matches!(k, ViolationKey::Loop(_)))
            .count();
        Some((loops, keys.len() - loops))
    }

    /// Whether the maintained violation state equals a fresh full rescan —
    /// surfaced in the `--monitor` report so an operator (or the CI smoke)
    /// can see the incremental and O(plane) answers agree.
    fn monitor_matches_rescan(&self) -> Option<bool> {
        let active = match self {
            ReplayEngine::Delta(net) => net.active_violations()?,
            ReplayEngine::Sharded(net) => net.active_violations()?,
            ReplayEngine::Veriflow(_) => return None,
        };
        let mut expect = match self {
            ReplayEngine::Delta(net) => net.check_all_loops(),
            ReplayEngine::Sharded(net) => net.check_all_loops(),
            ReplayEngine::Veriflow(_) => return None,
        };
        expect.extend(self.check_all_blackholes()?);
        Some(active == expect)
    }
}

/// How many `--monitor` transition lines the replay report prints before
/// eliding the rest (the counts are always exact).
const MAX_TRANSITION_LINES: usize = 50;

/// Accumulates the appeared/resolved stream of a monitored replay, plus
/// the per-operation audit of the maintained state against a full
/// rescan — the replay-level twin of the differential test oracle, so an
/// operator can see the incremental path verified on *their* trace.
#[derive(Default)]
struct TransitionLog {
    lines: Vec<String>,
    appeared: usize,
    resolved: usize,
    prev: BTreeSet<ViolationKey>,
    cross_checks: usize,
    cross_check_mismatches: usize,
}

impl TransitionLog {
    /// Diffs the violation identities before/after one operation (or batch
    /// window) and records the transitions under `label`.
    fn observe(&mut self, label: &str, now: BTreeSet<ViolationKey>) {
        for key in now.difference(&self.prev) {
            self.appeared += 1;
            if self.lines.len() < MAX_TRANSITION_LINES {
                self.lines.push(format!("  {label}: + {key}"));
            }
        }
        for key in self.prev.difference(&now) {
            self.resolved += 1;
            if self.lines.len() < MAX_TRANSITION_LINES {
                self.lines.push(format!("  {label}: - {key}"));
            }
        }
        self.prev = now;
    }

    /// Records one incremental-vs-rescan comparison (`None` — e.g. a
    /// veriflow engine with no monitor — counts nothing).
    fn cross_check(&mut self, matches: Option<bool>) {
        if let Some(ok) = matches {
            self.cross_checks += 1;
            if !ok {
                self.cross_check_mismatches += 1;
            }
        }
    }
}

/// `deltanet replay` — replay a trace through a checker with timing.
pub fn replay(args: &ParsedArgs) -> Result<String, CommandError> {
    let mut topo = load_topology(args.require("topo")?)?;
    let trace = load_trace(args.require("trace")?, &mut topo)?;
    let check_loops = !args.has_flag("no-loops");
    let checker_name = args.get_or("checker", "deltanet").to_string();
    let compact_threshold = if let Some(value) = args.options.get("compact") {
        Some(value.parse::<usize>().map_err(|_| {
            CommandError::Other(format!(
                "--compact expects a reclaimable-bound threshold, got `{value}`"
            ))
        })?)
    } else if args.has_flag("compact") {
        Some(DEFAULT_COMPACT_THRESHOLD)
    } else {
        None
    };
    let shards = parse_usize_option(args, "shards")?;
    let batch = parse_usize_option(args, "batch")?;
    let workers = parse_usize_option(args, "workers")?;
    let check_blackholes = match args.options.get("check").map(String::as_str) {
        None => false,
        Some("blackholes") => true,
        Some(other) => {
            return Err(CommandError::Other(format!(
                "unknown --check `{other}` (expected blackholes)"
            )))
        }
    };
    // May be promoted to true by a restored snapshot whose config already
    // enables monitoring (the snapshot's config governs the engine).
    let mut monitor = args.has_flag("monitor");
    let fields = parse_fields(args)?;
    let from_snapshot = args.options.get("from-snapshot").cloned();
    let log_to = args.options.get("log").cloned();
    let checkpoint_dir = args.options.get("checkpoint").cloned();
    let durability = parse_durability(args)?;
    if args.options.contains_key("durability") && log_to.is_none() && checkpoint_dir.is_none() {
        return Err(CommandError::Other(
            "--durability only applies when writing a log (--log or --checkpoint)".to_string(),
        ));
    }
    if (args.options.contains_key("checkpoint-every") || args.options.contains_key("retain"))
        && checkpoint_dir.is_none()
    {
        return Err(CommandError::Other(
            "--checkpoint-every/--retain require --checkpoint".to_string(),
        ));
    }
    if checkpoint_dir.is_some() && (log_to.is_some() || from_snapshot.is_some()) {
        return Err(CommandError::Other(
            "--checkpoint manages its own snapshots and log segments and cannot be combined \
             with --log or --from-snapshot"
                .to_string(),
        ));
    }
    if (batch.is_some() || workers.is_some()) && shards.is_none() {
        return Err(CommandError::Other(
            "--batch/--workers require --shards".to_string(),
        ));
    }
    if args.has_flag("no-loops") && from_snapshot.is_some() {
        return Err(CommandError::Other(
            "--no-loops has no effect with --from-snapshot: the per-update loop-check \
             setting comes from the snapshot's config"
                .to_string(),
        ));
    }
    if [shards, batch].into_iter().flatten().any(|n| n == 0) {
        return Err(CommandError::Other(
            "--shards/--batch must be at least 1".to_string(),
        ));
    }
    let parallelism = workers.map_or_else(Parallelism::from_env, Parallelism::fixed);

    if let Some(dir) = &checkpoint_dir {
        if checker_name != "deltanet" {
            return Err(CommandError::Other(
                "--checkpoint is only supported by the deltanet checker".to_string(),
            ));
        }
        let mut config = DeltaNetConfig {
            check_loops_per_update: check_loops,
            compact_threshold,
            monitor_violations: monitor,
            ..Default::default()
        };
        if let Some(f) = &fields {
            config = apply_fields(config, f);
        }
        return replay_checkpointed(
            topo,
            &trace,
            args,
            dir,
            durability,
            config,
            shards,
            batch,
            parallelism,
            check_blackholes,
        );
    }

    let mut baseline_ops = 0u64;
    let mut engine =
        match checker_name.as_str() {
            "deltanet" => match &from_snapshot {
                Some(snap_path) => {
                    if shards.is_some() || compact_threshold.is_some() || fields.is_some() {
                        return Err(CommandError::Other(
                            "--shards/--compact/--fields come from the snapshot and cannot be \
                         combined with --from-snapshot"
                                .to_string(),
                        ));
                    }
                    let snap = Snapshot::read_from(Path::new(snap_path))?;
                    baseline_ops = snap.ops_applied();
                    let mut net = snap.restore(&topo)?;
                    if monitor && net.is_monitored() {
                        return Err(CommandError::Other(
                            "--monitor is redundant with this snapshot: its config already \
                             enables monitoring, which continues (and is reported) \
                             automatically on restore — drop the flag"
                                .to_string(),
                        ));
                    }
                    if monitor {
                        net.enable_monitor();
                    }
                    // A monitored snapshot keeps monitoring: report it.
                    monitor = monitor || net.is_monitored();
                    match net {
                        PersistNet::Single(n) => ReplayEngine::Delta(n),
                        PersistNet::Sharded(n) => ReplayEngine::Sharded(n),
                    }
                }
                None => {
                    let mut config = DeltaNetConfig {
                        check_loops_per_update: check_loops,
                        compact_threshold,
                        monitor_violations: monitor,
                        ..Default::default()
                    };
                    if let Some(f) = &fields {
                        config = apply_fields(config, f);
                    }
                    match shards {
                        Some(n) => ReplayEngine::Sharded(Box::new(
                            ShardedDeltaNet::with_parallelism(topo, config, n, parallelism),
                        )),
                        None => ReplayEngine::Delta(Box::new(DeltaNet::new(topo, config))),
                    }
                }
            },
            "veriflow" | "veriflow-ri" => {
                if compact_threshold.is_some()
                    || shards.is_some()
                    || check_blackholes
                    || monitor
                    || fields.is_some()
                    || from_snapshot.is_some()
                    || log_to.is_some()
                {
                    return Err(CommandError::Other(
                        "--compact/--shards/--check/--monitor/--fields/--from-snapshot/--log/\
                     --checkpoint are only supported by the deltanet checker"
                            .to_string(),
                    ));
                }
                ReplayEngine::Veriflow(Box::new(VeriflowRi::new(
                    topo,
                    VeriflowConfig {
                        check_loops_per_update: check_loops,
                        ..Default::default()
                    },
                )))
            }
            other => {
                return Err(CommandError::Other(format!(
                    "unknown checker `{other}` (expected deltanet | veriflow)"
                )))
            }
        };

    let mut timings = bench::Timings {
        micros: Vec::with_capacity(trace.len()),
    };
    let mut loops = 0usize;
    let mut transitions = monitor.then(TransitionLog::default);
    // Write-behind delta log: an op is appended only after it applied, so on
    // a mid-trace failure the log holds exactly the applied prefix. Each
    // applied window is flushed at the configured durability; the final (and
    // error-path) sync pushes even Buffered logs to disk.
    let mut dlog = match &log_to {
        Some(path) => Some(DeltaLog::create_with(
            Box::new(FsBackend),
            Path::new(path),
            durability,
        )?),
        None => None,
    };
    match (&mut engine, batch) {
        // Batched sharded replay: each window's shard groups apply
        // concurrently; per-op time is the window average, so the summary
        // statistics keep their shape. With --monitor, transitions are
        // observed at window granularity (per-op order inside a window is
        // not observable through a batch).
        (ReplayEngine::Sharded(net), Some(window)) => {
            let mut offset = 0usize;
            for chunk in trace.ops().chunks(window) {
                let start = Instant::now();
                let reports = match net.apply_batch(chunk) {
                    Ok(reports) => reports,
                    Err(e) => {
                        if let Some(log) = dlog.as_mut() {
                            for op in &chunk[..e.index] {
                                log.append(op);
                            }
                            log.sync()?;
                        }
                        return Err(CommandError::Other(format!(
                            "trace op {} ({}): {}",
                            offset + e.index + 1,
                            describe_op(&chunk[e.index]),
                            e.error
                        )));
                    }
                };
                if let Some(log) = dlog.as_mut() {
                    for op in chunk {
                        log.append(op);
                    }
                    log.flush()?;
                }
                let per_op_us = start.elapsed().as_secs_f64() * 1e6 / chunk.len() as f64;
                for report in reports {
                    timings.micros.push(per_op_us);
                    if report.has_loop() {
                        loops += 1;
                    }
                }
                offset += chunk.len();
                if let Some(log) = transitions.as_mut() {
                    let label = format!("ops {}..{}", offset - chunk.len() + 1, offset);
                    let keys = net.monitor_keys().unwrap_or_default();
                    log.observe(&label, keys);
                    // Untimed audit: the maintained (incrementally repaired)
                    // state against a fresh full rescan, once per window.
                    log.cross_check(net.active_violations().map(|active| {
                        let mut expect = net.check_all_loops();
                        expect.extend(net.check_all_blackholes());
                        active == expect
                    }));
                }
            }
        }
        (engine, _) => {
            for (index, op) in trace.ops().iter().enumerate() {
                let start = Instant::now();
                let report = match engine.checker().try_apply(op) {
                    Ok(report) => report,
                    Err(error) => {
                        if let Some(log) = dlog.as_mut() {
                            log.sync()?;
                        }
                        return Err(CommandError::Other(format!(
                            "trace op {} ({}): {error}",
                            index + 1,
                            describe_op(op)
                        )));
                    }
                };
                if let Some(log) = dlog.as_mut() {
                    log.append(op);
                    log.flush()?;
                }
                timings.micros.push(start.elapsed().as_secs_f64() * 1e6);
                if report.has_loop() {
                    loops += 1;
                }
                if let Some(log) = transitions.as_mut() {
                    let label = format!("op {} ({})", index + 1, describe_op(op));
                    let keys = engine.monitor_keys().unwrap_or_default();
                    log.observe(&label, keys);
                    // Untimed per-op audit of the incremental state against
                    // a full rescan (multi-field planes included).
                    let matches = engine.monitor_matches_rescan();
                    log.cross_check(matches);
                }
            }
        }
    }
    let log_ops = match dlog.as_mut() {
        Some(log) => {
            log.sync()?;
            Some(log.ops_logged())
        }
        None => None,
    };
    let summary = timings.summary();
    let checker = engine.checker();
    let name = checker.name();
    let class_count = checker.class_count();
    let rule_count = checker.rule_count();
    let memory_bytes = checker.memory_bytes();
    let compaction = engine.compaction_stats();
    let blackhole_report = if check_blackholes {
        engine.check_all_blackholes()
    } else {
        None
    };
    let monitor_counts = engine.monitor_counts();
    let monitor_matches = engine.monitor_matches_rescan();

    if let Some(json_path) = args.options.get("json") {
        use bench::json::Json;
        let mut fields = vec![
            ("schema", Json::str("deltanet-replay-v1")),
            ("checker", Json::str(name)),
        ];
        // The summary keys are shared with the BENCH_*.json emitters.
        fields.extend(bench::experiments::summary_json(&summary));
        fields.extend([
            ("packet_classes", Json::int(class_count)),
            ("rules", Json::int(rule_count)),
            ("ops_with_loops", Json::int(loops)),
            ("memory_bytes", Json::int(memory_bytes)),
        ]);
        if let Some((allocated, reclaimable, passes)) = compaction {
            fields.extend([
                ("allocated_atoms", Json::int(allocated)),
                ("reclaimable_bounds", Json::int(reclaimable)),
                ("compactions", Json::int(passes)),
            ]);
        }
        if let Some(n) = shards {
            fields.push(("shards", Json::int(n)));
        }
        if let Some(w) = batch {
            fields.push(("batch", Json::int(w)));
        }
        if let Some(holes) = &blackhole_report {
            fields.push(("blackholes", Json::int(holes.len())));
        }
        if from_snapshot.is_some() {
            fields.push(("resumed_from_op", Json::int(baseline_ops as usize)));
        }
        if let Some(n) = log_ops {
            fields.push(("log_ops", Json::int(n as usize)));
            fields.push(("durability", Json::str(durability.name())));
        }
        if let (Some((active_loops, active_holes)), Some(log)) =
            (monitor_counts, transitions.as_ref())
        {
            fields.extend([
                ("monitor_loops", Json::int(active_loops)),
                ("monitor_blackholes", Json::int(active_holes)),
                ("monitor_appeared", Json::int(log.appeared)),
                ("monitor_resolved", Json::int(log.resolved)),
                ("monitor_cross_checks", Json::int(log.cross_checks)),
                (
                    "monitor_cross_check_mismatches",
                    Json::int(log.cross_check_mismatches),
                ),
                (
                    "monitor_matches_rescan",
                    Json::Bool(monitor_matches.unwrap_or(false)),
                ),
            ]);
        }
        std::fs::write(json_path, Json::obj(fields).render())?;
    }
    let mut out = format!(
        "checker:            {name}\n\
         operations:         {}\n\
         packet classes:     {class_count}\n\
         rules installed:    {rule_count}\n\
         median update time: {:.1} us\n\
         average update time:{:.1} us\n\
         updates < 250 us:   {:.2}%\n\
         updates with loops: {loops}\n\
         estimated memory:   {:.1} MiB\n",
        trace.len(),
        summary.median_us,
        summary.average_us,
        summary.pct_under_250us,
        memory_bytes as f64 / (1024.0 * 1024.0),
    );
    if let Some((allocated, reclaimable, passes)) = compaction {
        out.push_str(&format!(
            "atoms allocated:    {allocated} (reclaimable bounds: {reclaimable})\n\
             compaction passes:  {passes}\n"
        ));
    }
    if let Some(n) = shards {
        out.push_str(&format!("shards:             {n}"));
        match batch {
            Some(w) => out.push_str(&format!(
                " (batched x{w}, {} workers)\n",
                parallelism.workers()
            )),
            None => out.push('\n'),
        }
    }
    if from_snapshot.is_some() {
        out.push_str(&format!("resumed from snapshot: op {baseline_ops}\n"));
    }
    if let (Some(n), Some(path)) = (log_ops, &log_to) {
        out.push_str(&format!(
            "delta log:          {n} ops -> {path} (durability: {})\n",
            durability.name()
        ));
    }
    if let Some(holes) = &blackhole_report {
        out.push_str(&format!("blackholes:         {}\n", holes.len()));
        for v in holes.iter().take(5) {
            out.push_str(&format!(
                "  {}\n",
                describe_violation(v, engine.field_width())
            ));
        }
    }
    if let (Some((active_loops, active_holes)), Some(log)) = (monitor_counts, transitions.as_ref())
    {
        out.push_str(&format!(
            "violations active:  {} ({active_loops} loops, {active_holes} blackholes)\n\
             violation events:   {} appeared, {} resolved\n",
            active_loops + active_holes,
            log.appeared,
            log.resolved,
        ));
        if !log.lines.is_empty() {
            out.push_str("violation transitions:\n");
            for line in &log.lines {
                out.push_str(line);
                out.push('\n');
            }
            let elided = (log.appeared + log.resolved).saturating_sub(log.lines.len());
            if elided > 0 {
                out.push_str(&format!("  ... ({elided} more)\n"));
            }
        }
        out.push_str(&format!(
            "incremental vs rescan: {} cross-checks, {} mismatches\n\
             monitor matches full rescan: {}\n",
            log.cross_checks,
            log.cross_check_mismatches,
            if monitor_matches == Some(true) && log.cross_check_mismatches == 0 {
                "yes"
            } else {
                "NO — this is a bug, please report it"
            }
        ));
    }
    Ok(out)
}

/// `replay --checkpoint <dir>`: replay through a [`CheckpointManager`] so
/// the delta log rotates and a snapshot is written every `--checkpoint-every`
/// applied ops — recovery cost stays bounded by the cadence, not the trace.
#[allow(clippy::too_many_arguments)]
fn replay_checkpointed(
    topo: Topology,
    trace: &Trace,
    args: &ParsedArgs,
    dir: &str,
    durability: deltanet::Durability,
    config: DeltaNetConfig,
    shards: Option<usize>,
    batch: Option<usize>,
    parallelism: Parallelism,
    check_blackholes: bool,
) -> Result<String, CommandError> {
    let every_ops = parse_usize_option(args, "checkpoint-every")?.unwrap_or(1024);
    let retain = parse_usize_option(args, "retain")?.unwrap_or(2);
    if every_ops == 0 || retain == 0 {
        return Err(CommandError::Other(
            "--checkpoint-every/--retain must be at least 1".to_string(),
        ));
    }
    let net = match shards {
        Some(n) => PersistNet::Sharded(Box::new(ShardedDeltaNet::with_parallelism(
            topo,
            config,
            n,
            parallelism,
        ))),
        None => PersistNet::Single(Box::new(DeltaNet::new(topo, config))),
    };
    let mut mgr = CheckpointManager::create(
        Box::new(FsBackend),
        Path::new(dir),
        net,
        0,
        CheckpointConfig {
            every_ops: every_ops as u64,
            retain,
            durability,
        },
    )?;
    let mut timings = bench::Timings {
        micros: Vec::with_capacity(trace.len()),
    };
    let mut loops = 0usize;
    let window = batch.unwrap_or(1);
    let mut offset = 0usize;
    for chunk in trace.ops().chunks(window) {
        let start = Instant::now();
        let reports = match mgr.apply_batch(chunk) {
            Ok(reports) => reports,
            Err(e) => {
                // Consume any deferred I/O error so the drop guard stays
                // quiet; the engine error is the one worth reporting.
                let sync_err = mgr.sync().err();
                let mut msg = format!(
                    "trace op {} ({}): {}",
                    offset + e.index + 1,
                    describe_op(&chunk[e.index]),
                    e.error
                );
                if let Some(io) = sync_err {
                    msg.push_str(&format!("; log sync also failed: {io}"));
                }
                return Err(CommandError::Other(msg));
            }
        };
        let per_op_us = start.elapsed().as_secs_f64() * 1e6 / chunk.len() as f64;
        for report in reports {
            timings.micros.push(per_op_us);
            if report.has_loop() {
                loops += 1;
            }
        }
        offset += chunk.len();
    }
    let summary = timings.summary();
    let checkpoints = mgr.checkpoints_written();
    let last_checkpoint = mgr.last_checkpoint();
    let ops_applied = mgr.ops_applied();
    let net = mgr.close()?;
    let blackhole_report = check_blackholes.then(|| net.check_all_blackholes());
    if let Some(json_path) = args.options.get("json") {
        use bench::json::Json;
        let mut fields = vec![
            ("schema", Json::str("deltanet-replay-v1")),
            ("checker", Json::str("delta-net")),
        ];
        fields.extend(bench::experiments::summary_json(&summary));
        fields.extend([
            ("packet_classes", Json::int(net.atom_count())),
            ("rules", Json::int(net.rule_count())),
            ("ops_with_loops", Json::int(loops)),
            ("durability", Json::str(durability.name())),
            ("checkpoint_every", Json::int(every_ops)),
            ("checkpoints_written", Json::int(checkpoints as usize)),
            ("last_checkpoint", Json::int(last_checkpoint as usize)),
        ]);
        if let Some(n) = shards {
            fields.push(("shards", Json::int(n)));
        }
        if let Some(w) = batch {
            fields.push(("batch", Json::int(w)));
        }
        if let Some(holes) = &blackhole_report {
            fields.push(("blackholes", Json::int(holes.len())));
        }
        std::fs::write(json_path, Json::obj(fields).render())?;
    }
    let mut out = format!(
        "checker:            delta-net\n\
         operations:         {}\n\
         median update time: {:.1} us\n\
         average update time:{:.1} us\n\
         durability:         {}\n\
         checkpoint dir:     {dir}\n\
         checkpoints:        {checkpoints} (every {every_ops} ops, retain {retain})\n\
         last checkpoint:    op {last_checkpoint}\n\
         ops applied:        {ops_applied}\n\
         updates with loops: {loops}\n",
        trace.len(),
        summary.median_us,
        summary.average_us,
        durability.name(),
    );
    if let Some(holes) = &blackhole_report {
        out.push_str(&format!("blackholes:         {}\n", holes.len()));
        for v in holes.iter().take(5) {
            out.push_str(&format!(
                "  {}\n",
                describe_violation(v, net.config().field_width)
            ));
        }
    }
    out.push_str(&describe_persist_net(&net));
    Ok(out)
}

/// `deltanet recover` — crash recovery from a snapshot + log pair or a
/// checkpoint directory, with strict or tail-repairing torn-log handling.
pub fn recover(args: &ParsedArgs) -> Result<String, CommandError> {
    let topo = load_topology(args.require("topo")?)?;
    let policy = if args.has_flag("repair-tail") {
        RecoveryPolicy::RepairTail
    } else {
        RecoveryPolicy::Strict
    };
    if let Some(dir) = args.options.get("dir") {
        let every_ops = parse_usize_option(args, "checkpoint-every")?.unwrap_or(1024);
        let retain = parse_usize_option(args, "retain")?.unwrap_or(2);
        let config = CheckpointConfig {
            every_ops: every_ops as u64,
            retain,
            durability: parse_durability(args)?,
        };
        let (mgr, report) =
            CheckpointManager::recover(Box::new(FsBackend), Path::new(dir), &topo, policy, config)?;
        let net = mgr.close()?;
        let mut out = format!(
            "recovered checkpoint dir {dir}\n\
             baseline snapshot:  op {}\n\
             log ops replayed:   {} (across {} segments)\n\
             ops incorporated:   {}\n",
            report.baseline_ops,
            report.replayed_ops,
            report.segments_replayed,
            report.ops_incorporated,
        );
        if report.snapshots_skipped > 0 {
            out.push_str(&format!(
                "snapshots skipped:  {} (corrupt or unreadable)\n",
                report.snapshots_skipped
            ));
        }
        if report.torn.is_some() {
            out.push_str(&describe_torn(report.torn.as_ref()));
            out.push_str(&format!(
                "salvaged from final segment: {} ops\n",
                report.salvaged_tail_ops
            ));
        }
        out.push_str(&describe_persist_net(&net));
        Ok(out)
    } else {
        let snap_path = args.require("snapshot").map_err(|_| {
            CommandError::Other(
                "recover needs either --dir <ckpt-dir> or --snapshot <file> --log <file>"
                    .to_string(),
            )
        })?;
        let log_path = args.require("log")?;
        let mut backend = FsBackend;
        let (net, total, torn) = persist::recover_with(
            &topo,
            &mut backend,
            Path::new(snap_path),
            Path::new(log_path),
            policy,
        )?;
        let mut out = format!("recovered {snap_path} + {log_path}\nops incorporated: {total}\n");
        out.push_str(&describe_torn(torn.as_ref()));
        out.push_str(&describe_persist_net(&net));
        Ok(out)
    }
}

/// One-line report of a repaired torn log tail (empty when the log was clean).
fn describe_torn(torn: Option<&TornTail>) -> String {
    match torn {
        Some(t) => format!(
            "torn tail repaired: truncated at byte {} ({} bytes dropped)\n",
            t.offset, t.bytes_dropped
        ),
        None => String::new(),
    }
}

/// `deltanet snapshot` — save, restore/recover, or time-travel snapshots.
///
/// Three modes, selected by which options are given: `--save <file>`
/// replays a trace and writes its final state; `--load <file>` restores a
/// snapshot (recovering through the `--log` tail when one is given);
/// `--at <n>` answers a time-travel query against a delta log.
pub fn snapshot(args: &ParsedArgs) -> Result<String, CommandError> {
    let save = args.options.get("save").cloned();
    let load = args.options.get("load").cloned();
    let at = parse_usize_option(args, "at")?;
    match (save, load, at) {
        (Some(out), None, None) => snapshot_save(args, &out),
        (None, Some(path), None) => snapshot_load(args, &path),
        (None, load, Some(op_n)) => snapshot_at(args, load.as_deref(), op_n),
        _ => Err(CommandError::Other(
            "snapshot expects exactly one of --save <file>, --load <file>, or --at <n> \
             (--at may be combined with --load); try `deltanet help`"
                .to_string(),
        )),
    }
}

/// `snapshot --save`: replay the trace, write the final state (and
/// optionally the ops) to disk.
fn snapshot_save(args: &ParsedArgs, out_path: &str) -> Result<String, CommandError> {
    let mut topo = load_topology(args.require("topo")?)?;
    let trace = load_trace(args.require("trace")?, &mut topo)?;
    let shards = parse_usize_option(args, "shards")?;
    if shards == Some(0) {
        return Err(CommandError::Other(
            "--shards must be at least 1".to_string(),
        ));
    }
    let config = DeltaNetConfig {
        check_loops_per_update: false,
        monitor_violations: args.has_flag("monitor"),
        ..Default::default()
    };
    let net = match shards {
        Some(n) => PersistNet::Sharded(Box::new(ShardedDeltaNet::new(topo, config, n))),
        None => PersistNet::Single(Box::new(DeltaNet::new(topo, config))),
    };
    let op_error = |index: usize, op: &Op, error: &dyn fmt::Display| {
        CommandError::Other(format!(
            "trace op {} ({}): {error}",
            index + 1,
            describe_op(op)
        ))
    };
    let (net, ops_applied) = match args.options.get("log") {
        Some(log_path) => {
            let mut logged = LoggedNet::new(net, Path::new(log_path), 0)?;
            for (index, op) in trace.ops().iter().enumerate() {
                logged.try_apply(op).map_err(|e| op_error(index, op, &e))?;
            }
            let applied = logged.ops_applied();
            (logged.into_net()?, applied)
        }
        None => {
            let mut net = net;
            for (index, op) in trace.ops().iter().enumerate() {
                net.try_apply(op).map_err(|e| op_error(index, op, &e))?;
            }
            (net, trace.len() as u64)
        }
    };
    let snap = Snapshot::of_net(&net, ops_applied);
    snap.write_to(Path::new(out_path))?;
    let bytes = std::fs::metadata(out_path)?.len();
    let mut out = format!(
        "wrote snapshot {out_path} ({bytes} bytes)\n\
         ops applied: {ops_applied}\n{}",
        describe_persist_net(&net),
    );
    if let Some(log_path) = args.options.get("log") {
        out.push_str(&format!("delta log: {ops_applied} ops -> {log_path}\n"));
    }
    Ok(out)
}

/// `snapshot --load`: restore, or recover through the log tail (repairing a
/// torn tail when `--repair-tail` is given).
fn snapshot_load(args: &ParsedArgs, snap_path: &str) -> Result<String, CommandError> {
    let topo = load_topology(args.require("topo")?)?;
    let repair = args.has_flag("repair-tail");
    let (net, total, torn) = match args.options.get("log") {
        Some(log_path) => {
            let policy = if repair {
                RecoveryPolicy::RepairTail
            } else {
                RecoveryPolicy::Strict
            };
            let mut backend = FsBackend;
            persist::recover_with(
                &topo,
                &mut backend,
                Path::new(snap_path),
                Path::new(log_path),
                policy,
            )?
        }
        None => {
            if repair {
                return Err(CommandError::Other(
                    "--repair-tail requires --log (it repairs the log's torn tail)".to_string(),
                ));
            }
            let snap = Snapshot::read_from(Path::new(snap_path))?;
            let at = snap.ops_applied();
            (snap.restore(&topo)?, at, None)
        }
    };
    Ok(format!(
        "restored {snap_path}\nops incorporated: {total}\n{}{}",
        describe_torn(torn.as_ref()),
        describe_persist_net(&net)
    ))
}

/// `snapshot --at`: the violations active after exactly `op_n` logged ops.
fn snapshot_at(
    args: &ParsedArgs,
    snap_path: Option<&str>,
    op_n: usize,
) -> Result<String, CommandError> {
    let topo = load_topology(args.require("topo")?)?;
    let log = persist::read_log(Path::new(args.require("log")?))?;
    let snap = snap_path
        .map(|p| Snapshot::read_from(Path::new(p)))
        .transpose()?;
    let config = DeltaNetConfig {
        check_loops_per_update: false,
        monitor_violations: true,
        ..Default::default()
    };
    let width = snap
        .as_ref()
        .map_or(config.field_width, |s| s.config().field_width);
    let violations = persist::violations_at(&topo, snap, &log, op_n, config)?;
    let mut out = format!(
        "violations after op {op_n} (of {} logged): {}\n",
        log.len(),
        violations.len()
    );
    for v in violations.iter().take(20) {
        out.push_str(&format!("  {}\n", describe_violation(v, width)));
    }
    if violations.len() > 20 {
        out.push_str(&format!("  ... ({} more)\n", violations.len() - 20));
    }
    Ok(out)
}

/// Shared state summary of a restored/built [`PersistNet`] for reports.
fn describe_persist_net(net: &PersistNet) -> String {
    let engine = match net.as_sharded() {
        Some(sharded) => format!("delta-net-sharded x{}", sharded.shards().len()),
        None => "delta-net".to_string(),
    };
    let config = net.config();
    let mut out = format!(
        "engine: {engine}\nrules: {}, packet classes: {}\n",
        net.rule_count(),
        net.atom_count()
    );
    if config.secondary_count() > 0 {
        out.push_str(&format!("header space: {}\n", config.header_space()));
    }
    if let Some(violations) = net.active_violations() {
        out.push_str(&format!("violations active: {}\n", violations.len()));
        for v in violations.iter().take(10) {
            out.push_str(&format!(
                "  {}\n",
                describe_violation(v, config.field_width)
            ));
        }
    }
    out
}

/// Builds the final data plane of a trace inside a Delta-net checker.
fn load_final_data_plane(args: &ParsedArgs) -> Result<DeltaNet, CommandError> {
    let mut topo = load_topology(args.require("topo")?)?;
    let trace = load_trace(args.require("trace")?, &mut topo)?;
    let mut config = DeltaNetConfig {
        check_loops_per_update: false,
        ..Default::default()
    };
    if let Some(f) = parse_fields(args)? {
        config = apply_fields(config, &f);
    }
    let mut net = DeltaNet::new(topo, config);
    for rule in trace.final_data_plane() {
        let id = rule.id.0;
        net.try_apply(&Op::Insert(rule)).map_err(|e| {
            CommandError::Other(format!(
                "rule {id} in the final data plane: {e} (declare the header space with --fields)"
            ))
        })?;
    }
    Ok(net)
}

/// `deltanet whatif` — link-failure impact analysis on the final data plane.
pub fn whatif(args: &ParsedArgs) -> Result<String, CommandError> {
    let net = load_final_data_plane(args)?;
    let src: u32 = args
        .require("src")?
        .parse()
        .map_err(|_| CommandError::Other("--src must be a node id".to_string()))?;
    let dst: u32 = args
        .require("dst")?
        .parse()
        .map_err(|_| CommandError::Other("--dst must be a node id".to_string()))?;
    let link = net
        .topology()
        .link_between(
            netmodel::topology::NodeId(src),
            netmodel::topology::NodeId(dst),
        )
        .ok_or_else(|| CommandError::Other(format!("no link n{src} -> n{dst} in topology")))?;
    let start = Instant::now();
    let report = net.link_failure_impact(link, args.has_flag("loops"));
    let elapsed = start.elapsed();
    let mut out = format!(
        "what if link n{src} -> n{dst} fails? (answered in {:.1} us)\n\
         affected packet classes: {}\n\
         affected address ranges: {}\n\
         other links carrying affected traffic: {}\n",
        elapsed.as_secs_f64() * 1e6,
        report.affected_classes,
        report.affected_packets.len(),
        report.affected_links.len(),
    );
    for iv in report.affected_packets.iter().take(10) {
        out.push_str(&format!(
            "  {}\n",
            format_packet_range(iv, net.config().field_width)
        ));
    }
    if args.has_flag("loops") {
        out.push_str(&format!(
            "forwarding loops among affected flows: {}\n",
            report.violations.len()
        ));
    }
    Ok(out)
}

/// `deltanet audit` — full loop + blackhole audit of the final data plane.
pub fn audit(args: &ParsedArgs) -> Result<String, CommandError> {
    let net = load_final_data_plane(args)?;
    let loops = net.check_all_loops();
    let holes = blackholes::check_blackholes(&net);
    let mut out = format!(
        "rules: {}, atoms: {}\nforwarding loops: {}\nblackholes: {}\n\
         (note: nodes with no rules at all — e.g. external border routers — show up as\n\
          blackholes; add explicit drop/deliver rules there to silence them)\n",
        net.rule_count(),
        net.atom_count(),
        loops.len(),
        holes.len()
    );
    for v in loops.iter().chain(holes.iter()).take(20) {
        out.push_str(&format!(
            "  {}\n",
            describe_violation(v, net.config().field_width)
        ));
    }
    Ok(out)
}

/// `deltanet serve` — run the verification daemon (see `crates/service`).
pub fn serve(args: &ParsedArgs) -> Result<String, CommandError> {
    let topo = load_topology(args.require("topo")?)?;
    let shards = parse_usize_option(args, "shards")?.unwrap_or(2);
    let window = parse_usize_option(args, "window")?.unwrap_or(32);
    let queue = parse_usize_option(args, "queue")?.unwrap_or(128);
    let sub_buffer = parse_usize_option(args, "sub-buffer")?.unwrap_or(256);
    if [shards, window, queue, sub_buffer].contains(&0) {
        return Err(CommandError::Other(
            "--shards/--window/--queue/--sub-buffer must be at least 1".to_string(),
        ));
    }
    let workers = parse_usize_option(args, "workers")?;
    let parallelism = workers.map_or_else(Parallelism::from_env, Parallelism::fixed);
    let durability = parse_durability(args)?;
    let checkpoint_dir = args.options.get("checkpoint").cloned();
    if (args.options.contains_key("checkpoint-every")
        || args.options.contains_key("retain")
        || args.options.contains_key("durability"))
        && checkpoint_dir.is_none()
    {
        return Err(CommandError::Other(
            "--checkpoint-every/--retain/--durability require --checkpoint".to_string(),
        ));
    }
    let checkpoint = match checkpoint_dir {
        Some(dir) => Some(service::CheckpointSetup {
            dir: dir.into(),
            config: CheckpointConfig {
                every_ops: parse_usize_option(args, "checkpoint-every")?.unwrap_or(1024) as u64,
                retain: parse_usize_option(args, "retain")?.unwrap_or(2),
                durability,
            },
        }),
        None => None,
    };
    let config = service::ServiceConfig {
        engine: DeltaNetConfig {
            check_loops_per_update: !args.has_flag("no-loops"),
            monitor_violations: true,
            ..Default::default()
        },
        shards,
        parallelism,
        window,
        queue,
        sub_buffer,
        audit: args.has_flag("audit"),
        checkpoint,
    };

    if args.has_flag("stdin") {
        if args.options.contains_key("port") || args.options.contains_key("port-file") {
            return Err(CommandError::Other(
                "--stdin serves over stdin/stdout and cannot be combined with \
                 --port/--port-file"
                    .to_string(),
            ));
        }
        service::serve_stdio(topo, config)?;
        return Ok("service: stdin stream closed\n".to_string());
    }

    let port = parse_usize_option(args, "port")?.unwrap_or(0);
    let server = service::Server::bind(format!("127.0.0.1:{port}"), topo, config)?;
    let local = server.local_addr()?;
    // The port file is the readiness signal for scripts using --port 0.
    if let Some(path) = args.options.get("port-file") {
        std::fs::write(path, local.port().to_string())?;
    }
    eprintln!("deltanet serve: listening on {local}");
    server.run()?;
    Ok(format!("service: shut down cleanly ({local})\n"))
}

/// `deltanet client` — push ndjson requests to a running daemon and
/// summarize the acks.
pub fn client(args: &ParsedArgs) -> Result<String, CommandError> {
    use std::io::{BufRead, BufReader, Write};

    let addr = if let Some(a) = args.options.get("addr") {
        a.clone()
    } else if let Some(f) = args.options.get("port-file") {
        format!("127.0.0.1:{}", std::fs::read_to_string(f)?.trim())
    } else {
        return Err(CommandError::Other(
            "client needs --addr <host:port> or --port-file <file>".to_string(),
        ));
    };

    let mut lines: Vec<String> = Vec::new();
    let mut next_id = 1u64;
    if let Some(file) = args.options.get("send") {
        for line in std::fs::read_to_string(file)?.lines() {
            if !line.trim().is_empty() {
                lines.push(line.to_string());
                next_id += 1;
            }
        }
    }
    if let Some(topo_path) = args.options.get("topo") {
        let mut topo = load_topology(topo_path)?;
        let trace = load_trace(args.require("trace")?, &mut topo)?;
        let batch = parse_usize_option(args, "batch")?.unwrap_or(16).max(1);
        for chunk in trace.ops().chunks(batch) {
            lines.push(service::batch_request(next_id, chunk, &topo).render());
            next_id += 1;
        }
    }
    if args.has_flag("stats") {
        lines.push(format!("{{\"id\": {next_id}, \"op\": \"stats\"}}"));
        next_id += 1;
    }
    if args.has_flag("shutdown") {
        lines.push(format!("{{\"id\": {next_id}, \"op\": \"shutdown\"}}"));
    }
    if lines.is_empty() {
        return Err(CommandError::Other(
            "nothing to send: use --send, --topo/--trace, --stats, or --shutdown".to_string(),
        ));
    }

    let stream = std::net::TcpStream::connect(&addr)?;
    let mut writer = stream.try_clone()?;
    // Acks must be drained concurrently with the writes: the daemon acks
    // each request in order, and an unread ack stream would eventually
    // fill both socket buffers and deadlock the connection.
    let reader = std::thread::spawn(move || {
        let mut ok = 0u64;
        let mut errors = 0u64;
        let mut ops_acked = 0u64;
        let mut stats: Option<service::Json> = None;
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { break };
            let Ok(value) = service::parse(&line) else {
                errors += 1;
                continue;
            };
            match value.get("ok").and_then(service::Json::as_bool) {
                Some(true) => {
                    ok += 1;
                    if let Some(acks) = value.get("acks").and_then(service::Json::as_arr) {
                        ops_acked += acks.len() as u64;
                    } else if value.get("at").is_some() {
                        ops_acked += 1;
                    }
                    if value.get("ops_applied").is_some() && value.get("atoms").is_some() {
                        stats = Some(value);
                    }
                }
                _ => errors += 1,
            }
        }
        (ok, errors, ops_acked, stats)
    });
    for line in &lines {
        writeln!(writer, "{line}")?;
    }
    writer.flush()?;
    writer.shutdown(std::net::Shutdown::Write)?;
    let (ok, errors, ops_acked, stats) = reader
        .join()
        .map_err(|_| CommandError::Other("ack reader thread panicked".to_string()))?;

    let mut pairs = vec![
        ("requests", service::Json::int(lines.len())),
        ("ok", service::Json::int(ok)),
        ("errors", service::Json::int(errors)),
        ("ops_acked", service::Json::int(ops_acked)),
    ];
    if let Some(stats) = &stats {
        for key in ["ops_applied", "violations", "audits", "mismatches"] {
            if let Some(v) = stats.get(key) {
                pairs.push((key, v.clone()));
            }
        }
    }
    let mut out = service::obj(pairs).render();
    out.push('\n');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    fn parsed(args: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("deltanet-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&parsed(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&parsed(&["frob"])).is_err());
    }

    #[test]
    fn generate_replay_whatif_audit_end_to_end() {
        let dir = temp_dir("e2e");
        let out = dir.to_str().unwrap().to_string();

        // generate
        let g = run(&parsed(&[
            "generate",
            "--dataset",
            "4switch",
            "--scale",
            "tiny",
            "--out",
            &out,
        ]))
        .unwrap();
        assert!(g.contains("4switch.topo"));
        let topo = dir.join("4switch.topo");
        let trace = dir.join("4switch.trace");
        assert!(topo.exists() && trace.exists());
        let topo = topo.to_str().unwrap().to_string();
        let trace = trace.to_str().unwrap().to_string();

        // replay with both checkers
        for (checker, reported_name) in [("deltanet", "delta-net"), ("veriflow", "veriflow-ri")] {
            let r = run(&parsed(&[
                "replay",
                "--topo",
                &topo,
                "--trace",
                &trace,
                "--checker",
                checker,
            ]))
            .unwrap();
            assert!(r.contains("median update time"), "{r}");
            assert!(r.contains(reported_name), "{r}");
        }

        // replay with --json writes the machine-readable summary too
        let json_path = dir.join("replay.json");
        let json_arg = json_path.to_str().unwrap().to_string();
        run(&parsed(&[
            "replay", "--topo", &topo, "--trace", &trace, "--json", &json_arg,
        ]))
        .unwrap();
        let json_text = std::fs::read_to_string(&json_path).unwrap();
        for key in ["deltanet-replay-v1", "median_us", "memory_bytes"] {
            assert!(json_text.contains(key), "missing {key} in:\n{json_text}");
        }

        // whatif on the ring link n0 -> n1
        let w = run(&parsed(&[
            "whatif", "--topo", &topo, "--trace", &trace, "--src", "0", "--dst", "1", "--loops",
        ]))
        .unwrap();
        assert!(w.contains("affected packet classes"), "{w}");

        // audit: the converged SDN-IP data plane is loop-free.
        let a = run(&parsed(&["audit", "--topo", &topo, "--trace", &trace])).unwrap();
        assert!(a.contains("forwarding loops: 0"), "{a}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_reports_malformed_op_instead_of_crashing() {
        let dir = temp_dir("badop");
        let out = dir.to_str().unwrap().to_string();
        run(&parsed(&[
            "generate",
            "--dataset",
            "4switch",
            "--scale",
            "tiny",
            "--out",
            &out,
        ]))
        .unwrap();
        let topo = dir.join("4switch.topo").to_str().unwrap().to_string();
        let trace_path = dir.join("4switch.trace");
        // Append a removal of a rule that was never installed.
        let mut text = std::fs::read_to_string(&trace_path).unwrap();
        text.push_str("R 999999\n");
        std::fs::write(&trace_path, text).unwrap();
        let trace = trace_path.to_str().unwrap().to_string();
        for checker in ["deltanet", "veriflow"] {
            let err = run(&parsed(&[
                "replay",
                "--topo",
                &topo,
                "--trace",
                &trace,
                "--checker",
                checker,
            ]))
            .unwrap_err()
            .to_string();
            assert!(err.contains("unknown rule"), "{err}");
            assert!(err.contains("R 999999"), "{err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_with_compaction_reclaims_churn_garbage() {
        let dir = temp_dir("compact");
        let out = dir.to_str().unwrap().to_string();
        run(&parsed(&[
            "generate",
            "--dataset",
            "churn",
            "--scale",
            "tiny",
            "--out",
            &out,
        ]))
        .unwrap();
        let topo = dir.join("churn.topo").to_str().unwrap().to_string();
        let trace = dir.join("churn.trace").to_str().unwrap().to_string();
        let json_path = dir.join("churn.json");
        let json_arg = json_path.to_str().unwrap().to_string();
        // Eager compaction: every removal leaving garbage triggers a pass.
        let r = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--no-loops",
            "--compact",
            "1",
            "--json",
            &json_arg,
        ]))
        .unwrap();
        assert!(r.contains("compaction passes:"), "{r}");
        assert!(r.contains("reclaimable bounds: 0"), "{r}");
        let json_text = std::fs::read_to_string(&json_path).unwrap();
        for key in ["allocated_atoms", "reclaimable_bounds", "compactions"] {
            assert!(json_text.contains(key), "missing {key} in:\n{json_text}");
        }
        // The flag is deltanet-only.
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--checker",
            "veriflow",
            "--compact",
            "1",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("only supported"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_replay_matches_single_engine_statistics() {
        let dir = temp_dir("sharded");
        let out = dir.to_str().unwrap().to_string();
        run(&parsed(&[
            "generate",
            "--dataset",
            "4switch",
            "--scale",
            "tiny",
            "--out",
            &out,
        ]))
        .unwrap();
        let topo = dir.join("4switch.topo").to_str().unwrap().to_string();
        let trace = dir.join("4switch.trace").to_str().unwrap().to_string();
        let json_path = dir.join("sharded.json");
        let json_arg = json_path.to_str().unwrap().to_string();

        // Per-op sharded replay.
        let r = run(&parsed(&[
            "replay", "--topo", &topo, "--trace", &trace, "--shards", "3",
        ]))
        .unwrap();
        assert!(r.contains("delta-net-sharded"), "{r}");
        assert!(r.contains("shards:             3"), "{r}");

        // Batched sharded replay with a pinned worker count and JSON output.
        let b = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--shards",
            "4",
            "--batch",
            "16",
            "--workers",
            "2",
            "--json",
            &json_arg,
        ]))
        .unwrap();
        assert!(b.contains("batched x16, 2 workers"), "{b}");
        let json_text = std::fs::read_to_string(&json_path).unwrap();
        for key in ["\"shards\": 4", "\"batch\": 16", "delta-net-sharded"] {
            assert!(json_text.contains(key), "missing {key} in:\n{json_text}");
        }

        // Guard rails.
        let err = run(&parsed(&[
            "replay", "--topo", &topo, "--trace", &trace, "--batch", "8",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("require --shards"), "{err}");
        let err = run(&parsed(&[
            "replay", "--topo", &topo, "--trace", &trace, "--shards", "2", "--batch", "0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--checker",
            "veriflow",
            "--shards",
            "2",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("only supported"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_check_blackholes_pins_a_known_blackhole_trace() {
        // A 3-switch chain forwarding 10.0.0.0/8 to a terminal switch with
        // no rule: the traffic dies at s2 (see `deltanet::blackholes`).
        let dir = temp_dir("blackhole");
        let topo_path = dir.join("chain.topo");
        let trace_path = dir.join("chain.trace");
        std::fs::write(
            &topo_path,
            "node s0\nnode s1\nnode s2\nlink 0 1\nlink 1 2\n",
        )
        .unwrap();
        std::fs::write(&trace_path, "I 1 0 1 10.0.0.0/8 1\nI 2 1 2 10.0.0.0/8 1\n").unwrap();
        let topo = topo_path.to_str().unwrap().to_string();
        let trace = trace_path.to_str().unwrap().to_string();
        let json_path = dir.join("blackhole.json");
        let json_arg = json_path.to_str().unwrap().to_string();

        // Both the single and the sharded engine find exactly one blackhole.
        for extra in [&[][..], &["--shards", "2"][..]] {
            let mut argv = vec![
                "replay",
                "--topo",
                &topo,
                "--trace",
                &trace,
                "--check",
                "blackholes",
                "--json",
                &json_arg,
            ];
            argv.extend_from_slice(extra);
            let r = run(&parsed(&argv)).unwrap();
            assert!(r.contains("blackholes:         1"), "{r}");
            assert!(r.contains("blackhole at n2"), "{r}");
            let json_text = std::fs::read_to_string(&json_path).unwrap();
            assert!(json_text.contains("\"blackholes\": 1"), "{json_text}");
        }

        // Unknown --check values and veriflow are rejected.
        let err = run(&parsed(&[
            "replay", "--topo", &topo, "--trace", &trace, "--check", "teapots",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown --check"), "{err}");
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--checker",
            "veriflow",
            "--check",
            "blackholes",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("only supported"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_fields_declares_a_multifield_header_space() {
        // A 3-switch chain carrying 10.0.0.0/8 towards a terminal switch
        // (blackhole at s2), with an ACL deny at s0 dropping the source
        // range [10:20) — a genuinely dst x src data plane.
        let dir = temp_dir("fields");
        let topo_path = dir.join("chain.topo");
        let trace_path = dir.join("chain.trace");
        std::fs::write(
            &topo_path,
            "node s0\nnode s1\nnode s2\nlink 0 1\nlink 1 2\n",
        )
        .unwrap();
        std::fs::write(
            &trace_path,
            "I 1 0 1 10.0.0.0/8 1\nI 2 1 2 10.0.0.0/8 1\nI 3 0 drop 10.0.0.0/8 9 10:20\n",
        )
        .unwrap();
        let topo = topo_path.to_str().unwrap().to_string();
        let trace = trace_path.to_str().unwrap().to_string();

        // Without --fields the engine is single-field: the multi-field rule
        // is rejected cleanly, naming the disagreement.
        let err = run(&parsed(&["replay", "--topo", &topo, "--trace", &trace]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("secondary header field"), "{err}");

        // With --fields, single and sharded replays verify the dst x src
        // plane; the blackhole report renders the primary axis dotted-quad.
        for extra in [&[][..], &["--shards", "2"][..]] {
            let mut argv = vec![
                "replay",
                "--topo",
                &topo,
                "--trace",
                &trace,
                "--fields",
                "dst,src:8",
                "--check",
                "blackholes",
                "--monitor",
            ];
            argv.extend_from_slice(extra);
            let r = run(&parsed(&argv)).unwrap();
            assert!(r.contains("blackhole at n2"), "{r}");
            assert!(r.contains("[10.0.0.0 : 11.0.0.0)"), "{r}");
            assert!(
                r.contains("incremental vs rescan: 3 cross-checks, 0 mismatches"),
                "{r}"
            );
            assert!(r.contains("monitor matches full rescan: yes"), "{r}");
        }

        // audit accepts the same declaration.
        let a = run(&parsed(&[
            "audit",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--fields",
            "dst,src:8",
        ]))
        .unwrap();
        assert!(a.contains("forwarding loops: 0"), "{a}");

        // Guard rails: veriflow and --from-snapshot reject --fields, and a
        // malformed spec is an argument error.
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--checker",
            "veriflow",
            "--fields",
            "dst,src:8",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("only supported"), "{err}");
        let err = run(&parsed(&[
            "replay", "--topo", &topo, "--trace", &trace, "--fields", "dst,vlan",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--fields"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_monitor_streams_violation_transitions() {
        // A loop raised and retracted inside the trace: r1 a->b, r2 b->a
        // (loop appears), then r2 withdrawn (loop resolves, the blackhole
        // at b re-appears because r1's traffic strands there).
        let dir = temp_dir("monitor");
        let topo_path = dir.join("loop.topo");
        let trace_path = dir.join("loop.trace");
        std::fs::write(&topo_path, "node a\nnode b\nlink 0 1\nlink 1 0\n").unwrap();
        std::fs::write(
            &trace_path,
            "I 1 0 1 10.0.0.0/8 1\nI 2 1 0 10.0.0.0/8 1\nR 2\n",
        )
        .unwrap();
        let topo = topo_path.to_str().unwrap().to_string();
        let trace = trace_path.to_str().unwrap().to_string();
        let json_path = dir.join("monitor.json");
        let json_arg = json_path.to_str().unwrap().to_string();

        // Single-engine and sharded monitored replays stream the same story.
        for extra in [&[][..], &["--shards", "3"][..]] {
            let mut argv = vec![
                "replay",
                "--topo",
                &topo,
                "--trace",
                &trace,
                "--monitor",
                "--json",
                &json_arg,
            ];
            argv.extend_from_slice(extra);
            let r = run(&parsed(&argv)).unwrap();
            assert!(r.contains("+ forwarding loop through n0 -> n1"), "{r}");
            assert!(r.contains("- forwarding loop through n0 -> n1"), "{r}");
            assert!(r.contains("+ blackhole at n1"), "{r}");
            assert!(r.contains("monitor matches full rescan: yes"), "{r}");
            assert!(
                r.contains("violations active:  1 (0 loops, 1 blackholes)"),
                "{r}"
            );
            let json_text = std::fs::read_to_string(&json_path).unwrap();
            for key in [
                "\"monitor_loops\": 0",
                "\"monitor_blackholes\": 1",
                "\"monitor_matches_rescan\": true",
            ] {
                assert!(json_text.contains(key), "missing {key} in:\n{json_text}");
            }
        }

        // Batched sharded replay reports at window granularity.
        let b = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--monitor",
            "--shards",
            "2",
            "--batch",
            "2",
        ]))
        .unwrap();
        assert!(b.contains("ops 1..2: + forwarding loop"), "{b}");
        assert!(b.contains("monitor matches full rescan: yes"), "{b}");

        // The flag is deltanet-only.
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--checker",
            "veriflow",
            "--monitor",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("only supported"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_save_load_timetravel_and_resume() {
        // The full persistence workflow on a tiny hand-written network: a
        // loop raised by two ops, snapshotted with its delta log, restored,
        // time-travelled, and finally resumed from with a removal trace.
        let dir = temp_dir("persist");
        let topo_path = dir.join("loop.topo");
        let trace_path = dir.join("loop.trace");
        std::fs::write(&topo_path, "node a\nnode b\nlink 0 1\nlink 1 0\n").unwrap();
        std::fs::write(&trace_path, "I 1 0 1 10.0.0.0/8 1\nI 2 1 0 10.0.0.0/8 1\n").unwrap();
        let topo = topo_path.to_str().unwrap().to_string();
        let trace = trace_path.to_str().unwrap().to_string();
        let snap = dir.join("state.snap").to_str().unwrap().to_string();
        let log = dir.join("state.dnlog").to_str().unwrap().to_string();

        // Save (monitored, with the recovery log).
        let s = run(&parsed(&[
            "snapshot",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--save",
            &snap,
            "--log",
            &log,
            "--monitor",
        ]))
        .unwrap();
        assert!(s.contains("wrote snapshot"), "{s}");
        assert!(s.contains("ops applied: 2"), "{s}");
        assert!(s.contains("rules: 2"), "{s}");

        // Plain restore and log-tail recovery agree (the log holds exactly
        // the snapshotted ops, so the tail is empty).
        for extra in [&[][..], &["--log", &log][..]] {
            let mut argv = vec!["snapshot", "--topo", &topo, "--load", &snap];
            argv.extend_from_slice(extra);
            let l = run(&parsed(&argv)).unwrap();
            assert!(l.contains("ops incorporated: 2"), "{l}");
            assert!(l.contains("violations active: 1"), "{l}");
            assert!(l.contains("forwarding loop"), "{l}");
        }

        // Time-travel: after op 1 only the blackhole at b exists (before
        // the snapshot's position, so it replays from scratch); after op 2
        // the loop is live (answered from the snapshot itself).
        let t1 = run(&parsed(&[
            "snapshot", "--topo", &topo, "--log", &log, "--at", "1",
        ]))
        .unwrap();
        assert!(t1.contains("violations after op 1"), "{t1}");
        assert!(t1.contains("blackhole at n1"), "{t1}");
        let t2 = run(&parsed(&[
            "snapshot", "--topo", &topo, "--log", &log, "--at", "2", "--load", &snap,
        ]))
        .unwrap();
        assert!(t2.contains("forwarding loop"), "{t2}");

        // Resume a replay from the snapshot: withdrawing r2 breaks the loop
        // and strands r1's traffic at b.
        let tail_path = dir.join("tail.trace");
        std::fs::write(&tail_path, "R 2\n").unwrap();
        let tail = tail_path.to_str().unwrap().to_string();
        let log2 = dir.join("tail.dnlog").to_str().unwrap().to_string();
        // The snapshot's config enables monitoring, so monitoring continues
        // (and is reported) automatically — no --monitor flag needed.
        let r = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &tail,
            "--from-snapshot",
            &snap,
            "--log",
            &log2,
        ]))
        .unwrap();
        assert!(r.contains("resumed from snapshot: op 2"), "{r}");
        assert!(r.contains("delta log:          1 ops"), "{r}");
        assert!(r.contains("+ blackhole at n1"), "{r}");
        assert!(r.contains("monitor matches full rescan: yes"), "{r}");

        // Guard rails: snapshot-incompatible flags, mode confusion, the
        // veriflow checker, and corrupted artifacts all fail cleanly.
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &tail,
            "--from-snapshot",
            &snap,
            "--shards",
            "2",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("cannot be combined"), "{err}");
        // --monitor on an already-monitored snapshot is rejected (the
        // snapshot's config governs; monitoring continued above without it).
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &tail,
            "--from-snapshot",
            &snap,
            "--monitor",
        ]))
        .unwrap_err();
        assert!(
            err.to_string().contains("redundant with this snapshot"),
            "{err}"
        );
        // --no-loops cannot override a restored snapshot's config either.
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &tail,
            "--from-snapshot",
            &snap,
            "--no-loops",
        ]))
        .unwrap_err();
        assert!(
            err.to_string().contains("--no-loops has no effect"),
            "{err}"
        );
        let err = run(&parsed(&["snapshot", "--topo", &topo])).unwrap_err();
        assert!(err.to_string().contains("exactly one of"), "{err}");
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &tail,
            "--checker",
            "veriflow",
            "--log",
            &log2,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("only supported"), "{err}");
        let bad = dir.join("bad.snap");
        let mut bytes = std::fs::read(&snap).unwrap();
        bytes.truncate(bytes.len() - 4);
        std::fs::write(&bad, bytes).unwrap();
        let bad = bad.to_str().unwrap().to_string();
        let err = run(&parsed(&["snapshot", "--topo", &topo, "--load", &bad])).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_rejects_unknown_checker() {
        let dir = temp_dir("badchecker");
        let out = dir.to_str().unwrap().to_string();
        run(&parsed(&[
            "generate",
            "--dataset",
            "4switch",
            "--scale",
            "tiny",
            "--out",
            &out,
        ]))
        .unwrap();
        let topo = dir.join("4switch.topo").to_str().unwrap().to_string();
        let trace = dir.join("4switch.trace").to_str().unwrap().to_string();
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--checker",
            "magic",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown checker"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn whatif_rejects_missing_link() {
        let dir = temp_dir("badlink");
        let out = dir.to_str().unwrap().to_string();
        run(&parsed(&[
            "generate",
            "--dataset",
            "4switch",
            "--scale",
            "tiny",
            "--out",
            &out,
        ]))
        .unwrap();
        let topo = dir.join("4switch.topo").to_str().unwrap().to_string();
        let trace = dir.join("4switch.trace").to_str().unwrap().to_string();
        let err = run(&parsed(&[
            "whatif", "--topo", &topo, "--trace", &trace, "--src", "0", "--dst", "99",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no link"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_are_reported() {
        let err = run(&parsed(&[
            "replay",
            "--topo",
            "/nonexistent.topo",
            "--trace",
            "/nonexistent.trace",
        ]))
        .unwrap_err();
        assert!(matches!(err, CommandError::Io(_)));
    }

    #[test]
    fn recover_command_repairs_torn_tail() {
        // Save a snapshot + log, tear the log's tail by appending garbage,
        // then check strict recovery names the torn byte while --repair-tail
        // salvages the intact prefix.
        let dir = temp_dir("recover");
        let topo_path = dir.join("loop.topo");
        let trace_path = dir.join("loop.trace");
        std::fs::write(&topo_path, "node a\nnode b\nlink 0 1\nlink 1 0\n").unwrap();
        std::fs::write(&trace_path, "I 1 0 1 10.0.0.0/8 1\nI 2 1 0 10.0.0.0/8 1\n").unwrap();
        let topo = topo_path.to_str().unwrap().to_string();
        let trace = trace_path.to_str().unwrap().to_string();
        let snap = dir.join("state.snap").to_str().unwrap().to_string();
        let log = dir.join("state.dnlog").to_str().unwrap().to_string();
        run(&parsed(&[
            "snapshot",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--save",
            &snap,
            "--log",
            &log,
            "--monitor",
        ]))
        .unwrap();

        // A clean strict recover works and reports both ops.
        let r = run(&parsed(&[
            "recover",
            "--topo",
            &topo,
            "--snapshot",
            &snap,
            "--log",
            &log,
        ]))
        .unwrap();
        assert!(r.contains("ops incorporated: 2"), "{r}");
        assert!(!r.contains("torn tail repaired"), "{r}");

        // Tear the tail: a varint length claiming bytes that never arrived.
        let clean_len = std::fs::metadata(&log).unwrap().len();
        let mut bytes = std::fs::read(&log).unwrap();
        bytes.extend_from_slice(&[0x09, 0xAB]);
        std::fs::write(&log, &bytes).unwrap();

        let err = run(&parsed(&[
            "recover",
            "--topo",
            &topo,
            "--snapshot",
            &snap,
            "--log",
            &log,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        let err = run(&parsed(&[
            "snapshot", "--topo", &topo, "--load", &snap, "--log", &log,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");

        for cmd in [
            &[
                "recover",
                "--topo",
                &topo,
                "--snapshot",
                &snap,
                "--log",
                &log,
                "--repair-tail",
            ][..],
            &[
                "snapshot",
                "--topo",
                &topo,
                "--load",
                &snap,
                "--log",
                &log,
                "--repair-tail",
            ][..],
        ] {
            // Repair truncates on disk, so re-tear before each command.
            let mut bytes = std::fs::read(&log).unwrap();
            bytes.truncate(clean_len as usize);
            bytes.extend_from_slice(&[0x09, 0xAB]);
            std::fs::write(&log, &bytes).unwrap();
            let r = run(&parsed(cmd)).unwrap();
            assert!(r.contains("ops incorporated: 2"), "{r}");
            assert!(
                r.contains(&format!(
                    "torn tail repaired: truncated at byte {clean_len} (2 bytes dropped)"
                )),
                "{r}"
            );
            assert!(r.contains("forwarding loop"), "{r}");
        }
        // Repair truncated the file back to the clean prefix.
        assert_eq!(std::fs::metadata(&log).unwrap().len(), clean_len);

        // Guard rails.
        let err = run(&parsed(&["recover", "--topo", &topo])).unwrap_err();
        assert!(err.to_string().contains("either --dir"), "{err}");
        let err = run(&parsed(&[
            "snapshot",
            "--topo",
            &topo,
            "--load",
            &snap,
            "--repair-tail",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("requires --log"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_durability_levels_produce_complete_logs() {
        let dir = temp_dir("durability");
        let topo_path = dir.join("loop.topo");
        let trace_path = dir.join("loop.trace");
        std::fs::write(&topo_path, "node a\nnode b\nlink 0 1\nlink 1 0\n").unwrap();
        std::fs::write(&trace_path, "I 1 0 1 10.0.0.0/8 1\nI 2 1 0 10.0.0.0/8 1\n").unwrap();
        let topo = topo_path.to_str().unwrap().to_string();
        let trace = trace_path.to_str().unwrap().to_string();

        for level in ["buffered", "flush", "fsync"] {
            let log = dir
                .join(format!("{level}.dnlog"))
                .to_str()
                .unwrap()
                .to_string();
            let r = run(&parsed(&[
                "replay",
                "--topo",
                &topo,
                "--trace",
                &trace,
                "--log",
                &log,
                "--durability",
                level,
            ]))
            .unwrap();
            assert!(r.contains(&format!("(durability: {level})")), "{r}");
            // The log is complete at every level: time-travel to the last op
            // sees the loop both ops together create.
            let t = run(&parsed(&[
                "snapshot", "--topo", &topo, "--log", &log, "--at", "2",
            ]))
            .unwrap();
            assert!(t.contains("violations after op 2 (of 2 logged): 1"), "{t}");
            assert!(t.contains("forwarding loop"), "{t}");
        }

        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--log",
            dir.join("x.dnlog").to_str().unwrap(),
            "--durability",
            "turbo",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("invalid value"), "{err}");
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--durability",
            "fsync",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("only applies"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_checkpoint_end_to_end() {
        // Replay through a checkpoint directory with a tight cadence, then
        // recover from the directory and check every op was incorporated.
        let dir = temp_dir("checkpoint");
        let out = dir.to_str().unwrap().to_string();
        run(&parsed(&[
            "generate",
            "--dataset",
            "4switch",
            "--scale",
            "tiny",
            "--out",
            &out,
        ]))
        .unwrap();
        let topo = dir.join("4switch.topo").to_str().unwrap().to_string();
        let trace = dir.join("4switch.trace").to_str().unwrap().to_string();
        let ckpt = dir.join("ckpt").to_str().unwrap().to_string();
        let json = dir.join("ckpt.json").to_str().unwrap().to_string();

        let r = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--checkpoint",
            &ckpt,
            "--checkpoint-every",
            "8",
            "--retain",
            "2",
            "--json",
            &json,
        ]))
        .unwrap();
        assert!(r.contains("checkpoint dir:"), "{r}");
        assert!(r.contains("(every 8 ops, retain 2)"), "{r}");
        // Every trace op was applied and logged.
        let trace_len: usize = r
            .lines()
            .find_map(|l| l.strip_prefix("operations:"))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(
            r.contains(&format!("ops applied:        {trace_len}")),
            "{r}"
        );
        let j = std::fs::read_to_string(&json).unwrap();
        assert!(j.contains("\"checkpoint_every\": 8"), "{j}");
        assert!(j.contains("\"durability\": \"flush\""), "{j}");

        // The directory holds atomic snapshot + rotated segment artifacts.
        let names: Vec<String> = std::fs::read_dir(&ckpt)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names
                .iter()
                .any(|n| n.starts_with("snap-") && n.ends_with(".dnsnap")),
            "{names:?}"
        );
        assert!(
            names
                .iter()
                .any(|n| n.starts_with("log-") && n.ends_with(".dnlog")),
            "{names:?}"
        );

        let r = run(&parsed(&[
            "recover",
            "--topo",
            &topo,
            "--dir",
            &ckpt,
            "--repair-tail",
        ]))
        .unwrap();
        assert!(
            r.contains(&format!("ops incorporated:   {trace_len}")),
            "{r}"
        );
        assert!(!r.contains("torn tail repaired"), "{r}");

        // Guard rails: checkpoint-only options and incompatible modes.
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--checkpoint-every",
            "8",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("require --checkpoint"), "{err}");
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--checkpoint",
            &ckpt,
            "--log",
            dir.join("x.dnlog").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("cannot be combined"), "{err}");
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--checker",
            "veriflow",
            "--checkpoint",
            &ckpt,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("only supported"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
