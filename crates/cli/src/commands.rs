//! The `deltanet` sub-commands.
//!
//! Every command is a pure function from parsed arguments (plus the
//! filesystem) to a report string, so the binary stays a two-line wrapper
//! and the behaviour is unit-testable.

use crate::args::{parse_dataset, parse_scale, ArgError, ParsedArgs};
use crate::topo_text;
use deltanet::{blackholes, DeltaNet, DeltaNetConfig};
use netmodel::checker::Checker;
use netmodel::topology::Topology;
use netmodel::trace::Trace;
use std::fmt;
use std::path::Path;
use std::time::Instant;
use veriflow_ri::{VeriflowConfig, VeriflowRi};

/// Errors produced by a command.
#[derive(Debug)]
pub enum CommandError {
    /// Bad command-line arguments.
    Args(ArgError),
    /// A file could not be read or written.
    Io(std::io::Error),
    /// A topology or trace file failed to parse.
    Parse(String),
    /// Any other user-facing error.
    Other(String),
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::Args(e) => write!(f, "{e}"),
            CommandError::Io(e) => write!(f, "i/o error: {e}"),
            CommandError::Parse(e) => write!(f, "{e}"),
            CommandError::Other(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<ArgError> for CommandError {
    fn from(e: ArgError) -> Self {
        CommandError::Args(e)
    }
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError::Io(e)
    }
}

/// The help text.
pub fn help() -> String {
    "deltanet — real-time data-plane verification using atoms (NSDI 2017)\n\
     \n\
     USAGE: deltanet <command> [options]\n\
     \n\
     COMMANDS\n\
       generate  --dataset <name> [--scale tiny|small|medium] --out <dir>\n\
                 Generate one of the eight evaluation datasets as <name>.topo + <name>.trace\n\
       replay    --topo <file> --trace <file> [--checker deltanet|veriflow] [--no-loops]\n\
                 [--json <file>]\n\
                 Replay a trace through a checker and print Table-3 style statistics;\n\
                 with --json, also write them machine-readable (BENCH_*.json shape)\n\
       whatif    --topo <file> --trace <file> --src <node-id> --dst <node-id> [--loops]\n\
                 Load the trace's final data plane and analyse the failure of link src->dst\n\
       audit     --topo <file> --trace <file>\n\
                 Load the final data plane and report all forwarding loops and blackholes\n\
       help      Show this message\n"
        .to_string()
}

/// Dispatches a parsed command line.
pub fn run(args: &ParsedArgs) -> Result<String, CommandError> {
    match args.command.as_str() {
        "generate" => generate(args),
        "replay" => replay(args),
        "whatif" => whatif(args),
        "audit" => audit(args),
        "help" | "--help" | "-h" => Ok(help()),
        other => Err(CommandError::Other(format!(
            "unknown command `{other}`; try `deltanet help`"
        ))),
    }
}

fn load_topology(path: &str) -> Result<Topology, CommandError> {
    let text = std::fs::read_to_string(path)?;
    topo_text::from_text(&text).map_err(|e| CommandError::Parse(format!("{path}: {e}")))
}

fn load_trace(path: &str, topo: &mut Topology) -> Result<Trace, CommandError> {
    let text = std::fs::read_to_string(path)?;
    Trace::parse(&text, topo).map_err(|e| CommandError::Parse(format!("{path}: {e}")))
}

/// `deltanet generate` — write a dataset to disk.
pub fn generate(args: &ParsedArgs) -> Result<String, CommandError> {
    let dataset = parse_dataset(args)?;
    let scale = parse_scale(args)?;
    let out_dir = args.require("out")?;
    let ds = workloads::build(dataset, scale);
    std::fs::create_dir_all(out_dir)?;
    let stem = dataset.name().to_ascii_lowercase().replace(' ', "_");
    let topo_path = Path::new(out_dir).join(format!("{stem}.topo"));
    let trace_path = Path::new(out_dir).join(format!("{stem}.trace"));
    std::fs::write(&topo_path, topo_text::to_text(&ds.topology.topology))?;
    std::fs::write(&trace_path, ds.trace.to_text(&ds.topology.topology))?;
    let row = ds.table2_row();
    Ok(format!(
        "wrote {} and {}\n{}: {} nodes, {} links, {} operations, peak {} rules\n",
        topo_path.display(),
        trace_path.display(),
        row.name,
        row.nodes,
        row.links,
        row.operations,
        row.peak_rules
    ))
}

/// `deltanet replay` — replay a trace through a checker with timing.
pub fn replay(args: &ParsedArgs) -> Result<String, CommandError> {
    let mut topo = load_topology(args.require("topo")?)?;
    let trace = load_trace(args.require("trace")?, &mut topo)?;
    let check_loops = !args.has_flag("no-loops");
    let checker_name = args.get_or("checker", "deltanet").to_string();
    let mut checker: Box<dyn Checker> = match checker_name.as_str() {
        "deltanet" => Box::new(DeltaNet::new(
            topo,
            DeltaNetConfig {
                check_loops_per_update: check_loops,
                ..Default::default()
            },
        )),
        "veriflow" | "veriflow-ri" => Box::new(VeriflowRi::new(
            topo,
            VeriflowConfig {
                check_loops_per_update: check_loops,
                ..Default::default()
            },
        )),
        other => {
            return Err(CommandError::Other(format!(
                "unknown checker `{other}` (expected deltanet | veriflow)"
            )))
        }
    };

    let mut timings = bench::Timings {
        micros: Vec::with_capacity(trace.len()),
    };
    let mut loops = 0usize;
    for op in trace.ops() {
        let start = Instant::now();
        let report = checker.apply(op);
        timings.micros.push(start.elapsed().as_secs_f64() * 1e6);
        if report.has_loop() {
            loops += 1;
        }
    }
    let summary = timings.summary();
    if let Some(json_path) = args.options.get("json") {
        use bench::json::Json;
        let mut fields = vec![
            ("schema", Json::str("deltanet-replay-v1")),
            ("checker", Json::str(checker.name())),
        ];
        // The summary keys are shared with the BENCH_*.json emitters.
        fields.extend(bench::experiments::summary_json(&summary));
        fields.extend([
            ("packet_classes", Json::int(checker.class_count())),
            ("rules", Json::int(checker.rule_count())),
            ("ops_with_loops", Json::int(loops)),
            ("memory_bytes", Json::int(checker.memory_bytes())),
        ]);
        std::fs::write(json_path, Json::obj(fields).render())?;
    }
    Ok(format!(
        "checker:            {}\n\
         operations:         {}\n\
         packet classes:     {}\n\
         rules installed:    {}\n\
         median update time: {:.1} us\n\
         average update time:{:.1} us\n\
         updates < 250 us:   {:.2}%\n\
         updates with loops: {loops}\n\
         estimated memory:   {:.1} MiB\n",
        checker.name(),
        trace.len(),
        checker.class_count(),
        checker.rule_count(),
        summary.median_us,
        summary.average_us,
        summary.pct_under_250us,
        checker.memory_bytes() as f64 / (1024.0 * 1024.0),
    ))
}

/// Builds the final data plane of a trace inside a Delta-net checker.
fn load_final_data_plane(args: &ParsedArgs) -> Result<DeltaNet, CommandError> {
    let mut topo = load_topology(args.require("topo")?)?;
    let trace = load_trace(args.require("trace")?, &mut topo)?;
    let mut net = DeltaNet::new(
        topo,
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    for rule in trace.final_data_plane() {
        net.insert_rule(rule);
    }
    Ok(net)
}

/// `deltanet whatif` — link-failure impact analysis on the final data plane.
pub fn whatif(args: &ParsedArgs) -> Result<String, CommandError> {
    let net = load_final_data_plane(args)?;
    let src: u32 = args
        .require("src")?
        .parse()
        .map_err(|_| CommandError::Other("--src must be a node id".to_string()))?;
    let dst: u32 = args
        .require("dst")?
        .parse()
        .map_err(|_| CommandError::Other("--dst must be a node id".to_string()))?;
    let link = net
        .topology()
        .link_between(
            netmodel::topology::NodeId(src),
            netmodel::topology::NodeId(dst),
        )
        .ok_or_else(|| CommandError::Other(format!("no link n{src} -> n{dst} in topology")))?;
    let start = Instant::now();
    let report = net.link_failure_impact(link, args.has_flag("loops"));
    let elapsed = start.elapsed();
    let mut out = format!(
        "what if link n{src} -> n{dst} fails? (answered in {:.1} us)\n\
         affected packet classes: {}\n\
         affected address ranges: {}\n\
         other links carrying affected traffic: {}\n",
        elapsed.as_secs_f64() * 1e6,
        report.affected_classes,
        report.affected_packets.len(),
        report.affected_links.len(),
    );
    for iv in report.affected_packets.iter().take(10) {
        out.push_str(&format!("  {iv}\n"));
    }
    if args.has_flag("loops") {
        out.push_str(&format!(
            "forwarding loops among affected flows: {}\n",
            report.violations.len()
        ));
    }
    Ok(out)
}

/// `deltanet audit` — full loop + blackhole audit of the final data plane.
pub fn audit(args: &ParsedArgs) -> Result<String, CommandError> {
    let net = load_final_data_plane(args)?;
    let loops = net.check_all_loops();
    let holes = blackholes::check_blackholes(&net);
    let mut out = format!(
        "rules: {}, atoms: {}\nforwarding loops: {}\nblackholes: {}\n\
         (note: nodes with no rules at all — e.g. external border routers — show up as\n\
          blackholes; add explicit drop/deliver rules there to silence them)\n",
        net.rule_count(),
        net.atom_count(),
        loops.len(),
        holes.len()
    );
    for v in loops.iter().chain(holes.iter()).take(20) {
        out.push_str(&format!("  {v}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    fn parsed(args: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("deltanet-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&parsed(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&parsed(&["frob"])).is_err());
    }

    #[test]
    fn generate_replay_whatif_audit_end_to_end() {
        let dir = temp_dir("e2e");
        let out = dir.to_str().unwrap().to_string();

        // generate
        let g = run(&parsed(&[
            "generate",
            "--dataset",
            "4switch",
            "--scale",
            "tiny",
            "--out",
            &out,
        ]))
        .unwrap();
        assert!(g.contains("4switch.topo"));
        let topo = dir.join("4switch.topo");
        let trace = dir.join("4switch.trace");
        assert!(topo.exists() && trace.exists());
        let topo = topo.to_str().unwrap().to_string();
        let trace = trace.to_str().unwrap().to_string();

        // replay with both checkers
        for (checker, reported_name) in [("deltanet", "delta-net"), ("veriflow", "veriflow-ri")] {
            let r = run(&parsed(&[
                "replay",
                "--topo",
                &topo,
                "--trace",
                &trace,
                "--checker",
                checker,
            ]))
            .unwrap();
            assert!(r.contains("median update time"), "{r}");
            assert!(r.contains(reported_name), "{r}");
        }

        // replay with --json writes the machine-readable summary too
        let json_path = dir.join("replay.json");
        let json_arg = json_path.to_str().unwrap().to_string();
        run(&parsed(&[
            "replay", "--topo", &topo, "--trace", &trace, "--json", &json_arg,
        ]))
        .unwrap();
        let json_text = std::fs::read_to_string(&json_path).unwrap();
        for key in ["deltanet-replay-v1", "median_us", "memory_bytes"] {
            assert!(json_text.contains(key), "missing {key} in:\n{json_text}");
        }

        // whatif on the ring link n0 -> n1
        let w = run(&parsed(&[
            "whatif", "--topo", &topo, "--trace", &trace, "--src", "0", "--dst", "1", "--loops",
        ]))
        .unwrap();
        assert!(w.contains("affected packet classes"), "{w}");

        // audit: the converged SDN-IP data plane is loop-free.
        let a = run(&parsed(&["audit", "--topo", &topo, "--trace", &trace])).unwrap();
        assert!(a.contains("forwarding loops: 0"), "{a}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_rejects_unknown_checker() {
        let dir = temp_dir("badchecker");
        let out = dir.to_str().unwrap().to_string();
        run(&parsed(&[
            "generate",
            "--dataset",
            "4switch",
            "--scale",
            "tiny",
            "--out",
            &out,
        ]))
        .unwrap();
        let topo = dir.join("4switch.topo").to_str().unwrap().to_string();
        let trace = dir.join("4switch.trace").to_str().unwrap().to_string();
        let err = run(&parsed(&[
            "replay",
            "--topo",
            &topo,
            "--trace",
            &trace,
            "--checker",
            "magic",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown checker"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn whatif_rejects_missing_link() {
        let dir = temp_dir("badlink");
        let out = dir.to_str().unwrap().to_string();
        run(&parsed(&[
            "generate",
            "--dataset",
            "4switch",
            "--scale",
            "tiny",
            "--out",
            &out,
        ]))
        .unwrap();
        let topo = dir.join("4switch.topo").to_str().unwrap().to_string();
        let trace = dir.join("4switch.trace").to_str().unwrap().to_string();
        let err = run(&parsed(&[
            "whatif", "--topo", &topo, "--trace", &trace, "--src", "0", "--dst", "99",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no link"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_are_reported() {
        let err = run(&parsed(&[
            "replay",
            "--topo",
            "/nonexistent.topo",
            "--trace",
            "/nonexistent.trace",
        ]))
        .unwrap_err();
        assert!(matches!(err, CommandError::Io(_)));
    }
}
