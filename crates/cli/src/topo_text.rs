//! A line-oriented text format for topologies.
//!
//! Together with the trace format of [`netmodel::trace`], this lets a
//! dataset (topology + operations) live as two plain text files that can be
//! replayed by anyone — the same spirit as the paper's published datasets
//! (§4.2: "we organize our data sets as text files ... so all operations can
//! be easily replayed").
//!
//! Format, one declaration per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! node <name>          # nodes are numbered in order of appearance
//! link <src-id> <dst-id>
//! ```

use netmodel::topology::{NodeId, Topology};
use std::fmt;

/// Errors produced when parsing a textual topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TopoParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TopoParseError {}

/// Serializes a topology to the text format. Drop links and the drop sink
/// are not serialized: they are re-created on demand when a trace containing
/// drop rules is parsed against the topology.
pub fn to_text(topo: &Topology) -> String {
    let mut out = String::from("# delta-net topology: node <name> | link <src-id> <dst-id>\n");
    for node in topo.nodes() {
        if topo.is_drop_node(node) {
            continue;
        }
        out.push_str(&format!("node {}\n", topo.node_name(node)));
    }
    for link in topo.links() {
        if topo.is_drop_link(link.id) || topo.is_drop_node(link.src) {
            continue;
        }
        out.push_str(&format!("link {} {}\n", link.src.0, link.dst.0));
    }
    out
}

/// Parses the text format produced by [`to_text`].
pub fn from_text(text: &str) -> Result<Topology, TopoParseError> {
    let mut topo = Topology::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| TopoParseError {
            line: line_no,
            message,
        };
        let mut parts = line.split_whitespace();
        match parts.next().unwrap() {
            "node" => {
                let name = parts
                    .next()
                    .ok_or_else(|| err("missing node name".to_string()))?;
                topo.add_node(name);
            }
            "link" => {
                let src: u32 = parts
                    .next()
                    .ok_or_else(|| err("missing link source".to_string()))?
                    .parse()
                    .map_err(|_| err("bad link source".to_string()))?;
                let dst: u32 = parts
                    .next()
                    .ok_or_else(|| err("missing link destination".to_string()))?
                    .parse()
                    .map_err(|_| err("bad link destination".to_string()))?;
                if (src as usize) >= topo.node_count() || (dst as usize) >= topo.node_count() {
                    return Err(err(format!("link {src}->{dst} references unknown node")));
                }
                topo.add_link(NodeId(src), NodeId(dst));
            }
            other => return Err(err(format!("unknown declaration `{other}`"))),
        }
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure() {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 3);
        topo.add_bidi_link(n[0], n[1]);
        topo.add_link(n[1], n[2]);
        // Drop machinery must not leak into the serialized form.
        topo.drop_link(n[0]);

        let text = to_text(&topo);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.node_count(), 3);
        assert_eq!(parsed.link_count(), 3);
        assert_eq!(parsed.node_name(n[1]), "s1");
        assert!(parsed.link_between(n[0], n[1]).is_some());
        assert!(parsed.link_between(n[1], n[2]).is_some());
        assert!(parsed.link_between(n[2], n[1]).is_none());
    }

    #[test]
    fn parse_errors_have_line_numbers() {
        let err = from_text("node a\nlink 0 5\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown node"));
        let err = from_text("frobnicate\n").unwrap_err();
        assert!(err.message.contains("unknown declaration"));
        let err = from_text("link 0\n").unwrap_err();
        assert!(err.message.contains("missing link destination"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let topo = from_text("# hi\n\nnode a\nnode b\nlink 0 1\n").unwrap();
        assert_eq!(topo.node_count(), 2);
        assert_eq!(topo.link_count(), 1);
    }
}
