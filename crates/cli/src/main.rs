//! The `deltanet` command-line tool.
//!
//! See `deltanet help` (or [`deltanet_cli::commands::help`]) for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match deltanet_cli::args::ParsedArgs::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", deltanet_cli::commands::help());
            std::process::exit(2);
        }
    };
    match deltanet_cli::commands::run(&parsed) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
