//! # bench — the experiment harness for every table and figure
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (§4.3, appendices C–D) against the scaled datasets from the
//! `workloads` crate; the Criterion benches in `benches/` cover the
//! micro-benchmarks and ablations. This library holds the shared pieces:
//! per-operation timing, summary statistics (median / average / percentage
//! under 250 µs), CDF construction, and plain-text table formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use netmodel::checker::{Checker, UpdateReport};
use netmodel::trace::Op;
use std::time::Instant;

pub mod experiments;
pub mod json;
pub mod ownerbench;

/// Per-operation wall-clock times, in microseconds.
#[derive(Clone, Debug, Default)]
pub struct Timings {
    /// One entry per replayed operation, in microseconds.
    pub micros: Vec<f64>,
}

impl Timings {
    /// Number of measured operations.
    pub fn len(&self) -> usize {
        self.micros.len()
    }

    /// Whether no operation was measured.
    pub fn is_empty(&self) -> bool {
        self.micros.is_empty()
    }

    /// Summary statistics over the measured operations.
    pub fn summary(&self) -> Summary {
        if self.micros.is_empty() {
            return Summary::default();
        }
        let mut sorted = self.micros.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let total: f64 = sorted.iter().sum();
        let average = total / sorted.len() as f64;
        let under_250 = sorted.iter().filter(|&&t| t < 250.0).count();
        Summary {
            count: sorted.len(),
            median_us: median,
            average_us: average,
            max_us: *sorted.last().unwrap(),
            pct_under_250us: 100.0 * under_250 as f64 / sorted.len() as f64,
            total_seconds: total / 1e6,
        }
    }

    /// The empirical CDF sampled at the given time points (µs): for each
    /// point, the fraction of operations that completed within it.
    pub fn cdf(&self, points: &[f64]) -> Vec<(f64, f64)> {
        let mut sorted = self.micros.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        points
            .iter()
            .map(|&p| {
                let under = sorted.partition_point(|&t| t <= p);
                (p, under as f64 / sorted.len().max(1) as f64)
            })
            .collect()
    }
}

/// Summary statistics in the shape of Table 3's rows.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of operations measured.
    pub count: usize,
    /// Median per-operation time (µs).
    pub median_us: f64,
    /// Average per-operation time (µs).
    pub average_us: f64,
    /// Maximum per-operation time (µs).
    pub max_us: f64,
    /// Percentage of operations completing in under 250 µs.
    pub pct_under_250us: f64,
    /// Total wall-clock time (seconds).
    pub total_seconds: f64,
}

/// The result of replaying a trace against a checker with per-op timing.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// Per-operation times.
    pub timings: Timings,
    /// Number of operations whose per-update check reported a loop.
    pub ops_with_loops: usize,
    /// The maximum `affected_classes` over all operations (Appendix C).
    pub max_affected_classes: usize,
    /// Number of packet classes maintained at the end (atoms / max ECs).
    pub final_class_count: usize,
    /// Estimated memory at the end of the replay (bytes).
    pub final_memory_bytes: usize,
}

/// Replays `ops` against `checker`, timing each operation (which includes
/// the per-update property check the checker is configured with).
pub fn replay_timed<C: Checker>(checker: &mut C, ops: &[Op]) -> ReplayResult {
    let mut timings = Timings {
        micros: Vec::with_capacity(ops.len()),
    };
    let mut ops_with_loops = 0usize;
    let mut max_affected = 0usize;
    for op in ops {
        let start = Instant::now();
        let report: UpdateReport = checker.apply(op);
        let elapsed = start.elapsed();
        timings.micros.push(elapsed.as_secs_f64() * 1e6);
        if report.has_loop() {
            ops_with_loops += 1;
        }
        max_affected = max_affected.max(report.affected_classes);
    }
    ReplayResult {
        timings,
        ops_with_loops,
        max_affected_classes: max_affected,
        final_class_count: checker.class_count(),
        final_memory_bytes: checker.memory_bytes(),
    }
}

/// Formats a number with thousands separators (for table output).
pub fn with_commas(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats bytes as a human-readable MB string.
pub fn megabytes(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Renders a plain-text table: a header row and aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push_str(&format!(
        "{}\n",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    ));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Parses the `--scale tiny|small|medium` command-line argument (or the
/// `DELTANET_SCALE` environment variable), defaulting to `small`.
pub fn scale_from_args() -> workloads::ScaleProfile {
    let scale = string_option_from_args("scale").or_else(|| std::env::var("DELTANET_SCALE").ok());
    match scale.as_deref() {
        Some("tiny") => workloads::ScaleProfile::Tiny,
        Some("medium") => workloads::ScaleProfile::Medium,
        Some("small") | None => workloads::ScaleProfile::Small,
        Some(other) => {
            eprintln!("unknown scale `{other}`, using `small`");
            workloads::ScaleProfile::Small
        }
    }
}

/// Parses the `--json <path>` command-line argument of the experiment
/// binaries: when present, the machine-readable report is written there.
pub fn json_path_from_args() -> Option<String> {
    string_option_from_args("json")
}

/// Parses a `--<name> <usize>` command-line argument of the experiment
/// binaries: `Ok(None)` when absent, `Err` (with the offending value) when
/// present but unparsable, so a typo cannot silently fall back to a default.
pub fn usize_from_args(name: &str) -> Result<Option<usize>, String> {
    match string_option_from_args(name) {
        None => Ok(None),
        Some(raw) => raw.trim().parse().map(Some).map_err(|_| raw),
    }
}

/// Parses a `--<name> a,b,c` comma-separated list of non-negative integers:
/// `Ok(None)` when absent, `Err` (with the raw value) when present but any
/// element fails to parse.
pub fn usize_list_from_args(name: &str) -> Result<Option<Vec<usize>>, String> {
    match string_option_from_args(name) {
        None => Ok(None),
        Some(raw) => raw
            .split(',')
            .map(|part| part.trim().parse::<usize>().ok())
            .collect::<Option<Vec<usize>>>()
            .map(Some)
            .ok_or(raw),
    }
}

/// Extracts `--name value` / `--name=value` from the process arguments.
fn string_option_from_args(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    let mut value: Option<String> = None;
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    while let Some(a) = args.next() {
        if a == flag {
            value = args.next();
        } else if let Some(rest) = a.strip_prefix(&prefix) {
            value = Some(rest.to_string());
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltanet::DeltaNet;
    use netmodel::rule::{Rule, RuleId};
    use netmodel::topology::Topology;

    #[test]
    fn summary_statistics() {
        let t = Timings {
            micros: vec![1.0, 2.0, 3.0, 4.0, 1000.0],
        };
        let s = t.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.median_us, 3.0);
        assert!((s.average_us - 202.0).abs() < 1e-9);
        assert_eq!(s.max_us, 1000.0);
        assert_eq!(s.pct_under_250us, 80.0);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn empty_timings_summary_is_zero() {
        let s = Timings::default().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.average_us, 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let t = Timings {
            micros: vec![1.0, 5.0, 10.0, 50.0],
        };
        let cdf = t.cdf(&[0.5, 1.0, 7.0, 100.0]);
        assert_eq!(cdf[0].1, 0.0);
        assert_eq!(cdf[1].1, 0.25);
        assert_eq!(cdf[2].1, 0.5);
        assert_eq!(cdf[3].1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn replay_timed_counts_loops() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let ab = topo.add_link(a, b);
        let ba = topo.add_link(b, a);
        let mut net = DeltaNet::with_topology(topo);
        let ops = vec![
            Op::Insert(Rule::forward(
                RuleId(1),
                "10.0.0.0/8".parse().unwrap(),
                1,
                a,
                ab,
            )),
            Op::Insert(Rule::forward(
                RuleId(2),
                "10.0.0.0/8".parse().unwrap(),
                1,
                b,
                ba,
            )),
            Op::Remove(RuleId(2)),
        ];
        let result = replay_timed(&mut net, &ops);
        assert_eq!(result.timings.len(), 3);
        assert_eq!(result.ops_with_loops, 1);
        assert!(result.max_affected_classes >= 1);
        assert!(result.final_memory_bytes > 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(with_commas(1234567), "1,234,567");
        assert_eq!(with_commas(42), "42");
        assert_eq!(megabytes(10 * 1024 * 1024), "10.0");
        let table = render_table(&["a", "b"], &[vec!["1".to_string(), "2".to_string()]]);
        assert!(table.contains("a"));
        assert!(table.contains("1"));
        assert!(table.lines().count() >= 3);
    }
}
