//! A dependency-free JSON value builder for the machine-readable bench
//! reports (`BENCH_*.json`).
//!
//! The build environment resolves `serde` to an offline stub, so the bench
//! crate writes JSON by hand through this tiny tree builder instead. Output
//! is deterministic (object keys keep insertion order) and pretty-printed
//! with two-space indentation so committed baselines diff cleanly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for |n| ≤ 2^53).
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// A float rounded to three decimals — bench timings below a nanosecond
    /// of precision are noise and churn the committed baselines.
    pub fn ms(x: f64) -> Json {
        Json::Num((x * 1000.0).round() / 1000.0)
    }

    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Renders the value as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else if x.fract() == 0.0 && x.abs() < 9e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::int(42).render(), "42\n");
        assert_eq!(Json::Num(1.5).render(), "1.5\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::ms(1.23456).render(), "1.235\n");
        assert_eq!(Json::str("hi").render(), "\"hi\"\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\"\n"
        );
    }

    #[test]
    fn nested_structure_is_pretty_printed() {
        let v = Json::obj([
            ("name", Json::str("bench")),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<String>([])),
            ("runs", Json::arr([Json::int(1), Json::int(2)])),
            ("meta", Json::obj([("ok", Json::Bool(true))])),
        ]);
        let text = v.render();
        assert!(text.contains("\"name\": \"bench\""));
        assert!(text.contains("\"empty_arr\": []"));
        assert!(text.contains("\"empty_obj\": {}"));
        assert!(text.contains("  \"runs\": [\n    1,\n    2\n  ]"));
        // Valid-ish: balanced braces and a trailing newline.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn whole_floats_render_as_integers() {
        assert_eq!(Json::Num(3.0).render(), "3\n");
        assert_eq!(Json::ms(2.0000001).render(), "2\n");
    }
}
