//! Runs the incremental multi-field violation-monitoring experiment: the
//! monitored ACL dst × src churn on the stand-alone engine, with the
//! scoped slice repair timed against the apply + full cross-field rescan
//! baseline it replaces. The maintained state is audited against the full
//! scans after *every* op (the `cross_checks` / `mismatches` /
//! `counts_match` fields), and the single-field flapping-churn replay runs
//! alongside to pin that the fast path is untaxed.
//!
//! Usage:
//!   `cargo run -p bench --release --bin multifield_monitor [-- --scale tiny|small|medium] [--json <path>]`
//!
//! Without `--json`, the machine-readable report is printed to stdout; the
//! same object appears as the `multifield_monitor` section of
//! `all_experiments --json`. The committed `BENCH_PR9.json` is produced by
//! this binary.

fn main() {
    let scale = bench::scale_from_args();
    let report = bench::experiments::multifield_monitor_json(scale).render();
    if let Some(path) = bench::json_path_from_args() {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote multifield_monitor report ({scale:?} scale) to {path}");
    } else {
        println!("{report}");
    }
}
