//! Regenerates Table 3: per-update processing time of Delta-net (rule
//! insertion/removal plus forwarding-loop check) across all datasets.
//!
//! Usage: `cargo run -p bench --release --bin table3 [-- --scale tiny|small|medium]`

fn main() {
    let scale = bench::scale_from_args();
    let (text, _) = bench::experiments::table3(scale);
    println!("{text}");
}
