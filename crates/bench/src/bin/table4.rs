//! Regenerates Table 4: average time to answer the "what if this link
//! fails?" query for Veriflow-RI, Delta-net, and Delta-net with loop checks.
//!
//! Usage: `cargo run -p bench --release --bin table4 [-- --scale tiny|small|medium]`

fn main() {
    let scale = bench::scale_from_args();
    println!("{}", bench::experiments::table4(scale));
}
