//! Regenerates Appendix C: the maximum number of packet classes affected by
//! a single rule insertion on the RF 1755 dataset (Veriflow-RI equivalence
//! classes vs Delta-net atoms).
//!
//! Usage: `cargo run -p bench --release --bin appendix_c [-- --scale tiny|small|medium]`

fn main() {
    let scale = bench::scale_from_args();
    println!("{}", bench::experiments::appendix_c(scale));
}
