//! Runs the incremental violation-monitoring experiment on the
//! flapping-prefix churn workload: per-update monitor maintenance vs full
//! loop + blackhole rescans after every operation, with the maintained
//! state audited against the full scans after every op (the `mismatches` /
//! `counts_match` fields).
//!
//! Usage:
//!   `cargo run -p bench --release --bin monitor [-- --scale tiny|small|medium] [--json <path>]`
//!
//! Without `--json`, the machine-readable report is printed to stdout; the
//! same object appears as the `monitor` section of `all_experiments --json`.
//! The committed `BENCH_PR5.json` is produced by this binary.

fn main() {
    let scale = bench::scale_from_args();
    let report = bench::experiments::monitor_churn_json(scale).render();
    if let Some(path) = bench::json_path_from_args() {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote monitor report ({scale:?} scale) to {path}");
    } else {
        println!("{report}");
    }
}
