//! Measures the verification daemon's ingest overhead on the
//! flapping-prefix churn workload: the same trace is applied (a) directly
//! through [`ShardedDeltaNet::apply_batch`] in-process and (b) as ndjson
//! `batch` requests over a loopback TCP connection to a live [`Server`],
//! waiting for every per-op ack. Both runs use the identical engine shape
//! (shards, window, monitor on), so the difference is exactly the service
//! layer: protocol encode/decode, the ingest queue, and the ack round
//! trips.
//!
//! Usage:
//!   `cargo run -p bench --release --bin service_churn [-- --scale tiny|small|medium] [--json <path>]`
//!
//! The committed `BENCH_PR10.json` is produced by this binary; its
//! acceptance is `acked_ops_per_sec` within 2x of `inproc_ops_per_sec`
//! (`slowdown <= 2`).

use bench::experiments::meta_json;
use bench::json::Json;
use deltanet::{DeltaNetConfig, Parallelism, ShardedDeltaNet};
use netmodel::topology::{NodeId, Topology};
use service::json as wire;
use service::proto::batch_request;
use service::server::{Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::time::Instant;

const SHARDS: usize = 2;
const WINDOW: usize = 128;

fn main() {
    let scale = bench::scale_from_args();
    let config = scale.churn_config();
    let topology = workloads::churn::churn_topology();
    let churn = workloads::churn::flapping_churn(&topology, config);
    let ops = churn.trace.ops();
    let engine = DeltaNetConfig {
        monitor_violations: true,
        ..DeltaNetConfig::default()
    };

    // The daemon pre-creates every node's drop link; mirror that so both
    // engines verify the identical plane.
    let mut prepared = topology.topology.clone();
    let nodes: Vec<NodeId> = prepared.nodes().collect();
    for node in nodes {
        prepared.drop_link(node);
    }

    // (a) In-process baseline: the same windows apply_batch would see.
    let mut net =
        ShardedDeltaNet::with_parallelism(prepared.clone(), engine, SHARDS, Parallelism::auto());
    net.enable_monitor();
    let start = Instant::now();
    for window in ops.chunks(WINDOW) {
        net.apply_batch(window)
            .expect("churn trace replays cleanly");
    }
    let inproc_seconds = start.elapsed().as_secs_f64();
    let inproc_violations = net.active_violations().map_or(0, |v| v.len());
    drop(net);

    // (b) The daemon over loopback, one `batch` request per window, every
    // per-op ack awaited.
    let server = Server::bind(
        "127.0.0.1:0",
        topology.topology.clone(),
        ServiceConfig {
            engine,
            shards: SHARDS,
            window: WINDOW,
            ..ServiceConfig::default()
        },
    )
    .expect("bind daemon");
    let addr = server.local_addr().expect("local addr");
    let server_thread = std::thread::spawn(move || server.run());

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;

    // The requests are prepared up front (the bench measures the daemon's
    // ingest, not this client's JSON formatter) and streamed from a writer
    // thread so acks are drained concurrently — the pipelined shape a real
    // controller uses. Ack lines are checked with cheap scans here; the
    // deep cross-check is the `stats` comparison below.
    let topo: &Topology = &topology.topology;
    let requests: Vec<String> = ops
        .chunks(WINDOW)
        .enumerate()
        .map(|(i, window)| batch_request(i as u64, window, topo).render())
        .collect();
    let batches = requests.len();

    let start = Instant::now();
    let feeder = std::thread::spawn(move || {
        let mut out = std::io::BufWriter::new(&mut writer);
        for line in &requests {
            writeln!(out, "{line}").expect("write request");
        }
        out.flush().expect("flush requests");
        drop(out);
        writer
    });
    let mut acked = 0usize;
    let mut reply = String::new();
    for _ in 0..batches {
        reply.clear();
        reader.read_line(&mut reply).expect("read reply");
        assert!(reply.contains("\"ok\": true"), "batch rejected: {reply}");
        acked += reply.matches("\"at\": ").count();
    }
    let service_seconds = start.elapsed().as_secs_f64();
    let mut writer = feeder.join().expect("feeder thread");
    let mut request = |line: &str| -> wire::Json {
        writeln!(writer, "{line}").expect("write request");
        writer.flush().expect("flush request");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        wire::parse(reply.trim_end()).expect("reply is json")
    };
    let stats = request(r#"{"id": 900000, "op": "stats"}"#);
    let service_violations = stats
        .get("violations")
        .and_then(wire::Json::as_u64)
        .expect("stats violations");
    let service_ops = stats
        .get("ops_applied")
        .and_then(wire::Json::as_u64)
        .expect("stats ops_applied");
    let bye = request(r#"{"id": 900001, "op": "shutdown"}"#);
    assert_eq!(bye.get("ok").and_then(wire::Json::as_bool), Some(true));
    server_thread
        .join()
        .expect("server thread")
        .expect("clean shutdown");

    assert_eq!(acked, ops.len(), "every op must be individually acked");
    assert_eq!(service_ops as usize, ops.len());
    assert_eq!(
        service_violations as usize, inproc_violations,
        "daemon and in-process engine disagree on the final plane"
    );

    let n = ops.len() as f64;
    let inproc_ops_per_sec = n / inproc_seconds;
    let acked_ops_per_sec = n / service_seconds;
    let report = Json::obj(vec![
        ("schema", Json::str("deltanet-service-churn-v1")),
        (
            "meta",
            meta_json(
                scale,
                vec![
                    ("dataset", Json::str("flapping churn")),
                    ("stable_prefixes", Json::int(config.stable_prefixes)),
                    ("flapping_prefixes", Json::int(config.flapping_prefixes)),
                    ("cycles", Json::int(config.cycles)),
                    ("seed", Json::int(config.seed as usize)),
                    ("shards", Json::int(SHARDS)),
                    ("window", Json::int(WINDOW)),
                ],
            ),
        ),
        ("operations", Json::int(ops.len())),
        ("final_violations", Json::int(inproc_violations)),
        ("inproc_seconds", Json::ms(inproc_seconds)),
        ("inproc_ops_per_sec", Json::ms(inproc_ops_per_sec)),
        ("service_seconds", Json::ms(service_seconds)),
        ("acked_ops_per_sec", Json::ms(acked_ops_per_sec)),
        ("slowdown", Json::ms(inproc_ops_per_sec / acked_ops_per_sec)),
        (
            "within_2x",
            Json::Bool(acked_ops_per_sec * 2.0 >= inproc_ops_per_sec),
        ),
    ])
    .render();

    if let Some(path) = bench::json_path_from_args() {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote service churn report ({scale:?} scale) to {path}");
    } else {
        println!("{report}");
    }
}
