//! Runs the persistence experiment on the flapping-prefix churn workload:
//! the write-path overhead of the append-only delta log at every
//! durability level (buffered/flush/fsync vs unlogged µs/op), plus an
//! end-to-end audit — recover from the half-way snapshot + log tail and
//! compare against the live engine (`round_trip_equal`), prove damaged
//! artifacts fail with clean errors (`truncated_log_error`,
//! `corrupted_snapshot_error`), and time a torn-tail checkpoint recovery
//! (`recovery_ms`, `repaired_tail_ops`, `recovery_bit_identical`).
//!
//! Usage:
//!   `cargo run -p bench --release --bin persist [-- --scale tiny|small|medium] [--json <path>]`
//!
//! Without `--json`, the machine-readable report is printed to stdout; the
//! same object appears as the `persist` section of `all_experiments --json`.
//! The committed `BENCH_PR6.json` / `BENCH_PR7.json` are produced by this
//! binary.

fn main() {
    let scale = bench::scale_from_args();
    let report = bench::experiments::persist_churn_json(scale).render();
    if let Some(path) = bench::json_path_from_args() {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote persist report ({scale:?} scale) to {path}");
    } else {
        println!("{report}");
    }
}
