//! Regenerates Table 5 (Appendix D): memory usage of Delta-net vs
//! Veriflow-RI on the consistent data planes.
//!
//! Usage: `cargo run -p bench --release --bin table5 [-- --scale tiny|small|medium]`

fn main() {
    let scale = bench::scale_from_args();
    println!("{}", bench::experiments::table5(scale));
}
