//! Runs the multi-field header-space experiment: an ACL-style workload
//! (destination-routed forwarding plus higher-priority deny rules
//! constrained on a secondary source field) replayed through the
//! single-field engine and each sharded variant, with periodic
//! differential checks of the full scan against the brute-force
//! multi-field oracle and the incremental monitor (the `mismatches` /
//! `counts_match` fields).
//!
//! Usage:
//!   `cargo run -p bench --release --bin multifield [-- --scale tiny|small|medium] [--json <path>]`
//!
//! Without `--json`, the machine-readable report is printed to stdout.

fn main() {
    let scale = bench::scale_from_args();
    let report = bench::experiments::multifield_json(scale).render();
    if let Some(path) = bench::json_path_from_args() {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote multifield report ({scale:?} scale) to {path}");
    } else {
        println!("{report}");
    }
}
