//! Runs the flapping-prefix churn experiment: the memory trajectory of the
//! engine with atom compaction off vs on (baseline → after churn → after a
//! final compaction pass).
//!
//! Usage:
//!   `cargo run -p bench --release --bin churn [-- --scale tiny|small|medium] [--json <path>]`
//!
//! Without `--json`, the machine-readable report is printed to stdout; the
//! same object appears as the `churn` section of `all_experiments --json`.

fn main() {
    let scale = bench::scale_from_args();
    let report = bench::experiments::churn_json(scale).render();
    if let Some(path) = bench::json_path_from_args() {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote churn report ({scale:?} scale) to {path}");
    } else {
        println!("{report}");
    }
}
