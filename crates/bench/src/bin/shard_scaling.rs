//! Runs the shard-scaling experiment: the Berkeley and churn update traces
//! applied through `ShardedDeltaNet::apply_batch` at each requested shard
//! count, reporting update throughput, the speedup relative to the first
//! shard count, and per-shard atom/byte occupancy.
//!
//! Usage:
//!   `cargo run -p bench --release --bin shard_scaling [-- --scale tiny|small|medium]
//!    [--shards 1,2,4,8] [--batch 256] [--json <path>]`
//!
//! The committed `BENCH_PR4.json` baseline is produced by this binary; the
//! report records `available_parallelism`, so a flat curve captured on a
//! small machine is distinguishable from a scaling failure.

fn main() {
    let scale = bench::scale_from_args();
    let shard_counts = bench::usize_list_from_args("shards")
        .unwrap_or_else(|raw| {
            eprintln!("--shards expects a comma-separated list of integers, got `{raw}`");
            std::process::exit(1);
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let batch = bench::usize_from_args("batch")
        .unwrap_or_else(|raw| {
            eprintln!("--batch expects an integer, got `{raw}`");
            std::process::exit(1);
        })
        .unwrap_or(256);
    if shard_counts.is_empty() || shard_counts.contains(&0) || batch == 0 {
        eprintln!("--shards needs a comma-separated list of positive counts, --batch >= 1");
        std::process::exit(1);
    }
    let report = bench::experiments::shard_scaling_json(scale, &shard_counts, batch).render();
    if let Some(path) = bench::json_path_from_args() {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote shard-scaling report ({scale:?} scale, shards {shard_counts:?}) to {path}");
    } else {
        println!("{report}");
    }
}
