//! Regenerates Figure 8: the CDF of combined per-update processing time
//! (rule update + loop check), emitted as CSV plus an ASCII table.
//!
//! Usage: `cargo run -p bench --release --bin fig8 [-- --scale tiny|small|medium]`

fn main() {
    let scale = bench::scale_from_args();
    let (_, rows) = bench::experiments::table3(scale);
    println!("{}", bench::experiments::fig8(&rows));
}
