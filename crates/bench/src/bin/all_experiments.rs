//! Runs every experiment (Tables 2–5, Figure 8, Appendix C) in sequence and
//! prints the combined report — the full evaluation report in one run.
//!
//! Usage:
//!   `cargo run -p bench --release --bin all_experiments [-- --scale tiny|small|medium]`
//!
//! With `--json <path>` the machine-readable perf report (the `updates`
//! replay, the isolated rule-insert hot path, and the old-vs-new owner
//! microbenchmark) is written to `<path>` instead — this is how the
//! committed `BENCH_*.json` baselines are regenerated:
//!   `cargo run -p bench --release --bin all_experiments -- --json out.json`

fn main() {
    let scale = bench::scale_from_args();
    if let Some(path) = bench::json_path_from_args() {
        let report = bench::experiments::json_report(scale).render();
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote perf report ({scale:?} scale) to {path}");
    } else {
        println!("{}", bench::experiments::all_experiments(scale));
    }
}
