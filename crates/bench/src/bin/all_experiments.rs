//! Runs every experiment (Tables 2–5, Figure 8, Appendix C) in sequence and
//! prints the combined report — the full evaluation report in one run.
//!
//! Usage: `cargo run -p bench --release --bin all_experiments [-- --scale tiny|small|medium]`

fn main() {
    let scale = bench::scale_from_args();
    println!("{}", bench::experiments::all_experiments(scale));
}
