//! Regenerates Table 2: the dataset inventory (nodes, links, operations).
//!
//! Usage: `cargo run -p bench --release --bin table2 [-- --scale tiny|small|medium]`

fn main() {
    let scale = bench::scale_from_args();
    println!("{}", bench::experiments::table2(scale));
}
