//! The experiment implementations behind each table/figure binary.
//!
//! Every function builds the required datasets at the requested
//! [`ScaleProfile`], runs the measurement, and returns a plain-text report
//! that mirrors the corresponding table or figure of the paper. The binaries
//! in `src/bin/` are thin wrappers; `all_experiments` chains everything and
//! is what the `all_experiments` report is produced from.

use crate::{megabytes, render_table, replay_timed, with_commas, Timings};
use deltanet::{DeltaNet, DeltaNetConfig};
use netmodel::checker::Checker;
use netmodel::rule::Rule;
use netmodel::topology::LinkId;
use netmodel::trace::Op;
use std::time::Instant;
use veriflow_ri::{VeriflowConfig, VeriflowRi};
use workloads::{build, build_all, Dataset, DatasetId, ScaleProfile};

/// The consistent data plane used by the what-if experiments (§4.3.2): for
/// the synthetic and 4Switch datasets, all rule insertions; for the Airtel
/// datasets, the snapshot left after the whole trace (failures recovered).
pub fn data_plane_rules(ds: &Dataset) -> Vec<Rule> {
    match ds.id {
        DatasetId::Airtel1 | DatasetId::Airtel2 => ds.trace.final_data_plane(),
        _ => ds
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Insert(r) => Some(*r),
                Op::Remove(_) => None,
            })
            .collect(),
    }
}

/// Loads a data plane into a Delta-net checker with per-update checks off.
pub fn load_deltanet(ds: &Dataset, rules: &[Rule]) -> DeltaNet {
    let mut net = DeltaNet::new(
        ds.topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    for r in rules {
        net.insert_rule(*r);
    }
    net
}

/// Loads a data plane into a Veriflow-RI checker with per-update checks off.
pub fn load_veriflow(ds: &Dataset, rules: &[Rule]) -> VeriflowRi {
    let mut vf = VeriflowRi::new(
        ds.topology.topology.clone(),
        VeriflowConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    for r in rules {
        vf.insert_rule(*r);
    }
    vf
}

/// **Table 2** — dataset sizes (nodes, links, operations).
pub fn table2(scale: ScaleProfile) -> String {
    let datasets = build_all(scale);
    let rows: Vec<Vec<String>> = datasets
        .iter()
        .map(|ds| {
            let row = ds.table2_row();
            vec![
                row.name,
                with_commas(row.nodes),
                with_commas(row.links),
                with_commas(row.operations),
                with_commas(row.peak_rules),
            ]
        })
        .collect();
    format!(
        "Table 2: Data sets used for evaluating Delta-net (scale: {scale:?})\n\n{}",
        render_table(
            &["Data set", "Nodes", "Max Links", "Operations", "Peak rules"],
            &rows
        )
    )
}

/// The per-dataset measurement behind Table 3 and Figure 8.
pub struct Table3Row {
    /// Dataset name.
    pub name: String,
    /// Total atoms after the replay.
    pub atoms: usize,
    /// Per-operation timing of Delta-net (update + loop check).
    pub timings: Timings,
    /// Operations that reported at least one forwarding loop.
    pub ops_with_loops: usize,
}

/// Runs Delta-net (with per-update loop checking) over every dataset.
pub fn run_table3(scale: ScaleProfile) -> Vec<Table3Row> {
    build_all(scale)
        .into_iter()
        .map(|ds| {
            let mut net = DeltaNet::new(ds.topology.topology.clone(), DeltaNetConfig::default());
            let result = replay_timed(&mut net, ds.trace.ops());
            Table3Row {
                name: ds.id.name().to_string(),
                atoms: net.atom_count(),
                timings: result.timings,
                ops_with_loops: result.ops_with_loops,
            }
        })
        .collect()
}

/// **Table 3** — total atoms, median/average per-update processing time and
/// the percentage of updates under 250 µs, per dataset.
pub fn table3(scale: ScaleProfile) -> (String, Vec<Table3Row>) {
    let rows = run_table3(scale);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let s = r.timings.summary();
            vec![
                r.name.clone(),
                with_commas(r.atoms),
                format!("{:.1}", s.median_us),
                format!("{:.1}", s.average_us),
                format!("{:.1}%", s.pct_under_250us),
                with_commas(s.count),
                with_commas(r.ops_with_loops),
            ]
        })
        .collect();
    let text = format!(
        "Table 3: Delta-net rule insertions and removals, incl. loop check (scale: {scale:?})\n\n{}",
        render_table(
            &[
                "Data set",
                "Total atoms",
                "Median (us)",
                "Average (us)",
                "< 250us",
                "Operations",
                "Ops w/ loops"
            ],
            &table_rows
        )
    );
    (text, rows)
}

/// **Figure 8** — the CDF of per-update processing times, as CSV plus an
/// ASCII rendering.
pub fn fig8(rows: &[Table3Row]) -> String {
    let points: Vec<f64> = (0..=50).map(|i| 10f64.powf(i as f64 * 0.1)).collect(); // 1 µs .. 100 ms
    let mut out = String::from("Figure 8: CDF of per-update processing time (microseconds)\n\n");
    out.push_str("CSV (one column per dataset):\nmicros");
    for r in rows {
        out.push_str(&format!(",{}", r.name.replace(' ', "")));
    }
    out.push('\n');
    let cdfs: Vec<Vec<(f64, f64)>> = rows.iter().map(|r| r.timings.cdf(&points)).collect();
    for (i, &p) in points.iter().enumerate() {
        out.push_str(&format!("{p:.1}"));
        for cdf in &cdfs {
            out.push_str(&format!(",{:.4}", cdf[i].1));
        }
        out.push('\n');
    }
    // ASCII plot: one row per dataset at selected percent-complete marks.
    out.push_str("\nASCII CDF (fraction of updates completed within t):\n");
    let marks = [
        1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 10_000.0,
    ];
    let mut table_rows = Vec::new();
    for r in rows {
        let cdf = r.timings.cdf(&marks);
        let mut row = vec![r.name.clone()];
        row.extend(cdf.iter().map(|(_, f)| format!("{:.2}", f)));
        table_rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Data set".to_string())
        .chain(marks.iter().map(|m| format!("{m}us")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    out.push_str(&render_table(&header_refs, &table_rows));
    out
}

/// How many link-failure queries to pose per dataset in Table 4.
const WHATIF_QUERIES_PER_DATASET: usize = 25;

/// **Table 4** — average "what if this link fails" query time for
/// Veriflow-RI, Delta-net, and Delta-net with loop checking.
pub fn table4(scale: ScaleProfile) -> String {
    let datasets = build_all(scale);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for ds in &datasets {
        let rules = data_plane_rules(ds);
        let net = load_deltanet(ds, &rules);
        let vf = load_veriflow(ds, &rules);

        // Query the most heavily used links (by Delta-net label size), which
        // is where the differences matter; the paper queries every link.
        let mut links: Vec<(LinkId, usize)> = ds
            .topology
            .topology
            .links()
            .iter()
            .map(|l| (l.id, net.label(l.id).len()))
            .filter(|&(_, n)| n > 0)
            .collect();
        links.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let queries: Vec<LinkId> = links
            .iter()
            .take(WHATIF_QUERIES_PER_DATASET)
            .map(|&(l, _)| l)
            .collect();
        if queries.is_empty() {
            continue;
        }

        let time_queries = |f: &dyn Fn(LinkId)| -> f64 {
            let start = Instant::now();
            for &l in &queries {
                f(l);
            }
            start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
        };
        let vf_ms = time_queries(&|l| {
            let _ = vf.what_if_link_failure(l, false);
        });
        let dn_ms = time_queries(&|l| {
            let _ = net.what_if_link_failure(l, false);
        });
        let dn_loops_ms = time_queries(&|l| {
            let _ = net.what_if_link_failure(l, true);
        });

        rows.push(vec![
            ds.id.name().to_string(),
            with_commas(rules.len()),
            format!("{vf_ms:.3}"),
            format!("{dn_ms:.3}"),
            format!("{dn_loops_ms:.3}"),
            format!("{:.1}x", vf_ms / dn_ms.max(1e-6)),
        ]);
    }
    format!(
        "Table 4: link-failure \"what if\" queries, average per-query time in ms \
         ({WHATIF_QUERIES_PER_DATASET} most-used links per data plane, scale: {scale:?})\n\n{}",
        render_table(
            &[
                "Data plane",
                "Rules",
                "Veriflow-RI (ms)",
                "Delta-net (ms)",
                "+Loops (ms)",
                "Speed-up"
            ],
            &rows
        )
    )
}

/// **Table 5 / Appendix D** — memory usage of Delta-net and Veriflow-RI on
/// the consistent data planes.
pub fn table5(scale: ScaleProfile) -> String {
    let datasets = build_all(scale);
    let mut rows = Vec::new();
    for ds in &datasets {
        let rules = data_plane_rules(ds);
        let net = load_deltanet(ds, &rules);
        let vf = load_veriflow(ds, &rules);
        let dn_bytes = net.memory_bytes();
        let vf_bytes = vf.memory_bytes();
        rows.push(vec![
            ds.id.name().to_string(),
            with_commas(rules.len()),
            megabytes(vf_bytes),
            megabytes(dn_bytes),
            format!("{:.1}x", dn_bytes as f64 / vf_bytes.max(1) as f64),
        ]);
    }
    format!(
        "Table 5 (Appendix D): estimated memory usage in MB (scale: {scale:?})\n\n{}",
        render_table(
            &[
                "Data set",
                "Rules",
                "Veriflow-RI (MB)",
                "Delta-net (MB)",
                "Ratio"
            ],
            &rows
        )
    )
}

/// **Appendix C** — the maximum number of equivalence classes affected by a
/// single rule insertion when Veriflow-RI runs on the RF 1755 dataset,
/// contrasted with Delta-net's affected atoms on the same trace.
pub fn appendix_c(scale: ScaleProfile) -> String {
    let ds = build(DatasetId::Rf1755, scale);
    // Only the insertion phase, as in the original experiment.
    let inserts: Vec<Op> = ds
        .trace
        .ops()
        .iter()
        .copied()
        .filter(|op| op.is_insert())
        .collect();
    let mut vf = VeriflowRi::new(
        ds.topology.topology.clone(),
        VeriflowConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    let vf_result = replay_timed(&mut vf, &inserts);
    let mut net = DeltaNet::new(
        ds.topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    let dn_result = replay_timed(&mut net, &inserts);
    format!(
        "Appendix C: RF 1755 insertion phase (scale: {scale:?})\n\n{}",
        render_table(
            &["Metric", "Veriflow-RI", "Delta-net"],
            &[
                vec![
                    "Max classes affected by one insert".to_string(),
                    with_commas(vf_result.max_affected_classes),
                    with_commas(dn_result.max_affected_classes),
                ],
                vec![
                    "Average insert time (us)".to_string(),
                    format!("{:.1}", vf_result.timings.summary().average_us),
                    format!("{:.1}", dn_result.timings.summary().average_us),
                ],
                vec![
                    "Final packet classes".to_string(),
                    with_commas(vf_result.final_class_count),
                    with_commas(dn_result.final_class_count),
                ],
            ]
        )
    )
}

/// Runs every experiment and concatenates the reports (the `all_experiments`
/// binary, used to regenerate the full evaluation report).
pub fn all_experiments(scale: ScaleProfile) -> String {
    let mut out = String::new();
    out.push_str(&table2(scale));
    out.push('\n');
    let (t3, rows) = table3(scale);
    out.push_str(&t3);
    out.push('\n');
    out.push_str(&fig8(&rows));
    out.push('\n');
    out.push_str(&table4(scale));
    out.push('\n');
    out.push_str(&table5(scale));
    out.push('\n');
    out.push_str(&appendix_c(scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_datasets() {
        let t = table2(ScaleProfile::Tiny);
        for name in ["Berkeley", "INET", "RF 1755", "Airtel 1", "4Switch"] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
    }

    #[test]
    fn table3_and_fig8_on_tiny_scale() {
        let (t3, rows) = table3(ScaleProfile::Tiny);
        assert_eq!(rows.len(), 8);
        assert!(t3.contains("Total atoms"));
        for r in &rows {
            assert!(r.atoms > 0, "{} has no atoms", r.name);
            assert!(!r.timings.is_empty());
        }
        let f8 = fig8(&rows);
        assert!(f8.contains("CSV"));
        assert!(f8.contains("Berkeley"));
    }

    #[test]
    fn table4_and_table5_on_tiny_scale() {
        let t4 = table4(ScaleProfile::Tiny);
        assert!(t4.contains("Veriflow-RI (ms)"));
        assert!(t4.contains("Delta-net (ms)"));
        let t5 = table5(ScaleProfile::Tiny);
        assert!(t5.contains("Delta-net (MB)"));
    }

    #[test]
    fn appendix_c_reports_classes() {
        let c = appendix_c(ScaleProfile::Tiny);
        assert!(c.contains("Max classes affected"));
    }

    #[test]
    fn data_plane_rules_synthetic_vs_airtel() {
        let synthetic = build(DatasetId::Berkeley, ScaleProfile::Tiny);
        let rules = data_plane_rules(&synthetic);
        assert_eq!(rules.len(), synthetic.trace.insert_count());
        let airtel = build(DatasetId::Airtel1, ScaleProfile::Tiny);
        let rules = data_plane_rules(&airtel);
        assert!(!rules.is_empty());
        assert!(rules.len() < airtel.trace.insert_count());
    }
}
